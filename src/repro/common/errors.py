"""Exception hierarchy for the SharPer reproduction.

All library-raised exceptions derive from :class:`SharPerError` so that
callers can catch a single base class.  Programming errors (wrong types,
impossible configurations) raise the standard ``ValueError``/``TypeError``
instead.
"""

from __future__ import annotations


class SharPerError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(SharPerError):
    """An invalid system, cluster, or workload configuration was supplied."""


class RegistrationError(ConfigurationError):
    """A system registration conflicts with an existing registry entry."""


class UnknownSystemError(SharPerError, KeyError):
    """A scenario or experiment named a system that is not registered.

    Subclasses :class:`KeyError` because the registry is a mapping and
    historical callers catch ``KeyError`` on lookup failures.
    """

    def __str__(self) -> str:  # KeyError repr-quotes its message; undo that.
        return Exception.__str__(self)


class LedgerError(SharPerError):
    """Base class for ledger/DAG consistency problems."""


class UnknownBlockError(LedgerError):
    """A referenced block hash does not exist in the ledger view."""


class ForkError(LedgerError):
    """Two distinct blocks claim the same slot in a cluster's chain."""


class HashChainError(LedgerError):
    """A block's parent-hash reference does not match the chain."""


class ValidationError(SharPerError):
    """A transaction failed application-level validation.

    For the accounting application this covers unknown accounts,
    insufficient balances, and ownership (signature) failures.
    """


class InsufficientBalanceError(ValidationError):
    """The source account does not hold enough funds for the transfer."""


class UnknownAccountError(ValidationError):
    """The transaction references an account that does not exist."""


class ConsensusError(SharPerError):
    """Base class for consensus-protocol errors."""


class QuorumNotReachedError(ConsensusError):
    """A protocol instance could not gather the required quorum."""


class ViewChangeError(ConsensusError):
    """A view change could not be completed."""


class ConflictError(ConsensusError):
    """Two concurrent conflicting cross-shard transactions collided.

    The paper resolves this by having the initiator retry after a timer
    (Section 3.2, Safety and Liveness).  The error is surfaced when the
    retry budget is exhausted.
    """


class SimulationError(SharPerError):
    """Base class for simulator misuse (e.g. scheduling in the past)."""


class NetworkError(SimulationError):
    """A message could not be routed (unknown destination, closed link)."""
