"""Cryptographic primitives used by the reproduction.

The paper assumes collision-resistant hashes, public-key signatures and
message digests (Section 2.1).  Hash chaining is *functionally* relevant
(blocks reference the hash of their predecessors, and validation checks
those references), so digests are computed with real SHA-256 over a
canonical encoding.

Signatures, on the other hand, only matter for two things in a
logic-level reproduction:

* a Byzantine node must not be able to forge a message from a correct
  node — we model this by recording the claimed signer inside the
  :class:`Signature` object and verifying it against the sender identity
  supplied by the (pairwise-authenticated) network layer;
* signing/verification consumes CPU — the simulator's cost model charges
  a configurable number of microseconds per signature operation.

This keeps the protocol code identical in structure to a deployment that
uses ECDSA, without pulling in heavyweight crypto for a simulator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, is_dataclass, fields
from typing import Any, Iterable

__all__ = [
    "digest",
    "chain_hash",
    "Signature",
    "KeyPair",
    "sign",
    "verify",
    "GENESIS_HASH",
]


def _canonical(obj: Any) -> bytes:
    """Encode ``obj`` into a deterministic byte string for hashing.

    Supports the value types that appear in blocks and messages: scalars,
    strings, bytes, tuples/lists, dicts (sorted by key), dataclasses, and
    ``None``.  The encoding tags each type so that e.g. ``1`` and ``"1"``
    hash differently.
    """
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"B" + (b"1" if obj else b"0")
    if isinstance(obj, int):
        return b"I" + str(obj).encode()
    if isinstance(obj, float):
        return b"F" + repr(obj).encode()
    if isinstance(obj, str):
        data = obj.encode()
        return b"S" + str(len(data)).encode() + b":" + data
    if isinstance(obj, bytes):
        return b"Y" + str(len(obj)).encode() + b":" + obj
    if isinstance(obj, (list, tuple)):
        parts = b"".join(_canonical(item) for item in obj)
        return b"L" + str(len(obj)).encode() + b":" + parts
    if isinstance(obj, (set, frozenset)):
        parts = b"".join(sorted(_canonical(item) for item in obj))
        return b"E" + str(len(obj)).encode() + b":" + parts
    if isinstance(obj, dict):
        parts = b"".join(
            _canonical(key) + _canonical(value)
            for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return b"D" + str(len(obj)).encode() + b":" + parts
    if is_dataclass(obj) and not isinstance(obj, type):
        parts = b"".join(
            _canonical(f.name) + _canonical(getattr(obj, f.name)) for f in fields(obj)
        )
        return b"C" + obj.__class__.__name__.encode() + b":" + parts
    if hasattr(obj, "value") and isinstance(obj, object) and obj.__class__.__module__ != "builtins":
        # Enums and NewType-wrapped scalars.
        return b"V" + _canonical(getattr(obj, "value"))
    raise TypeError(f"cannot canonically encode {type(obj)!r}")


def digest(obj: Any) -> str:
    """Return the SHA-256 hex digest of the canonical encoding of ``obj``.

    This is the ``D(m)`` function of the paper.
    """
    return hashlib.sha256(_canonical(obj)).hexdigest()


def chain_hash(*parts: Any) -> str:
    """Hash several components together (used for block hashes)."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(_canonical(part))
    return hasher.hexdigest()


#: Hash used as the parent reference of the genesis block ``λ``.
GENESIS_HASH = "0" * 64


@dataclass(frozen=True)
class Signature:
    """A (simulated) public-key signature.

    ``signer`` is the identity that produced the signature and
    ``payload_digest`` binds it to the signed content.  ``forged`` marks
    signatures fabricated by Byzantine nodes in fault-injection tests;
    :func:`verify` rejects them, mirroring the paper's assumption that the
    adversary cannot produce valid signatures of non-faulty nodes.
    """

    signer: int
    payload_digest: str
    forged: bool = False


@dataclass(frozen=True)
class KeyPair:
    """Key material of a node or client.

    Only the owner identity is stored; the simulation never needs actual
    key bytes, but keeping the object explicit keeps call sites identical
    to a real deployment (``sign(keypair, msg)`` / ``verify(sig, msg)``).
    """

    owner: int

    def sign(self, payload: Any) -> Signature:
        """Sign ``payload`` with this key pair."""
        return Signature(signer=self.owner, payload_digest=digest(payload))


def sign(keypair: KeyPair, payload: Any) -> Signature:
    """Module-level convenience wrapper around :meth:`KeyPair.sign`."""
    return keypair.sign(payload)


def verify(signature: Signature, payload: Any, expected_signer: int | None = None) -> bool:
    """Check that ``signature`` is a valid signature of ``payload``.

    If ``expected_signer`` is given the signature must also have been
    produced by that identity.  Forged signatures never verify.
    """
    if signature.forged:
        return False
    if expected_signer is not None and signature.signer != expected_signer:
        return False
    return signature.payload_digest == digest(payload)


def merkle_root(leaves: Iterable[Any]) -> str:
    """Compute a Merkle root over ``leaves``.

    Provided for completeness (batched blocks in the ablation benchmarks
    summarise their transactions with a Merkle root, as a real deployment
    would).  An empty set of leaves hashes to :data:`GENESIS_HASH`.
    """
    level = [digest(leaf) for leaf in leaves]
    if not level:
        return GENESIS_HASH
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [chain_hash(level[i], level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]
