"""Core identifier types and enums shared across the SharPer reproduction.

The paper partitions *nodes* into *clusters* and assigns one *data shard*
per cluster (Section 2.2).  Throughout the code base we keep the paper's
terminology:

* ``NodeId`` — a single replica (crash-only or Byzantine).
* ``ClusterId`` — a cluster ``p_i`` of ``2f+1`` / ``3f+1`` nodes.
* ``ShardId`` — the data shard ``d_i`` assigned to cluster ``p_i``; shard
  and cluster ids coincide by construction but the types are kept distinct
  to keep call sites readable.
* ``ClientId`` — an application client submitting transactions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NewType

NodeId = NewType("NodeId", int)
ClusterId = NewType("ClusterId", int)
ShardId = NewType("ShardId", int)
ClientId = NewType("ClientId", int)
AccountId = NewType("AccountId", int)

#: Simulated time is expressed in seconds (floats).
Timestamp = float


class FaultModel(enum.Enum):
    """Failure model assumed for the nodes of a cluster (Section 2.1)."""

    CRASH = "crash"
    BYZANTINE = "byzantine"

    @property
    def cluster_size(self) -> int:
        """Minimum cluster size for ``f = 1`` under this fault model."""
        return self.min_cluster_size(1)

    def min_cluster_size(self, f: int) -> int:
        """Minimum number of nodes needed to tolerate ``f`` faults.

        Crash-only clusters need ``2f + 1`` nodes (Paxos), Byzantine
        clusters need ``3f + 1`` nodes (PBFT).
        """
        if f < 0:
            raise ValueError(f"f must be non-negative, got {f}")
        if self is FaultModel.CRASH:
            return 2 * f + 1
        return 3 * f + 1

    def quorum_size(self, f: int) -> int:
        """Per-cluster quorum used by the cross-shard protocols.

        Algorithm 1 (crash) collects ``f + 1`` matching accepts per
        involved cluster; Algorithm 2 (Byzantine) collects ``2f + 1``.
        """
        if f < 0:
            raise ValueError(f"f must be non-negative, got {f}")
        if self is FaultModel.CRASH:
            return f + 1
        return 2 * f + 1


class NodeRole(enum.Enum):
    """Role a node currently plays inside its cluster."""

    PRIMARY = "primary"
    BACKUP = "backup"
    PASSIVE = "passive"


class TxType(enum.Enum):
    """Transaction classification (Section 2.2)."""

    INTRA_SHARD = "intra"
    CROSS_SHARD = "cross"


class TxStatus(enum.Enum):
    """Lifecycle of a transaction as observed by the client/system."""

    PENDING = "pending"
    ORDERED = "ordered"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True, order=True)
class SequenceNumber:
    """Position of a block within a single cluster's view of the ledger.

    Cross-shard blocks carry one sequence number per involved cluster; the
    pair ``(cluster, index)`` uniquely identifies the slot the block
    occupies in that cluster's chain (the ``o_i`` superscripts used in the
    paper's Figure 2, e.g. ``t_{1_2, 2_2}``).
    """

    cluster: ClusterId
    index: int

    def next(self) -> "SequenceNumber":
        """Return the sequence number of the following slot."""
        return SequenceNumber(self.cluster, self.index + 1)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.cluster}:{self.index}"


def node_label(node_id: NodeId, cluster_id: ClusterId | None = None) -> str:
    """Human-readable label used in logs and error messages."""
    if cluster_id is None:
        return f"n{node_id}"
    return f"n{node_id}@p{cluster_id}"
