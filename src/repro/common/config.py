"""Configuration dataclasses describing a SharPer deployment.

A :class:`SystemConfig` captures everything needed to instantiate a
system inside the simulator: how many clusters exist, how many nodes each
cluster contains, the fault model, the performance model (message CPU
costs and link latencies), and protocol tuning knobs (timers, pipeline
depth).

Section 3.4 of the paper describes an optimisation for *clustered
networks*: when the nodes are grouped (e.g. different clouds) and the
maximum number of failures ``f`` is known per group, clustering can be
performed per group, yielding more (and therefore more parallel)
clusters.  :func:`plan_clusters` implements both the baseline formula
``|P| = N / (3f+1)`` and the per-group refinement, reproducing the
``n=23, f=3`` example from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .errors import ConfigurationError
from .types import ClusterId, FaultModel, NodeId

__all__ = [
    "PerformanceModel",
    "ProtocolTuning",
    "StorageSpec",
    "ClusterConfig",
    "SystemConfig",
    "NodeGroup",
    "plan_clusters",
    "plan_clusters_grouped",
]


@dataclass(frozen=True)
class PerformanceModel:
    """Calibration constants for the discrete-event performance model.

    All times are in seconds.  The defaults are calibrated so that a
    4-cluster crash-only deployment saturates in the tens of thousands of
    transactions per second with sub-second latency, matching the order of
    magnitude of the paper's EC2 experiments.  Absolute numbers are not
    meant to match the paper; relative behaviour between systems is.
    """

    #: one-way network latency between two nodes of the same cluster.
    intra_cluster_latency: float = 0.25e-3
    #: one-way network latency between nodes of different clusters.
    cross_cluster_latency: float = 1.0e-3
    #: one-way latency between a client and any node.
    client_latency: float = 0.5e-3
    #: random jitter applied to every link delay (uniform fraction).
    latency_jitter: float = 0.10
    #: CPU time to process one protocol message (receive or send side).
    message_cpu: float = 18e-6
    #: extra CPU time to verify one signature (Byzantine deployments).
    signature_verify_cpu: float = 25e-6
    #: extra CPU time to produce one signature (Byzantine deployments).
    signature_sign_cpu: float = 30e-6
    #: CPU time to execute a transaction against the account store.
    execution_cpu: float = 6e-6
    #: CPU time to append a block to the ledger view.
    append_cpu: float = 2e-6

    def scaled(self, factor: float) -> "PerformanceModel":
        """Return a copy with all CPU costs multiplied by ``factor``.

        Useful for sensitivity/ablation experiments.
        """
        return replace(
            self,
            message_cpu=self.message_cpu * factor,
            signature_verify_cpu=self.signature_verify_cpu * factor,
            signature_sign_cpu=self.signature_sign_cpu * factor,
            execution_cpu=self.execution_cpu * factor,
            append_cpu=self.append_cpu * factor,
        )


@dataclass(frozen=True)
class ProtocolTuning:
    """Protocol-level knobs shared by SharPer and the baselines."""

    #: timer used to detect a faulty primary and trigger a view change.
    view_change_timeout: float = 0.5
    #: back-off applied before re-initiating a conflicting cross-shard tx.
    conflict_retry_delay: float = 50e-3
    #: maximum number of retries before a cross-shard tx is aborted.
    max_conflict_retries: int = 20
    #: maximum batched consensus instances a primary keeps in flight
    #: before further requests queue at the batcher.  Enforced only when
    #: batching is armed (``batch_size > 1``); with batching off,
    #: proposals are never queued — the pre-batching behaviour, where a
    #: primary proposes every request the moment it arrives.
    pipeline_depth: int = 32
    #: client requests ordered per consensus slot (one signature, one
    #: quorum entry, one block per batch).  ``1`` — the default, and
    #: what the paper argues for — disables the batching pipeline
    #: entirely and is bit-identical to the unbatched seeds.
    batch_size: int = 1
    #: whether the super-primary optimisation (Section 3.2) is enabled.
    use_super_primary: bool = True
    #: decided-slot interval between checkpoints (0 disables
    #: checkpointing and log/ledger garbage collection — the faultless
    #: benchmark default).  See :mod:`repro.recovery`.
    checkpoint_interval: int = 0


@dataclass(frozen=True)
class StorageSpec:
    """How replicas hold state and what happens to pruned history.

    ``store_backend`` selects the per-shard state store: ``"dict"`` (one
    :class:`~repro.storage.base.Account` object per account — the
    original backend) or ``"columnar"`` (flat array columns for
    million-account shards).  ``archive_path`` names a sqlite database
    that checkpoint GC spills pruned blocks into instead of dropping
    them (``":memory:"`` is accepted for tests); ``None`` keeps the
    original drop-on-prune behaviour.  See :mod:`repro.storage`.
    """

    store_backend: str = "dict"
    archive_path: str | None = None

    def __post_init__(self) -> None:
        if self.store_backend not in ("dict", "columnar"):
            raise ConfigurationError(
                f"unknown store backend {self.store_backend!r}; "
                "expected 'dict' or 'columnar'"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of one cluster ``p_i`` and its shard ``d_i``."""

    cluster_id: ClusterId
    node_ids: tuple[NodeId, ...]
    fault_model: FaultModel
    f: int

    def __post_init__(self) -> None:
        minimum = self.fault_model.min_cluster_size(self.f)
        if len(self.node_ids) < minimum:
            raise ConfigurationError(
                f"cluster {self.cluster_id} has {len(self.node_ids)} nodes but "
                f"needs at least {minimum} for f={self.f} under {self.fault_model.value}"
            )
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConfigurationError(
                f"cluster {self.cluster_id} contains duplicate node ids"
            )

    @property
    def size(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.node_ids)

    @property
    def primary(self) -> NodeId:
        """The pre-elected primary (lowest node id, view 0)."""
        return self.node_ids[0]

    def primary_for_view(self, view: int) -> NodeId:
        """Primary after ``view`` view changes (round-robin rotation)."""
        return self.node_ids[view % len(self.node_ids)]

    @property
    def intra_quorum(self) -> int:
        """Quorum size used by the intra-shard protocol.

        Paxos commits with ``f + 1`` accepted messages (a majority of
        ``2f + 1``); PBFT requires ``2f + 1`` matching prepares/commits.
        """
        if self.fault_model is FaultModel.CRASH:
            return self.f + 1
        return 2 * self.f + 1

    @property
    def cross_quorum(self) -> int:
        """Per-cluster quorum for the cross-shard protocol (Alg. 1/2)."""
        return self.fault_model.quorum_size(self.f)


@dataclass(frozen=True)
class SystemConfig:
    """Full description of a deployment."""

    clusters: tuple[ClusterConfig, ...]
    fault_model: FaultModel
    performance: PerformanceModel = field(default_factory=PerformanceModel)
    tuning: ProtocolTuning = field(default_factory=ProtocolTuning)
    storage: StorageSpec = field(default_factory=StorageSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ConfigurationError("a system needs at least one cluster")
        seen: set[NodeId] = set()
        for cluster in self.clusters:
            if cluster.fault_model is not self.fault_model:
                raise ConfigurationError(
                    "mixed fault models require the hybrid configuration helpers"
                )
            overlap = seen.intersection(cluster.node_ids)
            if overlap:
                raise ConfigurationError(f"nodes {sorted(overlap)} appear in two clusters")
            seen.update(cluster.node_ids)

    @property
    def num_clusters(self) -> int:
        """Number of clusters ``|P|``."""
        return len(self.clusters)

    @property
    def num_nodes(self) -> int:
        """Total number of replica nodes ``N``."""
        return sum(cluster.size for cluster in self.clusters)

    @property
    def all_node_ids(self) -> tuple[NodeId, ...]:
        """All node ids across all clusters, in cluster order."""
        return tuple(node for cluster in self.clusters for node in cluster.node_ids)

    def cluster(self, cluster_id: ClusterId) -> ClusterConfig:
        """Return the configuration of cluster ``cluster_id``."""
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise ConfigurationError(f"unknown cluster {cluster_id}")

    def cluster_of_node(self, node_id: NodeId) -> ClusterConfig:
        """Return the cluster that ``node_id`` belongs to."""
        for cluster in self.clusters:
            if node_id in cluster.node_ids:
                return cluster
        raise ConfigurationError(f"node {node_id} does not belong to any cluster")

    @staticmethod
    def build(
        num_clusters: int,
        fault_model: FaultModel,
        f: int = 1,
        nodes_per_cluster: int | None = None,
        performance: PerformanceModel | None = None,
        tuning: ProtocolTuning | None = None,
        storage: "StorageSpec | None" = None,
        seed: int = 0,
    ) -> "SystemConfig":
        """Construct a homogeneous deployment.

        ``nodes_per_cluster`` defaults to the minimum required by the
        fault model (``2f+1`` or ``3f+1``), matching the paper's
        evaluation setup (clusters of 3 crash-only or 4 Byzantine nodes).
        """
        if num_clusters <= 0:
            raise ConfigurationError("num_clusters must be positive")
        size = nodes_per_cluster or fault_model.min_cluster_size(f)
        clusters = []
        next_node = 0
        for cluster_index in range(num_clusters):
            node_ids = tuple(NodeId(next_node + offset) for offset in range(size))
            next_node += size
            clusters.append(
                ClusterConfig(
                    cluster_id=ClusterId(cluster_index),
                    node_ids=node_ids,
                    fault_model=fault_model,
                    f=f,
                )
            )
        return SystemConfig(
            clusters=tuple(clusters),
            fault_model=fault_model,
            performance=performance or PerformanceModel(),
            tuning=tuning or ProtocolTuning(),
            storage=storage or StorageSpec(),
            seed=seed,
        )


@dataclass(frozen=True)
class NodeGroup:
    """A group of nodes with a known per-group failure bound (Section 3.4).

    Groups typically correspond to different cloud environments with
    different reliability characteristics.
    """

    name: str
    num_nodes: int
    f: int

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError(f"group {self.name!r} must have at least one node")
        if self.f < 0:
            raise ConfigurationError(f"group {self.name!r} has negative f")


def plan_clusters(num_nodes: int, f: int, fault_model: FaultModel) -> int:
    """Number of clusters obtainable without per-group knowledge.

    This is the paper's baseline formula ``|P| = N / (3f+1)`` (Byzantine)
    or ``N / (2f+1)`` (crash-only), rounded down.
    """
    if num_nodes <= 0:
        raise ConfigurationError("num_nodes must be positive")
    size = fault_model.min_cluster_size(f)
    count = num_nodes // size
    if count == 0:
        raise ConfigurationError(
            f"{num_nodes} nodes cannot form even one cluster of {size} "
            f"(f={f}, {fault_model.value})"
        )
    return count


def plan_clusters_grouped(groups: Sequence[NodeGroup], fault_model: FaultModel) -> dict[str, int]:
    """Per-group cluster counts using the Section 3.4 optimisation.

    Reproduces the paper's example: Byzantine nodes with ``n=23, f=3``
    split into groups ``A (n=7, f=2)`` and ``B (n=16, f=1)`` yields
    ``|P_A| = 1`` and ``|P_B| = 4`` — five clusters instead of two.
    """
    if not groups:
        raise ConfigurationError("at least one node group is required")
    plan: dict[str, int] = {}
    for group in groups:
        size = fault_model.min_cluster_size(group.f)
        plan[group.name] = group.num_nodes // size
    if sum(plan.values()) == 0:
        raise ConfigurationError("no group is large enough to form a cluster")
    return plan
