"""Measurement utilities: latency/throughput statistics and run summaries.

The paper reports *throughput just below saturation* on the x axis and
*average latency during steady state* on the y axis (Section 4).  The
classes here collect per-transaction samples during a simulated run and
summarise them the same way: samples from a warm-up window are discarded
and the remaining steady-state samples produce throughput (committed
transactions per simulated second) and latency percentiles.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["LatencySample", "MetricsCollector", "RunStats", "summarize_latencies"]


@dataclass(frozen=True, slots=True)
class LatencySample:
    """One committed transaction: submission and commit timestamps."""

    tx_id: str
    submitted_at: float
    committed_at: float
    cross_shard: bool = False

    @property
    def latency(self) -> float:
        """End-to-end latency in seconds."""
        return self.committed_at - self.submitted_at


@dataclass
class RunStats:
    """Aggregate results of a single simulated run."""

    duration: float
    committed: int
    aborted: int
    throughput: float
    avg_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    avg_latency_intra: float
    avg_latency_cross: float
    committed_cross: int
    #: cross-shard commits that arrived after their local slot was
    #: otherwise resolved (view-change no-op fill won the race), summed
    #: over every replica.  Filled in by :meth:`repro.api.Scenario.run`;
    #: non-zero values flag the residual atomicity window the
    #: termination protocol (:mod:`repro.recovery`) exists to close.
    late_commits: int = 0
    #: transactions *submitted* over the whole run (offered load); unlike
    #: ``committed`` this is not windowed, so ``committed <= submitted``
    #: even in steady state.  0 for legacy collectors that never counted.
    submitted: int = 0

    @property
    def abort_rate(self) -> float:
        """Aborted transactions as a fraction of the offered load."""
        if self.submitted <= 0:
            return 0.0
        return self.aborted / self.submitted

    def as_dict(self) -> dict[str, float]:
        """Dictionary form, convenient for CSV reporting.

        New columns are only ever appended at the end (the bench CSV
        consumers key on the leading columns staying stable).
        """
        return {
            "duration_s": self.duration,
            "committed": self.committed,
            "aborted": self.aborted,
            "throughput_tps": self.throughput,
            "avg_latency_ms": self.avg_latency * 1e3,
            "p50_latency_ms": self.p50_latency * 1e3,
            "p95_latency_ms": self.p95_latency * 1e3,
            "p99_latency_ms": self.p99_latency * 1e3,
            "avg_latency_intra_ms": self.avg_latency_intra * 1e3,
            "avg_latency_cross_ms": self.avg_latency_cross * 1e3,
            "committed_cross": self.committed_cross,
            "late_commits": self.late_commits,
            "submitted": self.submitted,
            "abort_rate": round(self.abort_rate, 6),
        }

    @staticmethod
    def aggregate(runs: "Sequence[RunStats]") -> "RunStats":
        """Pool several runs of the same configuration into one summary.

        Used by the multi-seed bench runner: counts and durations are
        summed (so the pooled ``throughput`` is total commits over total
        measured time), and latencies are averaged weighted by each run's
        committed count.
        """
        if not runs:
            raise ValueError("cannot aggregate zero runs")
        if len(runs) == 1:
            return runs[0]
        duration = sum(run.duration for run in runs)
        committed = sum(run.committed for run in runs)
        committed_cross = sum(run.committed_cross for run in runs)
        committed_intra = committed - committed_cross

        def weighted(metric, weights) -> float:
            total = sum(weights)
            if total == 0:
                return 0.0
            return sum(value * weight for value, weight in zip(metric, weights)) / total

        by_committed = [run.committed for run in runs]
        return RunStats(
            duration=duration,
            committed=committed,
            aborted=sum(run.aborted for run in runs),
            throughput=committed / duration if duration > 0 else 0.0,
            avg_latency=weighted([run.avg_latency for run in runs], by_committed),
            p50_latency=weighted([run.p50_latency for run in runs], by_committed),
            p95_latency=weighted([run.p95_latency for run in runs], by_committed),
            p99_latency=weighted([run.p99_latency for run in runs], by_committed),
            avg_latency_intra=weighted(
                [run.avg_latency_intra for run in runs],
                [run.committed - run.committed_cross for run in runs],
            )
            if committed_intra
            else 0.0,
            avg_latency_cross=weighted(
                [run.avg_latency_cross for run in runs],
                [run.committed_cross for run in runs],
            )
            if committed_cross
            else 0.0,
            committed_cross=committed_cross,
            late_commits=sum(run.late_commits for run in runs),
            submitted=sum(run.submitted for run in runs),
        )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize_latencies(latencies: Iterable[float]) -> dict[str, float]:
    """Mean/median/percentile summary of a latency collection (seconds)."""
    values = sorted(latencies)
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": statistics.fmean(values),
        "p50": _percentile(values, 0.50),
        "p95": _percentile(values, 0.95),
        "p99": _percentile(values, 0.99),
        "max": values[-1],
    }


@dataclass
class MetricsCollector:
    """Collects per-transaction samples during a simulation run.

    ``warmup`` and ``measure_until`` bound the steady-state window: only
    transactions *submitted* inside ``[warmup, measure_until)`` count
    toward the reported statistics, mirroring the paper's "average
    measured during the steady state of an experiment".
    """

    warmup: float = 0.0
    measure_until: float = math.inf
    samples: list[LatencySample] = field(default_factory=list)
    aborted: int = 0
    submitted: int = 0

    def record_submission(self) -> None:
        """Count a submitted transaction (for offered-load accounting)."""
        self.submitted += 1

    def record_commit(
        self,
        tx_id: str,
        submitted_at: float,
        committed_at: float,
        cross_shard: bool = False,
    ) -> None:
        """Record a committed transaction."""
        self.samples.append(
            LatencySample(
                tx_id=tx_id,
                submitted_at=submitted_at,
                committed_at=committed_at,
                cross_shard=cross_shard,
            )
        )

    def record_abort(self) -> None:
        """Record a transaction that was aborted (conflict retry budget)."""
        self.aborted += 1

    def _steady_state(self) -> list[LatencySample]:
        return [
            sample
            for sample in self.samples
            if self.warmup <= sample.submitted_at < self.measure_until
        ]

    def finalize(self, end_time: float) -> RunStats:
        """Summarise the run, measuring throughput over the steady window."""
        steady = self._steady_state()
        window_end = min(end_time, self.measure_until)
        duration = max(window_end - self.warmup, 1e-9)
        latencies = sorted(sample.latency for sample in steady)
        intra = [sample.latency for sample in steady if not sample.cross_shard]
        cross = [sample.latency for sample in steady if sample.cross_shard]
        return RunStats(
            duration=duration,
            committed=len(steady),
            aborted=self.aborted,
            throughput=len(steady) / duration,
            avg_latency=statistics.fmean(latencies) if latencies else 0.0,
            p50_latency=_percentile(latencies, 0.50),
            p95_latency=_percentile(latencies, 0.95),
            p99_latency=_percentile(latencies, 0.99),
            avg_latency_intra=statistics.fmean(intra) if intra else 0.0,
            avg_latency_cross=statistics.fmean(cross) if cross else 0.0,
            committed_cross=len(cross),
            submitted=self.submitted,
        )
