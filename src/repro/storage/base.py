"""State-store interface and the incremental digest shared by every backend.

The accounting application's replicated state is a balance table.  This
module defines the contract every backend implements —
:class:`StateStore` — plus the one piece of machinery that must be
bit-identical across backends for checkpoints and state transfer to
work: the **store digest**.

The digest is an additive homomorphic hash: every account contributes a
256-bit *leaf* ``SHA-256(f"{id}:{owner}:{balance}")`` and the store
digest is the sum of all leaves modulo ``2**256``, rendered as 64 hex
digits.  Because addition commutes, the digest is order-independent, so

* a full-table pass (:meth:`StateStore.naive_state_digest`, the
  reference computation) and
* the incremental accumulator every store maintains — subtract the
  touched accounts' old leaves, add their new ones —

produce the same value.  Stores record the *pre-image* of each account
the first time it is written after a digest was computed
(:meth:`StateStore._note_write`), so :meth:`StateStore.state_digest`
costs ``O(accounts changed since the previous digest)`` instead of
``O(n log n)`` — the property that makes checkpointing a million-account
store affordable (see ``docs/storage.md``).

:class:`Account` also lives here (re-exported from
:mod:`repro.txn.accounts` for compatibility) so backends need nothing
from the transaction layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from ..common.errors import ValidationError
from ..common.types import AccountId, ClientId, ShardId

__all__ = ["Account", "StateStore", "leaf_hash", "DIGEST_MASK"]

#: the digest accumulator is a 256-bit ring (matching SHA-256 leaves).
DIGEST_MASK = (1 << 256) - 1


def leaf_hash(account_id: int, owner: int, balance: int) -> int:
    """The 256-bit leaf one account contributes to the store digest."""
    return int.from_bytes(
        hashlib.sha256(f"{int(account_id)}:{int(owner)}:{balance}".encode()).digest(),
        "big",
    )


def resolve_owner(
    owner_of: "Mapping[AccountId, ClientId] | Callable[[AccountId], ClientId] | None",
    account_id: AccountId,
) -> ClientId:
    """Owner of ``account_id`` under a mapping, a callable, or the default."""
    if owner_of is None:
        return ClientId(int(account_id))
    if callable(owner_of):
        return owner_of(account_id)
    return owner_of[account_id]


@dataclass
class Account:
    """One client account: a balance and the public key of its owner.

    The paper models an account as the pair ``(amount, PK)``.  We store
    the owner's client id in place of the public key; ownership checks
    compare it against the transaction's signer.
    """

    account_id: AccountId
    owner: ClientId
    balance: int

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise ValidationError(f"account {self.account_id} cannot start with negative balance")


class StateStore:
    """Mutable balance table for (a shard of) the accounting application.

    Concrete backends (:class:`repro.storage.dict_store.AccountStore`,
    :class:`repro.storage.columnar.ArrayAccountStore`) implement the
    primitive accessors; this base class owns the digest bookkeeping so
    both backends produce bit-identical digests by construction.
    """

    #: registry name of the backend (``repro.storage.make_store``).
    backend_name = "abstract"

    def __init__(self, shard: ShardId | None = None) -> None:
        self.shard = shard
        self.version = 0
        #: memoised digest accumulator; ``None`` until first computed.
        self._digest_acc: int | None = None
        #: pre-images of accounts written since the last digest:
        #: ``account_id -> (owner, balance) | None`` (None = did not exist).
        self._pending: dict[AccountId, tuple[ClientId, int] | None] = {}

    # ------------------------------------------------------------------
    # primitive interface implemented by backends
    # ------------------------------------------------------------------
    def create_account(self, account_id: AccountId, owner: ClientId, balance: int) -> Account:
        """Create a new account; fails if the id already exists."""
        raise NotImplementedError

    def account(self, account_id: AccountId) -> Account:
        """Return the account record or raise ``UnknownAccountError``."""
        raise NotImplementedError

    def deposit(self, account_id: AccountId, amount: int) -> None:
        """Credit ``amount`` to the account."""
        raise NotImplementedError

    def withdraw(
        self, account_id: AccountId, amount: int, requester: ClientId | None = None
    ) -> None:
        """Debit ``amount``; ``requester`` (when given) must own the account."""
        raise NotImplementedError

    def snapshot(self) -> "Mapping[AccountId, tuple[ClientId, int]]":
        """Eager copy of the full state (``id -> (owner, balance)``)."""
        raise NotImplementedError

    def restore(self, snapshot: "Mapping[AccountId, tuple[ClientId, int]]") -> None:
        """Replace the store contents with ``snapshot``."""
        raise NotImplementedError

    def total_balance(self) -> int:
        """Sum of all balances in this store (conservation invariant)."""
        raise NotImplementedError

    def clone(self) -> "StateStore":
        """An independent deep copy (bootstrap sharing across replicas)."""
        raise NotImplementedError

    def _entry(self, account_id: AccountId) -> tuple[ClientId, int]:
        """Current ``(owner, balance)`` of an existing account."""
        raise NotImplementedError

    def _entries(self) -> Iterator[tuple[AccountId, ClientId, int]]:
        """Iterate ``(account_id, owner, balance)`` over the whole table."""
        raise NotImplementedError

    def __contains__(self, account_id: AccountId) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Account]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared reads
    # ------------------------------------------------------------------
    def balance(self, account_id: AccountId) -> int:
        """Current balance of ``account_id``."""
        return self.account(account_id).balance

    # ------------------------------------------------------------------
    # digests (shared, incremental)
    # ------------------------------------------------------------------
    def _note_write(
        self, account_id: AccountId, before: tuple[ClientId, int] | None
    ) -> None:
        """Record an account's pre-image the first time it is written.

        ``before`` is the ``(owner, balance)`` the account held when the
        digest was last computed, or ``None`` if it did not exist then.
        Backends call this before every mutation; repeat writes to the
        same account are free (the first pre-image is the one that
        matters).
        """
        pending = self._pending
        if account_id not in pending:
            pending[account_id] = before

    def _reset_digest(self) -> None:
        """Forget the memoised digest (wholesale state replacement)."""
        self._digest_acc = None
        self._pending.clear()

    def _retire_pending(self, pending: dict) -> None:
        """Hook: a digest flush retired these pre-images (default no-op)."""

    def state_digest(self) -> str:
        """Deterministic digest of the full balance table.

        Incremental: the first call scans the table once; every later
        call folds in only the accounts written since the previous call,
        so a checkpoint costs ``O(changed)`` regardless of table size.
        Order-independent by construction, so every replica that applied
        the same transaction prefix — regardless of backend or of how
        its store was built (bootstrap or :meth:`restore`) — produces
        the same digest.  This is the store half of a checkpoint digest
        (:func:`repro.recovery.checkpoint_digest`).
        """
        acc = self._digest_acc
        if acc is None:
            acc = 0
            for account_id, owner, balance in self._entries():
                acc = (acc + leaf_hash(account_id, owner, balance)) & DIGEST_MASK
        else:
            for account_id, before in self._pending.items():
                if before is not None:
                    acc -= leaf_hash(account_id, before[0], before[1])
                owner, balance = self._entry(account_id)
                acc += leaf_hash(account_id, owner, balance)
            acc &= DIGEST_MASK
        self._digest_acc = acc
        if self._pending:
            self._retire_pending(self._pending)
            self._pending = {}
        return format(acc, "064x")

    def naive_state_digest(self) -> str:
        """Reference digest: full-table pass in sorted id order.

        The pre-incremental computation, kept as the regression baseline:
        :meth:`state_digest` must always equal this (the digest is
        order-independent, so the sort is immaterial to the value — it
        only makes the reference pass deterministic and obviously
        memoisation-free).
        """
        return self.digest_entries(sorted(self._entries()))

    @staticmethod
    def digest_entries(entries: "Iterable[tuple[AccountId, ClientId, int]]") -> str:
        """Digest of ``(account_id, owner, balance)`` triples, any order.

        The single definition of the store digest format — shared by
        :meth:`state_digest` (live store) and :meth:`snapshot_digest`
        (shipped snapshot), which must agree byte for byte for
        state-transfer verification to work.
        """
        acc = 0
        for account_id, owner, balance in entries:
            acc = (acc + leaf_hash(account_id, owner, balance)) & DIGEST_MASK
        return format(acc, "064x")

    @classmethod
    def snapshot_digest(cls, snapshot: "Mapping[AccountId, tuple[ClientId, int]]") -> str:
        """:meth:`state_digest` recomputed from a :meth:`snapshot` mapping."""
        return cls.digest_entries(
            (account_id, owner, balance)
            for account_id, (owner, balance) in snapshot.items()
        )

    # ------------------------------------------------------------------
    # checkpoint snapshots
    # ------------------------------------------------------------------
    def checkpoint_snapshot(self, seq: int) -> "Mapping[AccountId, tuple[ClientId, int]]":
        """Snapshot of the state at checkpoint ``seq`` (called at take time).

        The default materialises eagerly via :meth:`snapshot`; the
        columnar backend overrides this with a lazy copy-on-write view
        so million-account checkpoints stay ``O(changed)``.
        """
        return self.snapshot()
