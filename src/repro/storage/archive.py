"""Archival backends: checkpoint GC spills pruned history instead of dropping it.

Stable checkpoints authorise garbage collection
(:mod:`repro.recovery.checkpoint`): the ledger view prunes block objects
at or below the checkpoint.  With an archive attached
(``ClusterView.archive``), :meth:`repro.ledger.view.ClusterView.prune`
hands the dropped blocks to :meth:`ArchivalBackend.archive_blocks`
before discarding them, so the full history stays queryable offline
while resident memory remains bounded.

:class:`SqliteArchive` is the stdlib-only implementation.  Rows are
keyed by ``(cluster, position)`` and written with ``INSERT OR IGNORE``:
every replica of a cluster spills the *same* rows as its own checkpoint
stabilises (a replica only garbage-collects state its own digest agreed
with a quorum on), so concurrent spills are idempotent.  Schema:

``blocks``
    one row per pruned block per involved cluster — stored hash, this
    cluster's parent hash, proposer, no-op flag, and the full position
    vector (JSON) so the block hash can be recomputed offline.
``txs`` / ``transfers``
    the block's transactions (payload digest, issuing client, order
    within the block) and their individual transfers — the replayable
    record :func:`repro.storage.audit.audit_archive` verifies.
``xlinks``
    the pre/post interval index over the block DAG: a cross-shard block
    at position ``pre`` of cluster ``c`` and ``post`` of cluster ``d``
    yields the ordered rows ``(c, d, pre, post)`` and ``(d, c, post,
    pre)``.  Block ``(c, p)`` is then an ancestor of ``(d, q)`` exactly
    when some chain of such intervals is sandwiched between them
    (``pre >= p`` and ``post <= q`` for the single-hop case) — the
    interval-encoding + SQL idiom of the DMR-XPath lineage, adapted
    from document trees to the position-vector DAG.
``checkpoints``
    the quorum-stabilised ``(seq, store digest)`` pairs the offline
    auditor replays the transfer history against.
``meta``
    the bootstrap description (shard layout, initial balance, owner
    rule) that makes the archive self-contained for replay.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import TYPE_CHECKING, Iterable

from ..common.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..ledger.block import Block

__all__ = ["ArchivalBackend", "SqliteArchive", "open_archive"]


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS blocks (
    cluster INTEGER NOT NULL,
    position INTEGER NOT NULL,
    block_hash TEXT NOT NULL,
    parent_hash TEXT NOT NULL,
    proposer INTEGER NOT NULL,
    is_noop INTEGER NOT NULL,
    positions TEXT NOT NULL,
    PRIMARY KEY (cluster, position)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS txs (
    tx_id TEXT NOT NULL,
    cluster INTEGER NOT NULL,
    position INTEGER NOT NULL,
    tx_ord INTEGER NOT NULL,
    client INTEGER NOT NULL,
    payload_digest TEXT NOT NULL,
    PRIMARY KEY (tx_id, cluster)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS txs_by_position ON txs (cluster, position);
CREATE TABLE IF NOT EXISTS transfers (
    tx_id TEXT NOT NULL,
    cluster INTEGER NOT NULL,
    idx INTEGER NOT NULL,
    position INTEGER NOT NULL,
    source INTEGER NOT NULL,
    destination INTEGER NOT NULL,
    amount INTEGER NOT NULL,
    PRIMARY KEY (tx_id, cluster, idx)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS transfers_by_source ON transfers (cluster, source, position);
CREATE INDEX IF NOT EXISTS transfers_by_destination ON transfers (cluster, destination, position);
CREATE TABLE IF NOT EXISTS xlinks (
    src_cluster INTEGER NOT NULL,
    dst_cluster INTEGER NOT NULL,
    pre_position INTEGER NOT NULL,
    post_position INTEGER NOT NULL,
    block_hash TEXT NOT NULL,
    PRIMARY KEY (src_cluster, dst_cluster, pre_position)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS checkpoints (
    cluster INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    store_digest TEXT NOT NULL,
    head_hash TEXT NOT NULL,
    PRIMARY KEY (cluster, seq)
) WITHOUT ROWID;
"""


class ArchivalBackend:
    """Interface checkpoint GC spills pruned history into."""

    def archive_blocks(self, cluster_id: int, blocks: "Iterable[Block]") -> int:
        """Persist pruned ``blocks`` of ``cluster_id``; returns rows added."""
        raise NotImplementedError

    def record_checkpoint(
        self, cluster_id: int, seq: int, store_digest: str, head_hash: str
    ) -> None:
        """Persist a stabilised checkpoint's store digest for offline audit."""
        raise NotImplementedError

    def record_bootstrap(self, meta: dict) -> None:
        """Persist the deployment's bootstrap description (replay input)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make all buffered writes visible to other connections."""

    def close(self) -> None:
        """Release the backend's resources."""


class SqliteArchive(ArchivalBackend):
    """Sqlite-backed archive (stdlib only; ``:memory:`` supported in tests).

    Durability is deliberately relaxed (``synchronous=OFF``): the archive
    is a derived, rebuildable audit tier, not the replicated state.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(
            "PRAGMA journal_mode=%s" % ("MEMORY" if self.path == ":memory:" else "WAL")
        )
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        #: rows actually inserted by this connection (OR IGNORE dedup'd).
        self.blocks_written = 0
        self.tx_rows_written = 0
        self.transfer_rows_written = 0
        self.checkpoint_rows_written = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def archive_blocks(self, cluster_id: int, blocks: "Iterable[Block]") -> int:
        cluster = int(cluster_id)
        block_rows = []
        tx_rows = []
        transfer_rows = []
        xlink_rows = []
        for block in blocks:
            position = block.position_for(cluster_id)
            block_rows.append(
                (
                    cluster,
                    position,
                    block.block_hash,
                    block.parent_for(cluster_id),
                    int(block.proposer),
                    int(block.is_noop),
                    json.dumps([[int(c), int(i)] for c, i in block.positions]),
                )
            )
            for tx_ord, transaction in enumerate(block.transactions):
                tx_rows.append(
                    (
                        transaction.tx_id,
                        cluster,
                        position,
                        tx_ord,
                        int(transaction.client),
                        transaction.payload_digest(),
                    )
                )
                for idx, transfer in enumerate(transaction.transfers):
                    transfer_rows.append(
                        (
                            transaction.tx_id,
                            cluster,
                            idx,
                            position,
                            int(transfer.source),
                            int(transfer.destination),
                            transfer.amount,
                        )
                    )
            if len(block.positions) > 1:
                for src, pre in block.positions:
                    for dst, post in block.positions:
                        if src != dst:
                            xlink_rows.append(
                                (int(src), int(dst), pre, post, block.block_hash)
                            )
        conn = self._conn
        before = conn.total_changes
        conn.executemany(
            "INSERT OR IGNORE INTO blocks VALUES (?, ?, ?, ?, ?, ?, ?)", block_rows
        )
        added_blocks = conn.total_changes - before
        self.blocks_written += added_blocks
        before = conn.total_changes
        conn.executemany("INSERT OR IGNORE INTO txs VALUES (?, ?, ?, ?, ?, ?)", tx_rows)
        self.tx_rows_written += conn.total_changes - before
        before = conn.total_changes
        conn.executemany(
            "INSERT OR IGNORE INTO transfers VALUES (?, ?, ?, ?, ?, ?, ?)", transfer_rows
        )
        self.transfer_rows_written += conn.total_changes - before
        conn.executemany(
            "INSERT OR IGNORE INTO xlinks VALUES (?, ?, ?, ?, ?)", xlink_rows
        )
        conn.commit()
        return added_blocks

    def record_checkpoint(
        self, cluster_id: int, seq: int, store_digest: str, head_hash: str
    ) -> None:
        before = self._conn.total_changes
        self._conn.execute(
            "INSERT OR IGNORE INTO checkpoints VALUES (?, ?, ?, ?)",
            (int(cluster_id), int(seq), store_digest, head_hash),
        )
        self.checkpoint_rows_written += self._conn.total_changes - before
        self._conn.commit()

    def record_bootstrap(self, meta: dict) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('bootstrap', ?)", (json.dumps(meta),)
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (query surface for history/audit)."""
        return self._conn

    def bootstrap_meta(self) -> dict | None:
        """The recorded bootstrap description, or None if absent."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'bootstrap'"
        ).fetchone()
        return json.loads(row[0]) if row else None

    def clusters(self) -> list[int]:
        """Clusters with at least one archived block, ascending."""
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT DISTINCT cluster FROM blocks ORDER BY cluster"
            )
        ]

    def archived_height(self, cluster_id: int) -> int:
        """Highest archived position of a cluster (0 when empty)."""
        row = self._conn.execute(
            "SELECT MAX(position) FROM blocks WHERE cluster = ?", (int(cluster_id),)
        ).fetchone()
        return row[0] or 0

    def _count(self, table: str) -> int:
        return self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]

    def blocks_archived(self) -> int:
        """Total block rows across all clusters."""
        return self._count("blocks")

    def tx_rows_archived(self) -> int:
        """Total transaction rows across all clusters."""
        return self._count("txs")

    def checkpoints_archived(self) -> int:
        """Total recorded checkpoint rows."""
        return self._count("checkpoints")

    def size_bytes(self) -> int:
        """On-disk size of the archive (0 for in-memory archives)."""
        if self.path == ":memory:":
            return 0
        self.flush()
        try:
            size = os.path.getsize(self.path)
            for suffix in ("-wal", "-shm"):
                sidecar = self.path + suffix
                if os.path.exists(sidecar):
                    size += os.path.getsize(sidecar)
            return size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()


def open_archive(source: "str | os.PathLike | SqliteArchive") -> SqliteArchive:
    """Coerce a path or an existing :class:`SqliteArchive` to an archive.

    History queries and the offline auditor accept either form; opening
    a path that does not exist is a configuration error (sqlite would
    happily create an empty database and every audit would "pass").
    """
    if isinstance(source, SqliteArchive):
        return source
    path = str(source)
    if path != ":memory:" and not os.path.exists(path):
        raise ConfigurationError(f"archive database {path!r} does not exist")
    return SqliteArchive(path)
