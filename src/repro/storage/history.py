"""Read-side query API over an archival backend.

:class:`HistoryQuery` answers the questions the live system can no
longer answer once checkpoint GC has pruned its views: block by
position, transaction by id, an account's activity over a position
range, and cross-shard ancestry between archived blocks.

Ancestry uses the archive's ``xlinks`` interval index (see
:mod:`repro.storage.archive`): within one cluster, position order *is*
ancestry; across clusters, block ``(c, p)`` reaches ``(d, q)`` iff a
cross-shard block links a position ``>= p`` of ``c`` to a position
``<= q`` of ``d`` — the single-hop interval sandwich, answered by one
indexed ``EXISTS`` — or a chain of such hops does, answered by a
recursive CTE over the interval table.  This is the pre/post-order
interval idiom for ancestor queries, applied to the position-vector DAG
instead of a document tree.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..common.errors import ConfigurationError, UnknownBlockError
from .archive import SqliteArchive, open_archive

__all__ = ["ArchivedBlock", "ArchivedTransaction", "ActivityRecord", "HistoryQuery"]


@dataclass(frozen=True)
class ArchivedBlock:
    """One archived block, as seen from one cluster's chain."""

    cluster: int
    position: int
    block_hash: str
    parent_hash: str
    proposer: int
    is_noop: bool
    #: full position vector ``[(cluster, position), ...]``.
    positions: tuple[tuple[int, int], ...]
    #: transaction ids in block order.
    tx_ids: tuple[str, ...] = ()

    @property
    def is_cross_shard(self) -> bool:
        """Whether the block spans more than one cluster."""
        return len(self.positions) > 1


@dataclass(frozen=True)
class ArchivedTransaction:
    """One archived transaction and everywhere it was committed."""

    tx_id: str
    client: int
    payload_digest: str
    #: chain position per involved (archived) cluster.
    positions: tuple[tuple[int, int], ...]
    #: ``(source, destination, amount)`` triples, in transaction order.
    transfers: tuple[tuple[int, int, int], ...] = ()


@dataclass(frozen=True)
class ActivityRecord:
    """One transfer touching a queried account, from its shard's chain."""

    position: int
    tx_id: str
    source: int
    destination: int
    amount: int
    #: balance delta from the account's point of view (+credit/-debit).
    delta: int = field(default=0)


class HistoryQuery:
    """Query interface over an archive (path or open :class:`SqliteArchive`)."""

    def __init__(self, source: "str | os.PathLike | SqliteArchive") -> None:
        self.archive = open_archive(source)
        self._conn = self.archive.connection

    # ------------------------------------------------------------------
    # blocks
    # ------------------------------------------------------------------
    def _block_from_row(self, row, tx_ids: tuple[str, ...]) -> ArchivedBlock:
        cluster, position, block_hash, parent_hash, proposer, is_noop, positions = row
        return ArchivedBlock(
            cluster=cluster,
            position=position,
            block_hash=block_hash,
            parent_hash=parent_hash,
            proposer=proposer,
            is_noop=bool(is_noop),
            positions=tuple((c, p) for c, p in json.loads(positions)),
            tx_ids=tx_ids,
        )

    def _tx_ids_at(self, cluster: int, position: int) -> tuple[str, ...]:
        return tuple(
            row[0]
            for row in self._conn.execute(
                "SELECT tx_id FROM txs WHERE cluster = ? AND position = ? ORDER BY tx_ord",
                (cluster, position),
            )
        )

    def block_at(self, cluster: int, position: int) -> ArchivedBlock:
        """The archived block at ``position`` of ``cluster``'s chain."""
        row = self._conn.execute(
            "SELECT cluster, position, block_hash, parent_hash, proposer, is_noop, positions"
            " FROM blocks WHERE cluster = ? AND position = ?",
            (int(cluster), int(position)),
        ).fetchone()
        if row is None:
            raise UnknownBlockError(
                f"archive holds no block at position {position} of cluster {cluster}"
            )
        return self._block_from_row(row, self._tx_ids_at(int(cluster), int(position)))

    def blocks_in_range(self, cluster: int, lo: int, hi: int) -> list[ArchivedBlock]:
        """Archived blocks of ``cluster`` with ``lo <= position <= hi``."""
        rows = self._conn.execute(
            "SELECT cluster, position, block_hash, parent_hash, proposer, is_noop, positions"
            " FROM blocks WHERE cluster = ? AND position BETWEEN ? AND ? ORDER BY position",
            (int(cluster), int(lo), int(hi)),
        ).fetchall()
        return [
            self._block_from_row(row, self._tx_ids_at(row[0], row[1])) for row in rows
        ]

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def tx_by_id(self, tx_id: str) -> ArchivedTransaction:
        """The archived transaction ``tx_id`` (all clusters that hold it)."""
        rows = self._conn.execute(
            "SELECT cluster, position, client, payload_digest FROM txs"
            " WHERE tx_id = ? ORDER BY cluster",
            (tx_id,),
        ).fetchall()
        if not rows:
            raise UnknownBlockError(f"archive holds no transaction {tx_id}")
        first_cluster = rows[0][0]
        transfers = tuple(
            (source, destination, amount)
            for source, destination, amount in self._conn.execute(
                "SELECT source, destination, amount FROM transfers"
                " WHERE tx_id = ? AND cluster = ? ORDER BY idx",
                (tx_id, first_cluster),
            )
        )
        return ArchivedTransaction(
            tx_id=tx_id,
            client=rows[0][2],
            payload_digest=rows[0][3],
            positions=tuple((cluster, position) for cluster, position, _, _ in rows),
            transfers=transfers,
        )

    # ------------------------------------------------------------------
    # account activity
    # ------------------------------------------------------------------
    def account_activity(
        self,
        account_id: int,
        lo: int = 1,
        hi: int | None = None,
        cluster: int | None = None,
    ) -> list[ActivityRecord]:
        """Ordered transfers touching ``account_id`` in a position range.

        ``cluster`` defaults to the account's shard derived from the
        archived bootstrap metadata.  Records are the *committed* order
        of the shard's chain; whether a given transfer's execution
        succeeded is re-derived by :func:`repro.storage.audit.audit_archive`
        (validation failures commit but do not move funds).
        """
        if cluster is None:
            cluster = self._home_cluster(account_id)
        if hi is None:
            hi = self.archive.archived_height(cluster)
        records = []
        for position, tx_id, source, destination, amount in self._conn.execute(
            "SELECT position, tx_id, source, destination, amount FROM transfers"
            " WHERE cluster = ? AND (source = ? OR destination = ?)"
            " AND position BETWEEN ? AND ? ORDER BY position, tx_id, idx",
            (int(cluster), int(account_id), int(account_id), int(lo), int(hi)),
        ):
            delta = 0
            if destination == account_id:
                delta += amount
            if source == account_id:
                delta -= amount
            records.append(
                ActivityRecord(
                    position=position,
                    tx_id=tx_id,
                    source=source,
                    destination=destination,
                    amount=amount,
                    delta=delta,
                )
            )
        return records

    def _home_cluster(self, account_id: int) -> int:
        meta = self.archive.bootstrap_meta()
        if meta is None:
            raise ConfigurationError(
                "archive has no bootstrap metadata; pass cluster= explicitly"
            )
        from ..txn.accounts import ShardMapper  # lazy: avoids an import cycle

        mapper = ShardMapper(
            num_shards=meta["num_shards"],
            accounts_per_shard=meta["accounts_per_shard"],
            strategy=meta.get("partition_strategy", "range"),
        )
        return int(mapper.shard_of(account_id))

    # ------------------------------------------------------------------
    # ancestry (pre/post interval index)
    # ------------------------------------------------------------------
    def is_ancestor(self, ancestor: tuple[int, int], descendant: tuple[int, int]) -> bool:
        """Whether block ``ancestor`` precedes ``descendant`` in the DAG.

        Blocks are named by ``(cluster, position)``.  Same cluster:
        plain position order.  Different clusters: a single indexed
        interval-sandwich probe over ``xlinks`` first (the overwhelmingly
        common 2-cluster case), then a recursive CTE for multi-hop paths
        through intermediate clusters.
        """
        (c, p), (d, q) = (int(ancestor[0]), int(ancestor[1])), (
            int(descendant[0]),
            int(descendant[1]),
        )
        if c == d:
            return p < q
        # A cross-shard block occupies a position in several chains; the
        # two names may denote the *same* block, which is not a strict
        # ancestor of itself (and would otherwise satisfy the sandwich
        # with pre == p and post == q).
        if self.block_at(c, p).block_hash == self.block_at(d, q).block_hash:
            return False
        hit = self._conn.execute(
            "SELECT EXISTS(SELECT 1 FROM xlinks WHERE src_cluster = ? AND dst_cluster = ?"
            " AND pre_position >= ? AND post_position <= ?)",
            (c, d, p, q),
        ).fetchone()[0]
        if hit:
            return True
        # Multi-hop: walk interval links transitively.  From a reached
        # (cluster, pos) every cross block at a position >= pos of that
        # cluster leads to its position in the other cluster.
        row = self._conn.execute(
            """
            WITH RECURSIVE reach(cluster, pos) AS (
                SELECT ?, ?
                UNION
                SELECT x.dst_cluster, x.post_position
                FROM xlinks x JOIN reach r
                ON x.src_cluster = r.cluster AND x.pre_position >= r.pos
            )
            SELECT EXISTS(SELECT 1 FROM reach WHERE cluster = ? AND pos <= ?)
            """,
            (c, p, d, q),
        ).fetchone()
        return bool(row[0])
