"""Pluggable state stores and the archival tier for pruned history.

The package splits replica state management into three replaceable
layers:

- :mod:`repro.storage.base` / :mod:`repro.storage.dict_store` /
  :mod:`repro.storage.columnar` — the :class:`StateStore` interface and
  its two backends: the original dict-of-objects ``AccountStore`` and
  the flat-column ``ArrayAccountStore`` for million-account shards.
  Both maintain an order-independent incremental state digest, so a
  checkpoint costs time proportional to the accounts *touched* since
  the previous checkpoint, not to the store size.
- :mod:`repro.storage.archive` — the :class:`ArchivalBackend` that
  checkpoint GC spills pruned blocks into (sqlite implementation,
  stdlib only), including the pre/post interval index over the block
  DAG used for cross-shard ancestor queries.
- :mod:`repro.storage.history` / :mod:`repro.storage.audit` — the
  offline read side: :class:`HistoryQuery` for block / transaction /
  account-activity / ancestry lookups, and :func:`audit_archive` for
  re-verifying hash-chain continuity and balance conservation without
  a live system.

Select a backend per deployment with ``DeploymentSpec(store_backend=
"columnar", archive="run.db")`` or directly via :func:`make_store`.
"""

from __future__ import annotations

from ..common.errors import ConfigurationError
from .archive import ArchivalBackend, SqliteArchive, open_archive
from .audit import ArchiveAuditReport, audit_archive
from .base import Account, StateStore, leaf_hash
from .columnar import ArrayAccountStore, ColumnarSnapshot
from .dict_store import AccountStore
from .history import (
    ActivityRecord,
    ArchivedBlock,
    ArchivedTransaction,
    HistoryQuery,
)
from .stats import StorageStats, collect_storage_stats

__all__ = [
    "Account",
    "AccountStore",
    "ActivityRecord",
    "ArchivalBackend",
    "ArchiveAuditReport",
    "ArchivedBlock",
    "ArchivedTransaction",
    "ArrayAccountStore",
    "ColumnarSnapshot",
    "HistoryQuery",
    "SqliteArchive",
    "StateStore",
    "StorageStats",
    "STORE_BACKENDS",
    "audit_archive",
    "collect_storage_stats",
    "leaf_hash",
    "make_store",
    "open_archive",
]

#: registry of selectable state-store backends.
STORE_BACKENDS = {
    "dict": AccountStore,
    "columnar": ArrayAccountStore,
}


def make_store(
    backend: str,
    shard,
    mapper,
    initial_balance: int,
    owner_of=None,
) -> StateStore:
    """Bootstrap a shard's state store with the named backend."""
    try:
        cls = STORE_BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown store backend {backend!r}; expected one of "
            f"{sorted(STORE_BACKENDS)}"
        ) from None
    return cls.bootstrap(
        shard=shard, mapper=mapper, initial_balance=initial_balance, owner_of=owner_of
    )
