"""Aggregated storage gauges reported by :class:`repro.api.ScenarioResult`.

Complements :mod:`repro.recovery.stats`: where the recovery counters
show that compaction *ran*, these gauges show what it *cost* — resident
account rows, the largest block count any ledger view ever held
(bounded when checkpoint GC is on), and how much pruned history the
archival tier absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.system import BaseSystem

__all__ = ["StorageStats", "collect_storage_stats"]


@dataclass
class StorageStats:
    """System-wide storage footprint for one scenario run (picklable)."""

    #: state-store backend the replicas ran ("dict" or "columnar").
    backend: str = "dict"
    #: account rows resident across all replica stores (replicated copies
    #: counted individually — this is what the host actually holds).
    resident_accounts: int = 0
    #: largest block count any single ledger view ever retained.
    peak_ledger_blocks: int = 0
    #: blocks currently resident across all ledger views.
    resident_blocks: int = 0
    #: whether an archival backend was attached.
    archived: bool = False
    #: distinct pruned blocks / transaction rows in the archive.
    archive_blocks: int = 0
    archive_tx_rows: int = 0
    #: checkpoint digests recorded for offline audit.
    archive_checkpoints: int = 0
    #: on-disk archive size (0 for in-memory archives).
    archive_bytes: int = 0

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary form for CSV/JSON reporting."""
        return {
            "store_backend": self.backend,
            "resident_accounts": self.resident_accounts,
            "peak_ledger_blocks": self.peak_ledger_blocks,
            "resident_blocks": self.resident_blocks,
            "archive_blocks": self.archive_blocks,
            "archive_tx_rows": self.archive_tx_rows,
            "archive_checkpoints": self.archive_checkpoints,
            "archive_bytes": self.archive_bytes,
        }

    def summary(self) -> str:
        """One line suitable for example/CLI output."""
        line = (
            f"store {self.backend}: {self.resident_accounts} resident accounts, "
            f"ledger peak {self.peak_ledger_blocks} blocks "
            f"({self.resident_blocks} resident)"
        )
        if self.archived:
            line += (
                f", archive {self.archive_blocks} blocks / "
                f"{self.archive_tx_rows} txs / {self.archive_bytes} bytes"
            )
        return line


def collect_storage_stats(system: "BaseSystem") -> StorageStats:
    """Gauge the storage footprint of a finished system."""
    stats = StorageStats(backend=getattr(system, "store_backend", "dict"))
    for process in system.processes():
        store = getattr(process, "store", None)
        if store is not None:
            stats.resident_accounts += len(store)
        chain = getattr(process, "chain", None)
        if chain is not None:
            stats.resident_blocks += len(chain)
            stats.peak_ledger_blocks = max(
                stats.peak_ledger_blocks, getattr(chain, "peak_retained", len(chain))
            )
    archive = getattr(system, "archive", None)
    if archive is not None:
        stats.archived = True
        archive.flush()
        stats.archive_blocks = archive.blocks_archived()
        stats.archive_tx_rows = archive.tx_rows_archived()
        stats.archive_checkpoints = archive.checkpoints_archived()
        stats.archive_bytes = archive.size_bytes()
    return stats
