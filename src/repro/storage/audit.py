"""Offline archive audit: hash-chain continuity and balance conservation.

``audit_archive`` re-verifies a :class:`~repro.storage.archive.SqliteArchive`
without any live system, from the archived rows alone:

1. **Structure** — every archived cluster's positions are contiguous
   from 1 (checkpoint GC spills monotone prefixes, so gaps mean lost or
   deleted history).
2. **Hash chain** — each block's hash is *recomputed* from its archived
   transaction payload digests, position vector, proposer, and no-op
   flag, must equal the stored hash, and must equal the next block's
   parent reference; position 1 must chain off the genesis hash.  A
   tampered payload digest, position, or ordering breaks this walk.
3. **Balance conservation** — the archived transfers are replayed per
   shard through the *same* :class:`~repro.txn.execution.TransactionExecutor`
   the replicas ran (ownership and sufficient-funds validation
   included), bootstrapping from the archived metadata.  At every
   archived checkpoint the replayed store's digest must equal the
   quorum-stabilised digest recorded at run time — a tampered amount,
   source, or destination anywhere below a checkpoint changes the
   replayed digest.  Past the last checkpoint, totals are reconciled:
   minted funds plus cross-shard transfers whose counterpart side is not
   (yet) archived must account exactly for the replayed balances.

Run it offline with ``python -m repro.storage.audit ARCHIVE.db``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
from dataclasses import dataclass, field

from ..common.crypto import GENESIS_HASH, chain_hash
from .archive import SqliteArchive, open_archive
from .columnar import ArrayAccountStore

__all__ = ["ArchiveAuditReport", "audit_archive", "main"]

#: block id of the genesis block (mirrors repro.ledger.block).
_GENESIS_BLOCK_ID = "genesis"


def _recomputed_block_hash(
    tx_digests: list[str], positions: list, proposer: int, is_noop: int
) -> str:
    """Recompute a block hash from archived fields (Block's exact encoding)."""
    if len(tx_digests) == 1:
        tx_part = tx_digests[0]
    else:
        tx_part = ",".join(tx_digests)
    if len(positions) == 1:
        cluster, index = positions[0]
        pos_part = f"{int(cluster)}:{index}"
    else:
        pos_part = ",".join(f"{int(cluster)}:{index}" for cluster, index in positions)
    return hashlib.sha256(
        f"B|{tx_part}|{pos_part}|{int(proposer)}|{int(is_noop)}".encode()
    ).hexdigest()


@dataclass
class _ReplayTx:
    """Duck-typed transaction fed to the executor during replay."""

    tx_id: str
    client: int
    transfers: list


@dataclass
class ArchiveAuditReport:
    """Outcome of one offline archive audit."""

    problems: list[str] = field(default_factory=list)
    clusters_audited: int = 0
    blocks_verified: int = 0
    txs_replayed: int = 0
    transfers_replayed: int = 0
    checkpoints_verified: int = 0
    failed_replays: int = 0
    minted_total: int = 0
    replayed_total: int = 0

    @property
    def ok(self) -> bool:
        """Whether every archived invariant held."""
        return not self.problems

    def raise_if_failed(self) -> None:
        """Raise :class:`ValueError` listing the problems, if any."""
        if self.problems:
            raise ValueError("archive audit failed: " + "; ".join(self.problems))

    def summary(self) -> str:
        """One line suitable for CLI output."""
        verdict = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        return (
            f"archive audit {verdict}: {self.clusters_audited} clusters, "
            f"{self.blocks_verified} blocks hash-verified, "
            f"{self.txs_replayed} txs replayed "
            f"({self.failed_replays} failed validation), "
            f"{self.checkpoints_verified} checkpoint digests matched"
        )


def _audit_chain(archive: SqliteArchive, cluster: int, report: ArchiveAuditReport) -> None:
    """Contiguity + hash-chain walk for one cluster (streamed)."""
    conn = archive.connection
    height = archive.archived_height(cluster)
    count = conn.execute(
        "SELECT COUNT(*), MIN(position) FROM blocks WHERE cluster = ?", (cluster,)
    ).fetchone()
    if count[0] != height or (count[0] and count[1] != 1):
        report.problems.append(
            f"cluster {cluster}: archived positions are not contiguous 1..{height} "
            f"({count[0]} rows, lowest {count[1]})"
        )
        return
    tx_cursor = conn.execute(
        "SELECT position, payload_digest FROM txs WHERE cluster = ?"
        " ORDER BY position, tx_ord",
        (cluster,),
    )
    tx_row = tx_cursor.fetchone()
    previous_hash = chain_hash(_GENESIS_BLOCK_ID, GENESIS_HASH)
    for position, stored_hash, parent_hash, proposer, is_noop, positions_json in conn.execute(
        "SELECT position, block_hash, parent_hash, proposer, is_noop, positions"
        " FROM blocks WHERE cluster = ? ORDER BY position",
        (cluster,),
    ):
        digests = []
        while tx_row is not None and tx_row[0] == position:
            digests.append(tx_row[1])
            tx_row = tx_cursor.fetchone()
        recomputed = _recomputed_block_hash(
            digests, json.loads(positions_json), proposer, is_noop
        )
        if recomputed != stored_hash:
            report.problems.append(
                f"cluster {cluster} position {position}: stored hash does not match "
                f"the hash recomputed from archived transactions"
            )
        if parent_hash != previous_hash:
            report.problems.append(
                f"cluster {cluster} position {position}: hash chain broken "
                f"(parent reference does not match block {position - 1})"
            )
        previous_hash = recomputed
        report.blocks_verified += 1


def _audit_cross_consistency(archive: SqliteArchive, report: ArchiveAuditReport) -> None:
    """Every cluster that archived a tx must agree on its payload digest."""
    for tx_id, distinct in archive.connection.execute(
        "SELECT tx_id, COUNT(DISTINCT payload_digest) FROM txs"
        " GROUP BY tx_id HAVING COUNT(DISTINCT payload_digest) > 1"
    ):
        report.problems.append(
            f"transaction {tx_id}: {distinct} different payload digests archived "
            "across clusters"
        )


def _replay_cluster(
    archive: SqliteArchive,
    cluster: int,
    mapper,
    meta: dict,
    report: ArchiveAuditReport,
    out_applied: dict,
    in_applied: dict,
) -> int:
    """Replay one shard's archived transfers; returns its final total."""
    from ..txn.execution import TransactionExecutor
    from ..txn.transaction import Transfer

    num_clients = meta["num_clients"]
    store = ArrayAccountStore.bootstrap(
        shard=cluster,
        mapper=mapper,
        initial_balance=meta["initial_balance"],
        owner_of=lambda account_id: account_id % num_clients,
    )
    executor = TransactionExecutor(store, mapper, cluster)
    conn = archive.connection
    height = archive.archived_height(cluster)
    checkpoints = conn.execute(
        "SELECT seq, store_digest FROM checkpoints WHERE cluster = ? AND seq <= ?"
        " ORDER BY seq",
        (cluster, height),
    ).fetchall()
    checkpoint_index = 0

    def check_checkpoints(position: int) -> None:
        nonlocal checkpoint_index
        while checkpoint_index < len(checkpoints) and checkpoints[checkpoint_index][0] <= position:
            seq, recorded = checkpoints[checkpoint_index]
            if store.state_digest() != recorded:
                report.problems.append(
                    f"cluster {cluster} checkpoint {seq}: replayed store digest "
                    "does not match the quorum-stabilised digest"
                )
            report.checkpoints_verified += 1
            checkpoint_index += 1

    def run_tx(tx: "_ReplayTx", position: int) -> None:
        try:
            result = executor.execute(tx)
        except Exception as exc:  # tampered rows can break invariants hard
            report.problems.append(
                f"cluster {cluster} position {position}: replay of {tx.tx_id} "
                f"raised {exc}"
            )
            return
        report.txs_replayed += 1
        if not result.success:
            report.failed_replays += 1
        for idx, transfer in enumerate(tx.transfers):
            source_shard = mapper.shard_of(transfer.source)
            destination_shard = mapper.shard_of(transfer.destination)
            if source_shard == destination_shard:
                if result.success and source_shard == cluster:
                    report.transfers_replayed += 1
                continue
            key = (tx.tx_id, idx)
            if source_shard == cluster and result.success:
                report.transfers_replayed += 1
                if key in in_applied:
                    del in_applied[key]
                else:
                    out_applied[key] = transfer.amount
            if destination_shard == cluster and result.success:
                report.transfers_replayed += 1
                if key in out_applied:
                    del out_applied[key]
                else:
                    in_applied[key] = transfer.amount

    current: "_ReplayTx | None" = None
    current_position = 0
    last_position = 0
    for position, tx_ord, tx_id, client, source, destination, amount in conn.execute(
        "SELECT t.position, t.tx_ord, t.tx_id, t.client, f.source, f.destination, f.amount"
        " FROM txs t JOIN transfers f ON f.tx_id = t.tx_id AND f.cluster = t.cluster"
        " WHERE t.cluster = ? ORDER BY t.position, t.tx_ord, f.idx",
        (cluster,),
    ):
        if current is not None and (current.tx_id != tx_id or current_position != position):
            check_checkpoints(current_position - 1)
            run_tx(current, current_position)
            current = None
        if current is None:
            current = _ReplayTx(tx_id=tx_id, client=client, transfers=[])
            current_position = position
        try:
            current.transfers.append(
                Transfer(source=source, destination=destination, amount=amount)
            )
        except Exception as exc:
            report.problems.append(
                f"cluster {cluster} position {position}: archived transfer of "
                f"{tx_id} is malformed ({exc})"
            )
        last_position = position
    if current is not None:
        check_checkpoints(current_position - 1)
        run_tx(current, current_position)
    check_checkpoints(max(last_position, height))
    return store.total_balance()


def audit_archive(source: "str | os.PathLike | SqliteArchive") -> ArchiveAuditReport:
    """Audit an archive end to end; see the module docstring for the checks."""
    from ..txn.accounts import ShardMapper  # lazy: breaks an import cycle

    archive = open_archive(source)
    archive.flush()
    report = ArchiveAuditReport()
    clusters = archive.clusters()
    report.clusters_audited = len(clusters)
    for cluster in clusters:
        _audit_chain(archive, cluster, report)
    _audit_cross_consistency(archive, report)
    meta = archive.bootstrap_meta()
    if meta is None:
        if clusters:
            report.problems.append(
                "archive has no bootstrap metadata; balance replay impossible"
            )
        return report
    mapper = ShardMapper(
        num_shards=meta["num_shards"],
        accounts_per_shard=meta["accounts_per_shard"],
        strategy=meta.get("partition_strategy", "range"),
    )
    report.minted_total = (
        meta["num_shards"] * meta["accounts_per_shard"] * meta["initial_balance"]
    )
    out_applied: dict = {}
    in_applied: dict = {}
    total = 0
    for shard in range(meta["num_shards"]):
        total += _replay_cluster(
            archive, shard, mapper, meta, report, out_applied, in_applied
        )
    report.replayed_total = total
    # Cross-shard transfers whose counterpart side is beyond the other
    # cluster's archived height are legitimately one-sided; everything
    # else must reconcile exactly with the minted total.
    pending_out = sum(out_applied.values())
    pending_in = sum(in_applied.values())
    expected = report.minted_total - pending_out + pending_in
    if total != expected:
        report.problems.append(
            f"balance not conserved: replayed total {total} != minted "
            f"{report.minted_total} - {pending_out} in-flight out "
            f"+ {pending_in} in-flight in"
        )
    return report


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: ``python -m repro.storage.audit ARCHIVE.db``."""
    parser = argparse.ArgumentParser(description="Audit a pruned-history archive.")
    parser.add_argument("archive", help="path to the sqlite archive database")
    args = parser.parse_args(argv)
    report = audit_archive(args.archive)
    print(report.summary())
    for problem in report.problems:
        print(f"  problem: {problem}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
