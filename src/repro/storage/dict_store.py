"""The dict-of-objects state store (the repo's original backend).

:class:`AccountStore` keeps one :class:`~repro.storage.base.Account`
object per account in a plain dict — simple, allocation-heavy, and the
right default for the paper's evaluation sizes (a few thousand accounts
per shard).  It participates in the incremental digest protocol of
:class:`~repro.storage.base.StateStore`: every write records the
account's pre-image, so ``state_digest()`` between checkpoints re-hashes
only the touched accounts instead of re-sorting the whole table.

For million-account populations use
:class:`repro.storage.columnar.ArrayAccountStore` instead (flat array
columns, lazy checkpoint snapshots); the two backends produce
bit-identical digests, replies, and audits.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from ..common.errors import (
    InsufficientBalanceError,
    UnknownAccountError,
    ValidationError,
)
from ..common.types import AccountId, ClientId, ShardId
from .base import Account, StateStore, resolve_owner

__all__ = ["AccountStore"]


class AccountStore(StateStore):
    """Mutable balance table backed by a dict of :class:`Account` objects."""

    backend_name = "dict"

    def __init__(self, shard: ShardId | None = None) -> None:
        super().__init__(shard)
        self._accounts: dict[AccountId, Account] = {}

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def create_account(self, account_id: AccountId, owner: ClientId, balance: int) -> Account:
        """Create a new account; fails if the id already exists."""
        if account_id in self._accounts:
            raise ValidationError(f"account {account_id} already exists")
        account = Account(account_id=account_id, owner=owner, balance=balance)
        self._note_write(account_id, None)
        self._accounts[account_id] = account
        return account

    @classmethod
    def bootstrap(
        cls,
        shard: ShardId,
        mapper,
        initial_balance: int,
        owner_of: "Mapping[AccountId, ClientId] | Callable[[AccountId], ClientId] | None" = None,
    ) -> "AccountStore":
        """Create a store pre-populated with every account of ``shard``."""
        store = cls(shard=shard)
        for raw_id in mapper.accounts_in_shard(shard):
            account_id = AccountId(raw_id)
            store.create_account(
                account_id, resolve_owner(owner_of, account_id), initial_balance
            )
        return store

    def clone(self) -> "AccountStore":
        """An independent deep copy (bootstrap sharing across replicas)."""
        copy = AccountStore(shard=self.shard)
        copy._accounts = {
            account_id: Account(
                account_id=account_id, owner=account.owner, balance=account.balance
            )
            for account_id, account in self._accounts.items()
        }
        copy._digest_acc = self._digest_acc
        copy._pending = dict(self._pending)
        copy.version = self.version
        return copy

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __contains__(self, account_id: AccountId) -> bool:
        return account_id in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    def __iter__(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def account(self, account_id: AccountId) -> Account:
        """Return the account record or raise :class:`UnknownAccountError`."""
        try:
            return self._accounts[account_id]
        except KeyError:
            raise UnknownAccountError(f"unknown account {account_id}") from None

    def total_balance(self) -> int:
        """Sum of all balances in this store (conservation invariant)."""
        return sum(account.balance for account in self._accounts.values())

    def _entry(self, account_id: AccountId) -> tuple[ClientId, int]:
        account = self._accounts[account_id]
        return (account.owner, account.balance)

    def _entries(self) -> Iterator[tuple[AccountId, ClientId, int]]:
        for account_id, account in self._accounts.items():
            yield (account_id, account.owner, account.balance)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def deposit(self, account_id: AccountId, amount: int) -> None:
        """Credit ``amount`` to the account."""
        if amount < 0:
            raise ValidationError("deposit amount must be non-negative")
        account = self.account(account_id)
        self._note_write(account_id, (account.owner, account.balance))
        account.balance += amount
        self.version += 1

    def withdraw(self, account_id: AccountId, amount: int, requester: ClientId | None = None) -> None:
        """Debit ``amount`` from the account.

        If ``requester`` is given it must match the account owner,
        implementing the paper's "valid signature of its owner" check.
        """
        if amount < 0:
            raise ValidationError("withdrawal amount must be non-negative")
        account = self.account(account_id)
        if requester is not None and account.owner != requester:
            raise ValidationError(
                f"client {requester} does not own account {account_id}"
            )
        if account.balance < amount:
            raise InsufficientBalanceError(
                f"account {account_id} holds {account.balance} < {amount}"
            )
        self._note_write(account_id, (account.owner, account.balance))
        account.balance -= amount
        self.version += 1

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[AccountId, tuple[ClientId, int]]:
        """Cheap copy of the full state, used by tests and state transfer."""
        return {
            account_id: (account.owner, account.balance)
            for account_id, account in self._accounts.items()
        }

    def restore(self, snapshot: Mapping[AccountId, tuple[ClientId, int]]) -> None:
        """Replace the store contents with ``snapshot``."""
        self._accounts = {
            account_id: Account(account_id=account_id, owner=owner, balance=balance)
            for account_id, (owner, balance) in snapshot.items()
        }
        self._reset_digest()
        self.version += 1
