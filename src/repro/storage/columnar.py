"""Columnar million-account state store: flat array columns, O(1) lookup.

:class:`ArrayAccountStore` stores a shard's balance table in flat
``array('q')`` columns indexed by *dense* account ids.  Both
:class:`~repro.txn.accounts.ShardMapper` strategies assign a shard an
arithmetic progression of account ids (``range(start, stop)`` for the
contiguous-range strategy, ``range(shard, total, num_shards)`` for
modulo), so ``dense_index = (account_id - first) // stride`` gives O(1)
lookup with no per-account Python objects — at one million accounts the
resident footprint is two 8 MB arrays plus a presence bitmap, instead of
a dict of a million :class:`~repro.storage.base.Account` objects.
Accounts outside the progression (tests creating ad-hoc ids) fall back
to a small overflow dict.

Two properties make the backend checkpointable at this scale:

* the **incremental digest** inherited from
  :class:`~repro.storage.base.StateStore` — a checkpoint digest costs
  ``O(accounts changed since the last checkpoint)``;
* **lazy checkpoint snapshots** (:meth:`ArrayAccountStore.checkpoint_snapshot`):
  instead of copying the table per checkpoint, the store opens an *undo
  epoch* that records the pre-image of each account the first time it is
  written after the checkpoint.  A :class:`ColumnarSnapshot` is a
  Mapping view that materialises on demand by walking the undo frames
  newest-to-oldest (older pre-images overwrite newer ones), and caches
  the result.  Frames older than every live snapshot are released at the
  next checkpoint, so retained undo state is bounded by the checkpoint
  manager's pending-record window.
"""

from __future__ import annotations

import weakref
from array import array
from typing import Callable, Iterator, Mapping

from ..common.errors import (
    InsufficientBalanceError,
    UnknownAccountError,
    ValidationError,
)
from ..common.types import AccountId, ClientId, ShardId
from .base import Account, StateStore, resolve_owner

__all__ = ["ArrayAccountStore", "ColumnarSnapshot"]


class ColumnarSnapshot(Mapping):
    """Lazy ``id -> (owner, balance)`` view of a store at checkpoint ``seq``.

    Materialises (and caches) the full mapping on first access; until
    then it holds no per-account state.  Safe to ship in state-transfer
    responses: it satisfies the Mapping protocol that
    :meth:`repro.storage.base.StateStore.snapshot_digest` and
    ``store.restore`` consume.
    """

    def __init__(self, store: "ArrayAccountStore", seq: int) -> None:
        self._store = store
        self.seq = seq
        self._data: dict[AccountId, tuple[ClientId, int]] | None = None

    @property
    def materialized(self) -> bool:
        """Whether the snapshot has been expanded to an eager dict yet."""
        return self._data is not None

    def _ensure(self) -> dict[AccountId, tuple[ClientId, int]]:
        if self._data is None:
            self._data = self._store._materialize_at(self.seq)
        return self._data

    def __getitem__(self, account_id: AccountId) -> tuple[ClientId, int]:
        return self._ensure()[account_id]

    def __iter__(self) -> Iterator[AccountId]:
        return iter(self._ensure())

    def __len__(self) -> int:
        return len(self._ensure())

    def items(self):
        return self._ensure().items()

    # Mapping sets __hash__ to None; snapshots are tracked by identity
    # in the store's WeakSet, so restore identity hashing.
    __hash__ = object.__hash__


class ArrayAccountStore(StateStore):
    """Balance table in flat columns, keyed by dense account indices."""

    backend_name = "columnar"

    def __init__(
        self,
        shard: ShardId | None = None,
        first_id: int = 0,
        stride: int = 1,
        capacity: int = 0,
    ) -> None:
        super().__init__(shard)
        if stride <= 0:
            raise ValidationError("account id stride must be positive")
        self._first = int(first_id)
        self._stride = int(stride)
        self._capacity = int(capacity)
        self._balances = array("q", bytes(8 * self._capacity))
        self._owners = array("q", bytes(8 * self._capacity))
        self._present = bytearray(self._capacity)
        #: accounts outside the dense progression (ad-hoc test ids).
        self._extra: dict[AccountId, Account] = {}
        self._count = 0
        self._total = 0
        # -- lazy checkpoint snapshot machinery --------------------------
        #: pre-images of writes since the last checkpoint (None = no
        #: checkpoint snapshot is live, undo tracking is off).
        self._epoch_undo: dict[AccountId, tuple[ClientId, int] | None] | None = None
        #: checkpoint seq at which the open epoch started.
        self._epoch_seq = 0
        #: closed epochs, oldest first: ``(epoch_start_seq, undo dict)``.
        self._frames: list[tuple[int, dict]] = []
        self._snapshots: "weakref.WeakSet[ColumnarSnapshot]" = weakref.WeakSet()

    # ------------------------------------------------------------------
    # dense index mapping
    # ------------------------------------------------------------------
    def _slot(self, account_id: int) -> int | None:
        """Dense column index of ``account_id``, or None if off-progression."""
        offset = int(account_id) - self._first
        if offset < 0:
            return None
        index, remainder = divmod(offset, self._stride)
        if remainder or index >= self._capacity:
            return None
        return index

    def _id_at(self, slot: int) -> AccountId:
        return AccountId(self._first + slot * self._stride)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    @classmethod
    def bootstrap(
        cls,
        shard: ShardId,
        mapper,
        initial_balance: int,
        owner_of: "Mapping[AccountId, ClientId] | Callable[[AccountId], ClientId] | None" = None,
    ) -> "ArrayAccountStore":
        """Create a store pre-populated with every account of ``shard``.

        ``mapper.accounts_in_shard`` returns an arithmetic progression
        (a ``range``) under both partition strategies; its start/step
        become the store's dense-id mapping and the columns are filled
        directly, bypassing the per-account ``create_account`` path.
        """
        if initial_balance < 0:
            raise ValidationError("accounts cannot start with negative balance")
        ids = mapper.accounts_in_shard(shard)
        stride = ids.step if isinstance(ids, range) else 1
        first = ids.start if isinstance(ids, range) else (min(ids) if len(ids) else 0)
        store = cls(shard=shard, first_id=first, stride=stride, capacity=len(ids))
        balances = store._balances
        owners = store._owners
        for slot, raw_id in enumerate(ids):
            balances[slot] = initial_balance
            owners[slot] = int(resolve_owner(owner_of, AccountId(raw_id)))
        store._present = bytearray(b"\x01" * len(ids))
        store._count = len(ids)
        store._total = initial_balance * len(ids)
        return store

    def create_account(self, account_id: AccountId, owner: ClientId, balance: int) -> Account:
        """Create a new account; fails if the id already exists."""
        if account_id in self:
            raise ValidationError(f"account {account_id} already exists")
        account = Account(account_id=account_id, owner=owner, balance=balance)
        self._note_write(account_id, None)
        slot = self._slot(account_id)
        if slot is None:
            self._extra[account_id] = account
        else:
            self._present[slot] = 1
            self._balances[slot] = balance
            self._owners[slot] = int(owner)
        self._count += 1
        self._total += balance
        self.version += 1
        return account

    def clone(self) -> "ArrayAccountStore":
        """An independent deep copy (bootstrap sharing across replicas).

        Snapshot/undo state is not cloned — clones start a fresh
        checkpoint history, exactly like a freshly bootstrapped replica.
        """
        copy = ArrayAccountStore(
            shard=self.shard,
            first_id=self._first,
            stride=self._stride,
            capacity=self._capacity,
        )
        copy._balances = self._balances[:]
        copy._owners = self._owners[:]
        copy._present = bytearray(self._present)
        copy._extra = {
            account_id: Account(
                account_id=account_id, owner=account.owner, balance=account.balance
            )
            for account_id, account in self._extra.items()
        }
        copy._count = self._count
        copy._total = self._total
        copy._digest_acc = self._digest_acc
        copy._pending = dict(self._pending)
        copy.version = self.version
        return copy

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __contains__(self, account_id: AccountId) -> bool:
        slot = self._slot(account_id)
        if slot is not None:
            return bool(self._present[slot])
        return account_id in self._extra

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Account]:
        present = self._present
        balances = self._balances
        owners = self._owners
        for slot in range(self._capacity):
            if present[slot]:
                yield Account(
                    account_id=self._id_at(slot),
                    owner=ClientId(owners[slot]),
                    balance=balances[slot],
                )
        yield from self._extra.values()

    def account(self, account_id: AccountId) -> Account:
        """Materialise the account record (a fresh object per call).

        Mutations must go through :meth:`deposit`/:meth:`withdraw`;
        writing to the returned object does not touch the columns.
        """
        slot = self._slot(account_id)
        if slot is not None and self._present[slot]:
            return Account(
                account_id=account_id,
                owner=ClientId(self._owners[slot]),
                balance=self._balances[slot],
            )
        try:
            return self._extra[account_id]
        except KeyError:
            raise UnknownAccountError(f"unknown account {account_id}") from None

    def balance(self, account_id: AccountId) -> int:
        """Current balance of ``account_id`` (column read, no allocation)."""
        slot = self._slot(account_id)
        if slot is not None and self._present[slot]:
            return self._balances[slot]
        try:
            return self._extra[account_id].balance
        except KeyError:
            raise UnknownAccountError(f"unknown account {account_id}") from None

    def total_balance(self) -> int:
        """Sum of all balances (maintained incrementally, O(1))."""
        return self._total

    def _entry(self, account_id: AccountId) -> tuple[ClientId, int]:
        slot = self._slot(account_id)
        if slot is not None and self._present[slot]:
            return (ClientId(self._owners[slot]), self._balances[slot])
        account = self._extra[account_id]
        return (account.owner, account.balance)

    def _entries(self) -> Iterator[tuple[AccountId, ClientId, int]]:
        present = self._present
        balances = self._balances
        owners = self._owners
        for slot in range(self._capacity):
            if present[slot]:
                yield (self._id_at(slot), ClientId(owners[slot]), balances[slot])
        for account_id, account in self._extra.items():
            yield (account_id, account.owner, account.balance)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _note_write(
        self, account_id: AccountId, before: tuple[ClientId, int] | None
    ) -> None:
        pending = self._pending
        if account_id not in pending:
            pending[account_id] = before
        undo = self._epoch_undo
        if undo is not None and account_id not in undo:
            undo[account_id] = before

    def deposit(self, account_id: AccountId, amount: int) -> None:
        """Credit ``amount`` to the account."""
        if amount < 0:
            raise ValidationError("deposit amount must be non-negative")
        slot = self._slot(account_id)
        if slot is not None and self._present[slot]:
            self._note_write(account_id, (ClientId(self._owners[slot]), self._balances[slot]))
            self._balances[slot] += amount
        else:
            account = self._extra.get(account_id)
            if account is None:
                raise UnknownAccountError(f"unknown account {account_id}")
            self._note_write(account_id, (account.owner, account.balance))
            account.balance += amount
        self._total += amount
        self.version += 1

    def withdraw(self, account_id: AccountId, amount: int, requester: ClientId | None = None) -> None:
        """Debit ``amount``; ``requester`` (when given) must own the account."""
        if amount < 0:
            raise ValidationError("withdrawal amount must be non-negative")
        slot = self._slot(account_id)
        if slot is not None and self._present[slot]:
            owner = ClientId(self._owners[slot])
            balance = self._balances[slot]
        else:
            account = self._extra.get(account_id)
            if account is None:
                raise UnknownAccountError(f"unknown account {account_id}")
            owner = account.owner
            balance = account.balance
        if requester is not None and owner != requester:
            raise ValidationError(
                f"client {requester} does not own account {account_id}"
            )
        if balance < amount:
            raise InsufficientBalanceError(
                f"account {account_id} holds {balance} < {amount}"
            )
        self._note_write(account_id, (owner, balance))
        if slot is not None and self._present[slot]:
            self._balances[slot] -= amount
        else:
            self._extra[account_id].balance -= amount
        self._total -= amount
        self.version += 1

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[AccountId, tuple[ClientId, int]]:
        """Eager copy of the full state (``id -> (owner, balance)``)."""
        return {
            account_id: (owner, balance)
            for account_id, owner, balance in self._entries()
        }

    def checkpoint_snapshot(self, seq: int) -> ColumnarSnapshot:
        """Open a new undo epoch and return a lazy snapshot at ``seq``.

        Called by the checkpoint manager right after applying slot
        ``seq``; O(1) — no account data is copied until (unless) the
        snapshot is actually read, e.g. to serve a state transfer.
        """
        # Close the epoch that was accumulating since the last checkpoint.
        if self._epoch_undo is not None:
            self._frames.append((self._epoch_seq, self._epoch_undo))
        # Release frames no live, unmaterialised snapshot can still need.
        live = [
            snap.seq for snap in self._snapshots if not snap.materialized
        ]
        floor = min(live) if live else seq
        if self._frames:
            self._frames = [
                frame for frame in self._frames if frame[0] >= floor
            ]
        self._epoch_undo = {}
        self._epoch_seq = seq
        snapshot = ColumnarSnapshot(self, seq)
        self._snapshots.add(snapshot)
        return snapshot

    def _materialize_at(self, seq: int) -> dict[AccountId, tuple[ClientId, int]]:
        """Current state rolled back to checkpoint ``seq`` via undo frames.

        Pre-image layers are applied newest-to-oldest with unconditional
        assignment, so for an account written in several epochs the
        oldest pre-image at or after ``seq`` — its value *at* ``seq`` —
        wins.  ``None`` pre-images (account did not exist) delete.
        """
        data = self.snapshot()
        layers: list[dict] = []
        if self._epoch_undo is not None and self._epoch_seq >= seq:
            layers.append(self._epoch_undo)
        for epoch_start, undo in reversed(self._frames):
            if epoch_start >= seq:
                layers.append(undo)
        for undo in layers:
            for account_id, before in undo.items():
                if before is None:
                    data.pop(account_id, None)
                else:
                    data[account_id] = before
        return data

    def restore(self, snapshot: Mapping[AccountId, tuple[ClientId, int]]) -> None:
        """Replace the store contents with ``snapshot``.

        Live lazy snapshots are materialised first: their undo frames
        are expressed against the *current* columns, which this call is
        about to overwrite wholesale.
        """
        for snap in list(self._snapshots):
            snap._ensure()
        self._frames = []
        self._epoch_undo = None
        self._epoch_seq = 0
        self._balances = array("q", bytes(8 * self._capacity))
        self._owners = array("q", bytes(8 * self._capacity))
        self._present = bytearray(self._capacity)
        self._extra = {}
        count = 0
        total = 0
        for account_id, (owner, balance) in snapshot.items():
            slot = self._slot(account_id)
            if slot is None:
                self._extra[account_id] = Account(
                    account_id=account_id, owner=owner, balance=balance
                )
            else:
                self._present[slot] = 1
                self._balances[slot] = balance
                self._owners[slot] = int(owner)
            count += 1
            total += balance
        self._count = count
        self._total = total
        self._reset_digest()
        self.version += 1
