"""Experiment harness: load sweeps producing throughput/latency curves.

The paper's methodology (Section 4): drive each system with an increasing
number of closed-loop clients until throughput saturates, and report the
throughput (x axis) and average latency (y axis) measured during steady
state.  :func:`run_point` measures one client count; :func:`run_curve`
sweeps a list of client counts and returns the resulting curve, from
which :func:`peak_throughput` extracts the "just below saturation" point.

Both are thin wrappers over :class:`repro.api.Scenario`: an
:class:`ExperimentSpec` is the flat, sweep-friendly form of a scenario
(:meth:`ExperimentSpec.to_scenario` converts), and systems are resolved
through the pluggable registry (:func:`repro.api.register_system`), so
any registered system — including third-party ones — can be swept.

Performance model & parallel execution
--------------------------------------
Scenarios are deterministic and self-contained, so :func:`run_curve`
accepts ``jobs`` (run the ``point × seed`` grid in a
``multiprocessing`` pool — per-seed results are bit-identical to serial
execution) and ``seeds`` (repeat each point over several seeds and pool
the statistics with :meth:`RunStats.aggregate`).  The CLI exposes both
as ``--jobs N`` and ``--seeds K``; ``repro.bench.perfbench`` tracks the
wall-clock cost of the fig8 sweep in ``BENCH_kernel.json``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..api import DeploymentSpec, FaultSchedule, Scenario, run_scenarios
from ..common.config import PerformanceModel, ProtocolTuning
from ..common.metrics import RunStats
from ..common.types import FaultModel
from ..core.system import BaseSystem
from ..txn.workload import WorkloadConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import TraceSpec

__all__ = [
    "ExperimentSpec",
    "CurvePoint",
    "Curve",
    "run_point",
    "run_curve",
    "peak_throughput",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to measure one system under one workload."""

    system: str
    fault_model: FaultModel
    num_clusters: int = 4
    f: int = 1
    cross_shard_fraction: float = 0.0
    shards_per_cross_tx: int = 2
    accounts_per_shard: int = 256
    num_app_clients: int = 32
    duration: float = 0.30
    warmup: float = 0.06
    seed: int = 1
    performance: PerformanceModel = field(default_factory=PerformanceModel)
    tuning: ProtocolTuning = field(default_factory=ProtocolTuning)
    #: arm the :mod:`repro.obs` flight recorder on every point; traced
    #: sweeps gain additive ``phase_*`` columns in their reports while
    #: untraced sweeps keep the exact legacy header.
    trace: "TraceSpec | bool | None" = None

    def to_scenario(
        self,
        clients: int,
        verify: bool = False,
        faults: FaultSchedule | None = None,
        name: str = "",
    ) -> Scenario:
        """The :class:`~repro.api.Scenario` equivalent of this spec."""
        deployment = DeploymentSpec(
            system=self.system,
            fault_model=self.fault_model,
            num_clusters=self.num_clusters,
            f=self.f,
            performance=self.performance,
            tuning=self.tuning,
            trace=self.trace,
        )
        workload = WorkloadConfig(
            cross_shard_fraction=self.cross_shard_fraction,
            shards_per_cross_tx=self.shards_per_cross_tx,
            accounts_per_shard=self.accounts_per_shard,
            num_clients=self.num_app_clients,
        )
        return Scenario(
            deployment=deployment,
            workload=workload,
            name=name,
            clients=clients,
            duration=self.duration,
            warmup=self.warmup,
            seed=self.seed,
            faults=faults or FaultSchedule(),
            verify=verify,
        )

    def build_system(self) -> BaseSystem:
        """Instantiate the system under test."""
        return self.to_scenario(clients=0).build_system()


@dataclass(frozen=True)
class CurvePoint:
    """One measured point of a throughput/latency curve."""

    clients: int
    stats: RunStats
    #: additive per-phase latency columns (``phase_<scope>_<name>_avg_ms``)
    #: from the flight recorder; empty for untraced points, so legacy
    #: reports keep their exact header.
    phase_columns: dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        return self.stats.throughput

    @property
    def latency_ms(self) -> float:
        """Average end-to-end latency in milliseconds."""
        return self.stats.avg_latency * 1e3


@dataclass(frozen=True)
class Curve:
    """The throughput/latency curve of one system under one workload."""

    system: str
    label: str
    points: tuple[CurvePoint, ...]

    def peak(self) -> CurvePoint:
        """The point with the highest throughput ("just below saturation")."""
        return max(self.points, key=lambda point: point.throughput)

    def as_rows(self) -> list[dict[str, float]]:
        """Rows suitable for CSV/text reporting.

        The five legacy columns always lead, in their historic order;
        a traced point's ``phase_*`` breakdown columns are appended
        after them (the CSV/text renderers union headers across rows,
        so mixed traced/untraced figures stay well-formed).
        """
        return [
            {
                "system": self.label,
                "clients": point.clients,
                "throughput_tps": round(point.throughput, 1),
                "avg_latency_ms": round(point.latency_ms, 2),
                "p95_latency_ms": round(point.stats.p95_latency * 1e3, 2),
                **point.phase_columns,
            }
            for point in self.points
        ]


def run_point(
    spec: ExperimentSpec,
    clients: int,
    check_consistency: bool = False,
) -> RunStats:
    """Run one system at one offered load and return its steady-state stats."""
    result = spec.to_scenario(clients, verify=check_consistency).run()
    if check_consistency:
        result.raise_if_failed()
    return result.stats


def run_curve(
    spec: ExperimentSpec,
    client_counts: Sequence[int],
    label: str | None = None,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    seeds: Sequence[int] | None = None,
) -> Curve:
    """Sweep offered load and return the throughput/latency curve.

    ``seeds`` repeats every point once per seed and pools the per-seed
    statistics with :meth:`RunStats.aggregate` (defaults to the spec's
    single seed).  ``jobs`` runs the whole ``point × seed`` grid in a
    ``multiprocessing`` pool; per-seed results are bit-identical to a
    serial run, so parallelism never changes the curve.
    """
    seed_list = list(seeds) if seeds else [spec.seed]
    scenarios = [
        dataclasses.replace(spec, seed=seed).to_scenario(
            clients, name=label or spec.system
        )
        for clients in client_counts
        for seed in seed_list
    ]
    results = run_scenarios(scenarios, jobs=jobs, progress=progress)
    points = []
    per_point = len(seed_list)
    for index, clients in enumerate(client_counts):
        chunk = results[index * per_point : (index + 1) * per_point]
        # Traced points carry the first seed's phase breakdown (the
        # per-phase averages are stable across seeds; pooling percentile
        # summaries would misstate them).
        traced = next((result.trace for result in chunk if result.trace is not None), None)
        points.append(
            CurvePoint(
                clients=clients,
                stats=RunStats.aggregate([result.stats for result in chunk]),
                phase_columns=traced.phase_columns() if traced is not None else {},
            )
        )
    return Curve(system=spec.system, label=label or spec.system, points=tuple(points))


def peak_throughput(curve: Curve) -> float:
    """Peak throughput of a curve (transactions per second)."""
    return curve.peak().throughput
