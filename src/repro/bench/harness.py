"""Experiment harness: load sweeps producing throughput/latency curves.

The paper's methodology (Section 4): drive each system with an increasing
number of closed-loop clients until throughput saturates, and report the
throughput (x axis) and average latency (y axis) measured during steady
state.  :func:`run_point` measures one client count; :func:`run_curve`
sweeps a list of client counts and returns the resulting curve, from
which :func:`peak_throughput` extracts the "just below saturation" point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, Type

from ..common.config import PerformanceModel, ProtocolTuning, SystemConfig
from ..common.metrics import MetricsCollector, RunStats
from ..common.types import FaultModel
from ..core.system import BaseSystem, SharPerSystem
from ..baselines.ahl import AHLSystem
from ..baselines.single_group import ActivePassiveSystem, FastConsensusSystem
from ..txn.workload import WorkloadConfig

__all__ = [
    "SYSTEM_REGISTRY",
    "ExperimentSpec",
    "CurvePoint",
    "Curve",
    "run_point",
    "run_curve",
    "peak_throughput",
]

#: registry of evaluated systems, keyed by the short names used in reports.
SYSTEM_REGISTRY: dict[str, Type[BaseSystem]] = {
    "sharper": SharPerSystem,
    "ahl": AHLSystem,
    "apr": ActivePassiveSystem,
    "fast": FastConsensusSystem,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to measure one system under one workload."""

    system: str
    fault_model: FaultModel
    num_clusters: int = 4
    f: int = 1
    cross_shard_fraction: float = 0.0
    shards_per_cross_tx: int = 2
    accounts_per_shard: int = 256
    num_app_clients: int = 32
    duration: float = 0.30
    warmup: float = 0.06
    seed: int = 1
    performance: PerformanceModel = field(default_factory=PerformanceModel)
    tuning: ProtocolTuning = field(default_factory=ProtocolTuning)

    def build_system(self) -> BaseSystem:
        """Instantiate the system under test."""
        try:
            system_cls = SYSTEM_REGISTRY[self.system]
        except KeyError:
            raise KeyError(
                f"unknown system {self.system!r}; choose from {sorted(SYSTEM_REGISTRY)}"
            ) from None
        config = SystemConfig.build(
            num_clusters=self.num_clusters,
            fault_model=self.fault_model,
            f=self.f,
            performance=self.performance,
            tuning=self.tuning,
            seed=self.seed,
        )
        workload = WorkloadConfig(
            cross_shard_fraction=self.cross_shard_fraction,
            shards_per_cross_tx=self.shards_per_cross_tx,
            accounts_per_shard=self.accounts_per_shard,
            num_clients=self.num_app_clients,
        )
        return system_cls(config, workload, seed=self.seed)


@dataclass(frozen=True)
class CurvePoint:
    """One measured point of a throughput/latency curve."""

    clients: int
    stats: RunStats

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        return self.stats.throughput

    @property
    def latency_ms(self) -> float:
        """Average end-to-end latency in milliseconds."""
        return self.stats.avg_latency * 1e3


@dataclass(frozen=True)
class Curve:
    """The throughput/latency curve of one system under one workload."""

    system: str
    label: str
    points: tuple[CurvePoint, ...]

    def peak(self) -> CurvePoint:
        """The point with the highest throughput ("just below saturation")."""
        return max(self.points, key=lambda point: point.throughput)

    def as_rows(self) -> list[dict[str, float]]:
        """Rows suitable for CSV/text reporting."""
        return [
            {
                "system": self.label,
                "clients": point.clients,
                "throughput_tps": round(point.throughput, 1),
                "avg_latency_ms": round(point.latency_ms, 2),
                "p95_latency_ms": round(point.stats.p95_latency * 1e3, 2),
            }
            for point in self.points
        ]


def run_point(
    spec: ExperimentSpec,
    clients: int,
    check_consistency: bool = False,
) -> RunStats:
    """Run one system at one offered load and return its steady-state stats."""
    system = spec.build_system()
    metrics = MetricsCollector(warmup=spec.warmup, measure_until=spec.duration)
    group = system.spawn_clients(clients, metrics)
    system.start_clients(group)
    end = system.sim.run(until=spec.duration)
    stats = metrics.finalize(end)
    if check_consistency:
        system.drain()
        report = system.audit()
        report.raise_if_failed()
    return stats


def run_curve(
    spec: ExperimentSpec,
    client_counts: Sequence[int],
    label: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> Curve:
    """Sweep offered load and return the throughput/latency curve."""
    points = []
    for clients in client_counts:
        stats = run_point(spec, clients)
        points.append(CurvePoint(clients=clients, stats=stats))
        if progress is not None:
            progress(
                f"{label or spec.system}: {clients} clients -> "
                f"{stats.throughput:.0f} tps @ {stats.avg_latency * 1e3:.1f} ms"
            )
    return Curve(system=spec.system, label=label or spec.system, points=tuple(points))


def peak_throughput(curve: Curve) -> float:
    """Peak throughput of a curve (transactions per second)."""
    return curve.peak().throughput
