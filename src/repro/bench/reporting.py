"""Plain-text and CSV reporting for benchmark results.

Renders :class:`~repro.bench.experiments.FigureResult` curves the way
the paper tabulates them — one row per measured point with throughput
and latency percentiles — either as an aligned text table for the CLI
or as CSV for downstream plotting.  Pure formatting: nothing here runs
a simulation or mutates results.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping

from .experiments import FigureResult

__all__ = ["format_table", "format_figure", "figure_to_csv", "write_csv"]


def _union_headers(rows: "list[Mapping[str, object]]") -> list[str]:
    """Column names across *all* rows, first-row order first.

    Additive columns (a traced point's ``phase_*`` breakdown, a
    recovering run's checkpoint counters) may appear only on later rows;
    keying the header on ``rows[0]`` alone either drops them silently
    (tables) or raises ``ValueError`` (``csv.DictWriter``).  Extra keys
    are appended after the first row's columns in first-seen order, so
    legacy consumers parsing the leading columns see an unchanged
    prefix.
    """
    headers = list(rows[0].keys())
    seen = set(headers)
    for row in rows[1:]:
        for key in row.keys():
            if key not in seen:
                seen.add(key)
                headers.append(key)
    return headers


def format_table(rows: Iterable[Mapping[str, object]]) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    headers = _union_headers(rows)
    widths = {header: len(header) for header in headers}
    for row in rows:
        for header in headers:
            widths[header] = max(widths[header], len(str(row.get(header, ""))))
    lines = []
    lines.append("  ".join(header.ljust(widths[header]) for header in headers))
    lines.append("  ".join("-" * widths[header] for header in headers))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(header, "")).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)


def format_figure(result: FigureResult) -> str:
    """Render a figure's curves the way the paper's plots read."""
    figure = result.figure
    parts = [
        f"== {figure.figure_id}: {figure.title} ==",
        f"expected shape: {figure.expected_shape}",
        format_table(result.as_rows()),
        "peak throughput (tx/s, just below saturation):",
    ]
    peaks = result.peaks()
    for label, peak in sorted(peaks.items(), key=lambda item: -item[1]):
        parts.append(f"  {label:16s} {peak:10.0f}")
    return "\n".join(parts)


def figure_to_csv(result: FigureResult) -> str:
    """Serialise a figure's measured points as CSV text."""
    rows = result.as_rows()
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_union_headers(rows), restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def write_csv(result: FigureResult, path: str) -> None:
    """Write a figure's measured points to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(figure_to_csv(result))
