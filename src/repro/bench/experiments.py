"""Definitions of every figure in the paper's evaluation (Section 4).

Each figure is described declaratively (:data:`FIGURES`): which systems
appear, which fault model and workload mix are used, and how many
clusters are deployed.  :func:`run_figure` executes the corresponding
load sweeps and returns a :class:`FigureResult` holding one
throughput/latency curve per plotted series — the same series the paper
plots:

* **Figure 6** — crash-only nodes (12 nodes, 4 clusters of 3), varying the
  cross-shard percentage: (a) 0%, (b) 20%, (c) 80%, (d) 100%.  Systems:
  SharPer, AHL-C, APR-C, FPaxos.
* **Figure 7** — Byzantine nodes (16 nodes, 4 clusters of 4), same
  percentages.  Systems: SharPer, AHL-B, APR-B, FaB.
* **Figure 8** — SharPer only, 90% intra / 10% cross-shard, scaling the
  number of clusters from 2 to 5: (a) crash-only, (b) Byzantine.

Execution flows through :class:`repro.api.Scenario` (each series'
:class:`ExperimentSpec` converts via ``to_scenario``), so the systems a
figure names are resolved by the pluggable registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..adversary import available_behaviors, get_behavior
from ..api import DeploymentSpec, FaultSchedule, Scenario, ScenarioResult, run_scenarios
from ..common.types import FaultModel
from ..txn.workload import WorkloadConfig
from .harness import Curve, ExperimentSpec, run_curve

__all__ = [
    "SeriesSpec",
    "FigureSpec",
    "FigureResult",
    "FIGURES",
    "QUICK_CLIENTS",
    "FULL_CLIENTS",
    "ATTACK_CROSS_FRACTIONS",
    "COALITION_ATTACK",
    "attack_scenario",
    "churn_scenario",
    "client_attack_scenario",
    "coalition_scenario",
    "default_attack_names",
    "longrun_scenario",
    "run_attack_sweep",
    "run_figure",
    "run_recovery_suite",
    "list_figures",
]

#: client sweep used by the quick (CI-friendly) configuration.
QUICK_CLIENTS: tuple[int, ...] = (12, 48, 120)
#: client sweep used for a fuller curve.
FULL_CLIENTS: tuple[int, ...] = (4, 12, 32, 64, 96, 128, 160)


@dataclass(frozen=True)
class SeriesSpec:
    """One plotted series: a system with a display label."""

    system: str
    label: str
    num_clusters: int = 4


@dataclass(frozen=True)
class FigureSpec:
    """One figure (or sub-figure) of the paper's evaluation."""

    figure_id: str
    title: str
    fault_model: FaultModel
    cross_shard_fraction: float
    series: tuple[SeriesSpec, ...]
    #: free-text description of the shape the paper reports, recorded in
    #: EXPERIMENTS.md next to the measured outcome.
    expected_shape: str = ""

    def spec_for(self, series: SeriesSpec, duration: float, warmup: float) -> ExperimentSpec:
        """Experiment spec for one of the figure's series."""
        return ExperimentSpec(
            system=series.system,
            fault_model=self.fault_model,
            num_clusters=series.num_clusters,
            cross_shard_fraction=self.cross_shard_fraction,
            duration=duration,
            warmup=warmup,
        )


@dataclass
class FigureResult:
    """Measured curves for one figure."""

    figure: FigureSpec
    curves: list[Curve] = field(default_factory=list)

    def curve(self, label: str) -> Curve:
        """Look up a series by its display label."""
        for curve in self.curves:
            if curve.label == label:
                return curve
        raise KeyError(f"no series labelled {label!r} in {self.figure.figure_id}")

    def peaks(self) -> dict[str, float]:
        """Peak throughput per series label."""
        return {curve.label: curve.peak().throughput for curve in self.curves}

    def as_rows(self) -> list[dict[str, float]]:
        """All measured points, flattened for reporting."""
        rows: list[dict[str, float]] = []
        for curve in self.curves:
            rows.extend(curve.as_rows())
        return rows


_SHARDED_CRASH = (
    SeriesSpec("sharper", "SharPer"),
    SeriesSpec("ahl", "AHL-C"),
    SeriesSpec("apr", "APR-C"),
    SeriesSpec("fast", "FPaxos"),
)
_SHARDED_BYZ = (
    SeriesSpec("sharper", "SharPer"),
    SeriesSpec("ahl", "AHL-B"),
    SeriesSpec("apr", "APR-B"),
    SeriesSpec("fast", "FaB"),
)
_SCALABILITY = tuple(
    SeriesSpec("sharper", f"{clusters} clusters", num_clusters=clusters)
    for clusters in (2, 3, 4, 5)
)

FIGURES: dict[str, FigureSpec] = {
    "fig6a": FigureSpec(
        "fig6a", "Crash-only, 0% cross-shard", FaultModel.CRASH, 0.0, _SHARDED_CRASH,
        expected_shape=(
            "SharPer == AHL-C (same intra-shard path); both roughly 3-4x the "
            "peak throughput of APR-C and FPaxos."
        ),
    ),
    "fig6b": FigureSpec(
        "fig6b", "Crash-only, 20% cross-shard", FaultModel.CRASH, 0.2, _SHARDED_CRASH,
        expected_shape="SharPer above AHL-C (~10%); sharded systems still well above APR-C/FPaxos.",
    ),
    "fig6c": FigureSpec(
        "fig6c", "Crash-only, 80% cross-shard", FaultModel.CRASH, 0.8, _SHARDED_CRASH,
        expected_shape=(
            "Sharding advantage shrinks; SharPer still beats AHL-C; APR-C/FPaxos "
            "have lower latency than SharPer."
        ),
    ),
    "fig6d": FigureSpec(
        "fig6d", "Crash-only, 100% cross-shard", FaultModel.CRASH, 1.0, _SHARDED_CRASH,
        expected_shape="SharPer ~44% above AHL-C at peak; non-sharded systems have lower latency.",
    ),
    "fig7a": FigureSpec(
        "fig7a", "Byzantine, 0% cross-shard", FaultModel.BYZANTINE, 0.0, _SHARDED_BYZ,
        expected_shape=(
            "SharPer == AHL-B; both roughly 3-4x the peak throughput of APR-B and FaB; "
            "FaB has lower latency than APR-B."
        ),
    ),
    "fig7b": FigureSpec(
        "fig7b", "Byzantine, 20% cross-shard", FaultModel.BYZANTINE, 0.2, _SHARDED_BYZ,
        expected_shape="SharPer ~15% above AHL-B; ~3x APR-B/FaB.",
    ),
    "fig7c": FigureSpec(
        "fig7c", "Byzantine, 80% cross-shard", FaultModel.BYZANTINE, 0.8, _SHARDED_BYZ,
        expected_shape="SharPer ~34% above AHL-B; APR-B/FaB latency lower than SharPer.",
    ),
    "fig7d": FigureSpec(
        "fig7d", "Byzantine, 100% cross-shard", FaultModel.BYZANTINE, 1.0, _SHARDED_BYZ,
        expected_shape="SharPer ~50% above AHL-B (AHL ~67% of SharPer).",
    ),
    "fig8a": FigureSpec(
        "fig8a", "SharPer scalability, crash-only, 10% cross-shard",
        FaultModel.CRASH, 0.1, _SCALABILITY,
        expected_shape="Throughput grows near-linearly with the number of clusters.",
    ),
    "fig8b": FigureSpec(
        "fig8b", "SharPer scalability, Byzantine, 10% cross-shard",
        FaultModel.BYZANTINE, 0.1, _SCALABILITY,
        expected_shape="Throughput grows near-linearly with the number of clusters.",
    ),
}


def list_figures() -> list[str]:
    """Identifiers of every reproducible figure."""
    return sorted(FIGURES)


# ----------------------------------------------------------------------
# adversary sweeps (attack type × cross-shard fraction)
# ----------------------------------------------------------------------

#: cross-shard fractions the adversary sweep exercises by default.
ATTACK_CROSS_FRACTIONS: tuple[float, ...] = (0.0, 0.2)


def attack_scenario(
    behavior: str,
    cross_shard_fraction: float = 0.0,
    num_clusters: int = 2,
    clients: int = 12,
    duration: float = 0.5,
    warmup: float = 0.06,
    seed: int = 1,
    at: float = 0.05,
    cluster: int = 0,
    accounts_per_shard: int = 128,
) -> Scenario:
    """One Byzantine SharPer deployment attacked by a named behaviour.

    The primary of ``cluster`` turns Byzantine at time ``at`` — one
    adversary per cluster, i.e. exactly the paper's ``f = 1`` bound —
    and the run is verified end to end, including the cross-replica
    :class:`~repro.adversary.SafetyAuditor` (armed automatically because
    the schedule contains an adversary event).
    """
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=FaultModel.BYZANTINE,
            num_clusters=num_clusters,
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_shard_fraction,
            accounts_per_shard=accounts_per_shard,
        ),
        name=f"{behavior} @ {cross_shard_fraction:.0%} cross-shard",
        clients=clients,
        duration=duration,
        warmup=warmup,
        seed=seed,
        faults=FaultSchedule().make_primary_byzantine(at=at, cluster=cluster, behavior=behavior),
    )


#: pseudo-behaviour name selecting the colluding-adversary scenario in
#: sweeps and on the CLI ``--attack`` surface.
COALITION_ATTACK = "coalition"


def client_attack_scenario(
    behavior: str,
    cross_shard_fraction: float = 0.0,
    num_clusters: int = 2,
    clients: int = 12,
    duration: float = 0.5,
    warmup: float = 0.06,
    seed: int = 1,
    at: float = 0.05,
    client: int = 0,
    accounts_per_shard: int = 128,
) -> Scenario:
    """One Byzantine SharPer deployment attacked by a Byzantine *client*.

    Client ``client`` runs the named behaviour from time ``at``; arming
    it also arms every replica's request guard, so forged, duplicated,
    and ownership-violating traffic is screened — the run must still
    pass the cross-replica safety audit.
    """
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=FaultModel.BYZANTINE,
            num_clusters=num_clusters,
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_shard_fraction,
            accounts_per_shard=accounts_per_shard,
        ),
        name=f"{behavior} @ {cross_shard_fraction:.0%} cross-shard",
        clients=clients,
        duration=duration,
        warmup=warmup,
        seed=seed,
        faults=FaultSchedule().make_client_byzantine(at=at, client=client, behavior=behavior),
    )


def coalition_members(num_clusters: int, byzantine: bool = True) -> dict[int, str]:
    """Default colluding pair: initiator-primary delayer + remote withholder.

    Node ids follow :meth:`SystemConfig.build`'s contiguous layout:
    node 0 is cluster 0's primary, and the second node of cluster 1 is a
    backup — one Byzantine replica per cluster, the paper's ``f = 1``
    bound in each.
    """
    if num_clusters < 2:
        raise ValueError("a coalition needs at least two clusters")
    cluster_size = 4 if byzantine else 3
    return {0: "delay-attacker", cluster_size + 1: "vote-withholder"}


def coalition_scenario(
    cross_shard_fraction: float = 0.2,
    num_clusters: int = 2,
    clients: int = 12,
    duration: float = 0.5,
    warmup: float = 0.06,
    seed: int = 1,
    at: float = 0.05,
    members: "dict[int, str] | None" = None,
    accounts_per_shard: int = 128,
) -> Scenario:
    """Colluding adversaries: one shared script across two clusters.

    The default coalition (see :func:`coalition_members`) squeezes every
    cross-shard transaction from both ends — delayed at the initiator,
    vote-starved at a remote cluster — while each member stays within
    its cluster's ``f = 1`` bound.  A brutal performance attack, but the
    safety audit must keep passing.
    """
    chosen = members if members is not None else coalition_members(num_clusters)
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=FaultModel.BYZANTINE,
            num_clusters=num_clusters,
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_shard_fraction,
            accounts_per_shard=accounts_per_shard,
        ),
        name=f"{COALITION_ATTACK} @ {cross_shard_fraction:.0%} cross-shard",
        clients=clients,
        duration=duration,
        warmup=warmup,
        seed=seed,
        faults=FaultSchedule().form_coalition(at=at, members=chosen),
    )


def default_attack_names() -> list[str]:
    """Every attack the sweep runs by default: replica, client, coalition."""
    return (
        sorted(available_behaviors())
        + sorted(available_behaviors("client"))
        + [COALITION_ATTACK]
    )


def _attack_scenario_for(name: str, **kwargs) -> Scenario:
    """Route an attack name to the scenario shape its target needs."""
    if name == COALITION_ATTACK:
        return coalition_scenario(**kwargs)
    if get_behavior(name).target == "client":
        return client_attack_scenario(name, **kwargs)
    return attack_scenario(name, **kwargs)


def run_attack_sweep(
    behaviors: Sequence[str] | None = None,
    cross_fractions: Sequence[float] = ATTACK_CROSS_FRACTIONS,
    seeds: Sequence[int] = (1, 2, 3),
    num_clusters: int = 2,
    clients: int = 12,
    duration: float = 0.5,
    warmup: float = 0.06,
    jobs: int = 1,
    progress: Callable[[str], None] | None = None,
) -> list[ScenarioResult]:
    """Sweep attack type × cross-shard fraction × seed under SharPer.

    Every point runs with at most ``f`` Byzantine replicas per cluster
    (and at most one Byzantine client) and must pass the safety audit;
    use :func:`repro.api.run_scenarios` semantics (``jobs``
    parallelises, results come back in input order: behaviour-major,
    then fraction, then seed).  ``behaviors`` defaults to every
    registered adversary behaviour — replica *and* client targets —
    plus the :data:`COALITION_ATTACK` pseudo-behaviour; each name is
    routed to the scenario shape its target needs (primary attack,
    client attack, or coalition).
    """
    names = list(behaviors) if behaviors is not None else default_attack_names()
    scenarios = [
        _attack_scenario_for(
            behavior,
            cross_shard_fraction=fraction,
            num_clusters=num_clusters,
            clients=clients,
            duration=duration,
            warmup=warmup,
            seed=seed,
        )
        for behavior in names
        for fraction in cross_fractions
        for seed in seeds
    ]
    return run_scenarios(scenarios, jobs=jobs, progress=progress)


# ----------------------------------------------------------------------
# recovery experiments (repro.recovery): long-run memory + churn
# ----------------------------------------------------------------------

def longrun_scenario(
    checkpoint_interval: int = 50,
    duration: float = 2.0,
    clients: int = 12,
    num_clusters: int = 2,
    cross_shard_fraction: float = 0.1,
    fault_model: FaultModel = FaultModel.CRASH,
    seed: int = 1,
    accounts_per_shard: int = 128,
) -> Scenario:
    """A fig8-style long run sized to prove bounded memory.

    With the default calibration each cluster decides well over
    ``20 × checkpoint_interval`` slots, so a bounded
    ``peak_log_entries`` (at most ``2 × interval`` once checkpoints
    stabilise) is a meaningful statement about arbitrarily long runs —
    compare against the same scenario with ``checkpoint_interval=0``,
    where the log grows with the run.
    """
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=fault_model,
            num_clusters=num_clusters,
            checkpoint_interval=checkpoint_interval,
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_shard_fraction,
            accounts_per_shard=accounts_per_shard,
        ),
        name=f"longrun ckpt={checkpoint_interval}",
        clients=clients,
        duration=duration,
        warmup=0.06,
        seed=seed,
        # The acceptance bar for bounded memory includes the
        # cross-replica auditor: truncation must not hide a fork.
        audit_safety=True,
    )


def churn_scenario(
    checkpoint_interval: int = 25,
    crash_at: float = 0.15,
    recover_at: float = 0.45,
    node: int = 2,
    duration: float = 0.8,
    clients: int = 8,
    num_clusters: int = 2,
    cross_shard_fraction: float = 0.1,
    fault_model: FaultModel = FaultModel.CRASH,
    seed: int = 1,
) -> Scenario:
    """Crash → recover → state-transfer → catch-up → serve, verified.

    The crashed replica misses a window of decided slots that by
    ``recover_at`` has typically been garbage-collected at its peers;
    rejoining therefore exercises the full snapshot-install path, after
    which the replica participates in later quorums (its applied height
    reaches the cluster's).  The cross-replica safety audit is forced on
    so truncation and replay are checked against every correct replica.
    """
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=fault_model,
            num_clusters=num_clusters,
            checkpoint_interval=checkpoint_interval,
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_shard_fraction, accounts_per_shard=128
        ),
        name=f"churn node={node} ckpt={checkpoint_interval}",
        clients=clients,
        duration=duration,
        warmup=0.06,
        seed=seed,
        faults=FaultSchedule().crash_node(at=crash_at, node_id=node).recover_node(
            at=recover_at, node_id=node
        ),
        audit_safety=True,
    )


def run_recovery_suite(
    checkpoint_interval: int = 50,
    duration: float = 2.0,
    jobs: int = 1,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ScenarioResult]:
    """The recovery experiment pair: bounded-memory long run + churn.

    Returns ``{"longrun": ..., "longrun_unbounded": ..., "churn": ...}``
    — the first two differ only in whether checkpointing is on, which is
    what the bounded-vs-unbounded comparison in the examples and the CI
    smoke job asserts on.
    """
    scenarios = [
        longrun_scenario(checkpoint_interval=checkpoint_interval, duration=duration),
        longrun_scenario(checkpoint_interval=0, duration=duration),
        churn_scenario(checkpoint_interval=max(checkpoint_interval // 2, 1)),
    ]
    results = run_scenarios(scenarios, jobs=jobs, progress=progress)
    return {
        "longrun": results[0],
        "longrun_unbounded": results[1],
        "churn": results[2],
    }


def run_figure(
    figure_id: str,
    client_counts: Sequence[int] | None = None,
    duration: float = 0.30,
    warmup: float = 0.06,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    seeds: Sequence[int] | None = None,
) -> FigureResult:
    """Measure every series of one figure and return the curves.

    ``jobs`` parallelises each series' ``point × seed`` grid over a
    process pool; ``seeds`` averages every point over several seeds (see
    :func:`repro.bench.harness.run_curve`).
    """
    try:
        figure = FIGURES[figure_id]
    except KeyError:
        raise KeyError(f"unknown figure {figure_id!r}; choose from {list_figures()}") from None
    counts = tuple(client_counts or QUICK_CLIENTS)
    result = FigureResult(figure=figure)
    for series in figure.series:
        spec = figure.spec_for(series, duration=duration, warmup=warmup)
        curve = run_curve(
            spec, counts, label=series.label, progress=progress, jobs=jobs, seeds=seeds
        )
        result.curves.append(curve)
    return result
