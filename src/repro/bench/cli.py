"""Command-line entry point: regenerate figures or run one-off scenarios.

Examples
--------
Regenerate Figure 6(a) with the quick client sweep::

    sharper-bench fig6a

Run a fuller sweep and save the raw points::

    sharper-bench fig6d --full --csv fig6d.csv

List every reproducible figure and every registered system::

    sharper-bench --list
    sharper-bench --list-systems

Run a declarative scenario — any registered system, any workload mix,
optionally crashing a primary or turning it Byzantine mid-run::

    sharper-bench --scenario sharper --cross-shard 0.2 --clients 32
    sharper-bench --scenario ahl --byzantine --crash-primary-at 0.1
    sharper-bench --scenario sharper --byzantine --attack equivocating-primary
    sharper-bench --scenario sharper --batch-size 16 --pipeline-depth 4
    sharper-bench --scenario sharper --trace --trace-out trace.json
    sharper-bench --list-attacks
"""

from __future__ import annotations

import argparse
import sys

from ..adversary import available_behaviors, get_behavior
from ..api import DeploymentSpec, FaultSchedule, Scenario, available_systems
from ..common.errors import SharPerError
from ..common.types import FaultModel
from ..txn.workload import WorkloadConfig
from .experiments import (
    COALITION_ATTACK,
    FULL_CLIENTS,
    QUICK_CLIENTS,
    coalition_members,
    list_figures,
    run_figure,
)
from .reporting import format_figure, write_csv

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sharper-bench",
        description="Regenerate the figures of the SharPer evaluation (Section 4).",
    )
    parser.add_argument("figures", nargs="*", help="figure ids, e.g. fig6a fig7d fig8a")
    parser.add_argument("--list", action="store_true", help="list available figures and exit")
    parser.add_argument(
        "--list-systems", action="store_true", help="list registered systems and exit"
    )
    parser.add_argument(
        "--list-attacks", action="store_true",
        help="list registered adversary behaviors and exit",
    )
    parser.add_argument("--full", action="store_true", help="use the full client sweep")
    parser.add_argument(
        "--duration", type=float, default=0.30, help="simulated seconds per point"
    )
    parser.add_argument(
        "--warmup", type=float, default=0.06, help="simulated warm-up seconds per point"
    )
    parser.add_argument("--csv", type=str, default=None, help="write raw points to this CSV file")
    parser.add_argument("--quiet", action="store_true", help="suppress per-point progress output")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run sweep points/seeds in an N-process pool (results are "
        "bit-identical to a serial run)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, metavar="K",
        help="average every point over K seeds (seed, seed+1, ...)",
    )

    scenario = parser.add_argument_group("scenario mode (repro.api.Scenario)")
    scenario.add_argument(
        "--scenario", metavar="SYSTEM", default=None,
        help="run one declarative scenario against a registered system",
    )
    scenario.add_argument(
        "--byzantine", action="store_true",
        help="scenario: use the Byzantine fault model (default: crash-only)",
    )
    scenario.add_argument(
        "--clusters", type=int, default=4, help="scenario: number of clusters"
    )
    scenario.add_argument(
        "--cross-shard", type=float, default=0.0,
        help="scenario: fraction of cross-shard transactions",
    )
    scenario.add_argument(
        "--clients", type=int, default=32, help="scenario: closed-loop client count"
    )
    scenario.add_argument("--seed", type=int, default=1, help="scenario: simulation seed")
    scenario.add_argument(
        "--crash-primary-at", type=float, default=None, metavar="T",
        help="scenario: crash a cluster primary at simulated time T",
    )
    scenario.add_argument(
        "--crash-cluster", type=int, default=0, metavar="C",
        help="scenario: which cluster's primary to crash (default 0)",
    )
    scenario.add_argument(
        "--attack", metavar="NAME", default=None,
        help="scenario: arm this adversary (registry name, see --list-attacks). "
        "Replica behaviors attach to a cluster primary, client behaviors to "
        "the first client, and 'coalition' forms the default colluding pair "
        "(initiator-primary delayer + remote vote-withholder)",
    )
    scenario.add_argument(
        "--attack-at", type=float, default=0.05, metavar="T",
        help="scenario: simulated time at which the adversary activates (default 0.05)",
    )
    scenario.add_argument(
        "--attack-cluster", type=int, default=0, metavar="C",
        help="scenario: which cluster's primary turns Byzantine (default 0)",
    )

    batching = parser.add_argument_group("batching (repro.consensus.batching)")
    batching.add_argument(
        "--batch-size", type=int, default=1, metavar="B",
        help="scenario: client requests ordered per consensus slot "
        "(default 1 — batching disabled, bit-identical to the unbatched "
        "protocol; B > 1 arms the primary-side batching pipeline)",
    )
    batching.add_argument(
        "--pipeline-depth", type=int, default=32, metavar="D",
        help="scenario: batched slots a primary keeps in flight before "
        "queuing (default 32; enforced only when --batch-size > 1)",
    )

    recovery = parser.add_argument_group("recovery (repro.recovery)")
    recovery.add_argument(
        "--checkpoint-interval", type=int, default=0, metavar="N",
        help="scenario: checkpoint every N decided slots (enables log "
        "compaction and snapshot-based state transfer; 0 disables)",
    )
    recovery.add_argument(
        "--crash-node-at", type=float, default=None, metavar="T",
        help="scenario: crash one replica at simulated time T (churn runs)",
    )
    recovery.add_argument(
        "--crash-node", type=int, default=2, metavar="N",
        help="scenario: which replica --crash-node-at crashes (default 2)",
    )
    recovery.add_argument(
        "--recover-node-at", type=float, default=None, metavar="T",
        help="scenario: recover the crashed replica at simulated time T "
        "(it state-transfers the missed slots and rejoins consensus)",
    )

    storage = parser.add_argument_group("storage (repro.storage)")
    storage.add_argument(
        "--store-backend", choices=("dict", "columnar"), default="dict",
        help="scenario: replica state-store backend (columnar scales to "
        "million-account shards)",
    )
    storage.add_argument(
        "--archive", metavar="PATH", default=None,
        help="scenario: sqlite database that checkpoint GC spills pruned "
        "blocks into (requires --checkpoint-interval)",
    )
    storage.add_argument(
        "--audit-archive", action="store_true",
        help="scenario: after the run, re-verify the archive offline "
        "(hash-chain continuity + balance conservation replay)",
    )

    obs = parser.add_argument_group("observability (repro.obs)")
    obs.add_argument(
        "--trace", action="store_true",
        help="scenario: arm the flight recorder (protocol-phase spans, "
        "live gauges) and print the phase-latency breakdown after the run",
    )
    obs.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="scenario: write the trace to PATH — Chrome trace-event JSON "
        "(load in Perfetto / chrome://tracing), or a JSONL event dump "
        "when PATH ends in .jsonl (implies --trace)",
    )
    obs.add_argument(
        "--gauge-interval", type=float, default=0.01, metavar="S",
        help="scenario: gauge sampling period in simulated seconds "
        "(default 0.01; 0 disables the sampling timer, leaving a "
        "spans-only trace)",
    )
    obs.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="scenario: record phase/causal chain events for every Nth "
        "transaction only (default 1 = all), bounding trace size on "
        "long high-load runs; protocol outcome is unchanged",
    )
    return parser


def _schedule_attack(args: argparse.Namespace, faults: FaultSchedule) -> None:
    """Route ``--attack NAME`` to the fault event its target needs."""
    if args.attack is None:
        return
    if args.attack == COALITION_ATTACK:
        faults.form_coalition(
            at=args.attack_at,
            members=coalition_members(args.clusters, byzantine=args.byzantine),
        )
    elif get_behavior(args.attack).target == "client":
        faults.make_client_byzantine(at=args.attack_at, client=0, behavior=args.attack)
    else:
        faults.make_primary_byzantine(
            at=args.attack_at, cluster=args.attack_cluster, behavior=args.attack
        )


def _run_scenario(args: argparse.Namespace) -> int:
    faults = FaultSchedule()
    if args.crash_primary_at is not None:
        faults.crash_primary(at=args.crash_primary_at, cluster=args.crash_cluster)
    if args.crash_node_at is not None:
        faults.crash_node(at=args.crash_node_at, node_id=args.crash_node)
    if args.recover_node_at is not None:
        faults.recover_node(at=args.recover_node_at, node_id=args.crash_node)
    fault_model = FaultModel.BYZANTINE if args.byzantine else FaultModel.CRASH
    try:
        _schedule_attack(args, faults)
    except (SharPerError, ValueError) as error:
        print(f"sharper-bench: error: {error}", file=sys.stderr)
        return 2
    if faults and not args.quiet:
        for event in faults:
            print(f"  scheduled: {event.describe()}", file=sys.stderr)
    if args.audit_archive and not args.archive:
        print("sharper-bench: error: --audit-archive requires --archive", file=sys.stderr)
        return 2
    traced = args.trace or args.trace_out is not None
    trace_spec = None
    if traced:
        from ..obs import TraceSpec

        trace_spec = TraceSpec(
            gauges=args.gauge_interval > 0,
            gauge_interval=args.gauge_interval,
            sample=args.trace_sample,
        )
    try:
        scenario = Scenario(
            deployment=DeploymentSpec(
                system=args.scenario,
                fault_model=fault_model,
                num_clusters=args.clusters,
                checkpoint_interval=args.checkpoint_interval or None,
                batch_size=args.batch_size if args.batch_size != 1 else None,
                pipeline_depth=args.pipeline_depth if args.pipeline_depth != 32 else None,
                store_backend=args.store_backend,
                archive=args.archive,
                trace=trace_spec,
            ),
            workload=WorkloadConfig(cross_shard_fraction=args.cross_shard),
            clients=args.clients,
            duration=args.duration,
            warmup=args.warmup,
            seed=args.seed,
            faults=faults,
        )
        result = scenario.run()
    except SharPerError as error:
        print(f"sharper-bench: error: {error}", file=sys.stderr)
        return 2
    print(result.summary())
    if result.trace is not None:
        print()
        print(result.trace.phase_table())
        if result.trace.critical is not None and result.trace.critical.txs:
            print()
            print(result.trace.critical_table())
            print()
            print(result.trace.straggler_table())
        if args.trace_out is not None:
            from ..obs import write_trace

            write_trace(result.trace, args.trace_out)
            print(f"trace written to {args.trace_out}")
    ok = result.ok
    if args.audit_archive:
        from ..storage import audit_archive

        report = audit_archive(result.system.archive)
        print(report.summary())
        for problem in report.problems:
            print(f"  problem: {problem}", file=sys.stderr)
        ok = ok and report.ok
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_systems:
        print("registered systems:")
        for name, system_cls in available_systems().items():
            print(f"  {name:10s} {system_cls.__module__}.{system_cls.__qualname__}")
        return 0
    if args.list_attacks:
        print("registered adversary behaviors (replica-target):")
        for name, behavior_cls in available_behaviors().items():
            blurb = (behavior_cls.__doc__ or behavior_cls.__name__).strip().splitlines()[0]
            print(f"  {name:26s} {blurb}")
        print("registered adversary behaviors (client-target):")
        for name, behavior_cls in available_behaviors("client").items():
            blurb = (behavior_cls.__doc__ or behavior_cls.__name__).strip().splitlines()[0]
            print(f"  {name:26s} {blurb}")
        print("composite attacks:")
        print(
            f"  {COALITION_ATTACK:26s} colluding pair: initiator-primary "
            "delay-attacker + remote vote-withholder on shared cross-shard targets"
        )
        return 0
    if args.scenario:
        if args.figures or args.csv or args.full or args.jobs != 1 or args.seeds != 1:
            parser.error(
                "--scenario cannot be combined with figure ids, --csv, --full, "
                "--jobs, or --seeds"
            )
        return _run_scenario(args)
    if args.list or not args.figures:
        print("available figures:")
        for figure_id in list_figures():
            print(f"  {figure_id}")
        return 0
    progress = None if args.quiet else (lambda line: print(f"  {line}", file=sys.stderr))
    counts = FULL_CLIENTS if args.full else QUICK_CLIENTS
    seeds = list(range(1, args.seeds + 1)) if args.seeds > 1 else None
    for figure_id in args.figures:
        result = run_figure(
            figure_id,
            client_counts=counts,
            duration=args.duration,
            warmup=args.warmup,
            progress=progress,
            jobs=args.jobs,
            seeds=seeds,
        )
        print(format_figure(result))
        print()
        if args.csv:
            target = args.csv if len(args.figures) == 1 else f"{figure_id}_{args.csv}"
            write_csv(result, target)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
