"""Command-line entry point: regenerate any figure of the paper.

Examples
--------
Regenerate Figure 6(a) with the quick client sweep::

    sharper-bench fig6a

Run a fuller sweep and save the raw points::

    sharper-bench fig6d --full --csv fig6d.csv

List every reproducible figure::

    sharper-bench --list
"""

from __future__ import annotations

import argparse
import sys

from .experiments import FULL_CLIENTS, QUICK_CLIENTS, list_figures, run_figure
from .reporting import format_figure, write_csv

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sharper-bench",
        description="Regenerate the figures of the SharPer evaluation (Section 4).",
    )
    parser.add_argument("figures", nargs="*", help="figure ids, e.g. fig6a fig7d fig8a")
    parser.add_argument("--list", action="store_true", help="list available figures and exit")
    parser.add_argument("--full", action="store_true", help="use the full client sweep")
    parser.add_argument(
        "--duration", type=float, default=0.30, help="simulated seconds per point"
    )
    parser.add_argument(
        "--warmup", type=float, default=0.06, help="simulated warm-up seconds per point"
    )
    parser.add_argument("--csv", type=str, default=None, help="write raw points to this CSV file")
    parser.add_argument("--quiet", action="store_true", help="suppress per-point progress output")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or not args.figures:
        print("available figures:")
        for figure_id in list_figures():
            print(f"  {figure_id}")
        return 0
    progress = None if args.quiet else (lambda line: print(f"  {line}", file=sys.stderr))
    counts = FULL_CLIENTS if args.full else QUICK_CLIENTS
    for figure_id in args.figures:
        result = run_figure(
            figure_id,
            client_counts=counts,
            duration=args.duration,
            warmup=args.warmup,
            progress=progress,
        )
        print(format_figure(result))
        print()
        if args.csv:
            target = args.csv if len(args.figures) == 1 else f"{figure_id}_{args.csv}"
            write_csv(result, target)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
