"""Benchmark harness: experiment specs, figure definitions, reporting."""

from .experiments import (
    FIGURES,
    FULL_CLIENTS,
    QUICK_CLIENTS,
    FigureResult,
    FigureSpec,
    SeriesSpec,
    list_figures,
    run_figure,
)
from .harness import (
    Curve,
    CurvePoint,
    ExperimentSpec,
    peak_throughput,
    run_curve,
    run_point,
)
from .reporting import figure_to_csv, format_figure, format_table, write_csv

__all__ = [
    "Curve",
    "CurvePoint",
    "ExperimentSpec",
    "FIGURES",
    "FULL_CLIENTS",
    "FigureResult",
    "FigureSpec",
    "QUICK_CLIENTS",
    "SeriesSpec",
    "figure_to_csv",
    "format_figure",
    "format_table",
    "list_figures",
    "peak_throughput",
    "run_curve",
    "run_figure",
    "run_point",
    "write_csv",
]
