"""Kernel microbenchmark + fig8 sweep timing: the repo's perf trajectory.

Run as a module and it writes ``BENCH_kernel.json``::

    PYTHONPATH=src python -m repro.bench.perfbench            # full config
    PYTHONPATH=src python -m repro.bench.perfbench --quick    # CI smoke
    PYTHONPATH=src python -m repro.bench.perfbench --jobs 4   # pooled sweep

Two workloads are timed:

* **kernel** — a pure event-loop microbenchmark (self-rescheduling event
  chains, no protocol logic) reporting events fired per wall-clock
  second, straight from :attr:`Simulator.events_per_second`;
* **fig8** — the paper's scalability sweep (SharPer, crash model, 10%
  cross-shard, 2–5 clusters, quick client sweep), reporting wall and CPU
  seconds per point and in total;
* **batching** — the request-batching curve (batch size × clusters ×
  pipeline depth, :mod:`repro.consensus.batching`), reporting the peak
  *simulated* tps of every configuration against the batch=1 baseline
  measured in the same run.  Simulated tps is deterministic, so the
  batching speedup is host-independent; the per-configuration wall
  times use the same interleaved min-of-N discipline as fig8.

The file also embeds :data:`BASELINE` — the same workloads measured on
the pre-refactor tree (commit ``0781ed5``, interleaved back-to-back with
the refactored tree on the same host) — and the speedup of the current
run against it.  Baselines are host-specific: on a different machine the
ratio is indicative, not a like-for-like comparison, and ``--quick``
runs a smaller configuration whose numbers are never comparable.  Future
PRs extend the trajectory by re-running this benchmark and comparing
against the recorded history.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Sequence

from ..common.config import ProtocolTuning
from ..common.types import FaultModel
from ..sim.simulator import Simulator
from .harness import ExperimentSpec, run_curve

__all__ = [
    "BASELINE",
    "batching_benchmark",
    "fig8_benchmark",
    "kernel_benchmark",
    "main",
]

#: Pre-refactor measurements (commit 0781ed5) recorded on the original
#: development host, interleaved with the refactored tree to cancel out
#: machine-speed drift.  These are the reference the acceptance speedup
#: is computed against.
BASELINE: dict = {
    "commit": "0781ed5",
    "description": (
        "pre-refactor tree: dataclass Event kernel, per-destination send "
        "loops, isinstance dispatch chains, serial-only harness"
    ),
    "methodology": (
        "min over 3 runs interleaved back-to-back with the refactored "
        "tree on the same single-core host (the host's effective speed "
        "drifts by >20%, so compare min-to-min from the same window; "
        "kernel events/sec is the max observed). Interleaved pairs "
        "measured 2.04x-2.40x on the fig8 sweep."
    ),
    "kernel": {"events": 200_000, "events_per_second": 370_842.0},
    "fig8": {
        "clusters": [2, 3, 4, 5],
        "clients": [12, 48, 120],
        "duration": 0.30,
        "warmup": 0.06,
        "total_wall_s": 26.29,
        "total_cpu_s": 25.78,
    },
}


def kernel_benchmark(n_chains: int = 50, events: int = 200_000) -> dict:
    """Pure event-kernel throughput: self-rescheduling callback chains."""
    sim = Simulator(seed=0)
    per_chain = events // n_chains

    def chain(remaining: int) -> None:
        if remaining:
            sim.schedule(0.001, chain, remaining - 1)

    for index in range(n_chains):
        sim.schedule(index * 1e-5, chain, per_chain - 1)
    sim.run()
    return {
        "events": sim.processed_events,
        "wall_s": round(sim.run_wall_time, 4),
        "events_per_second": round(sim.events_per_second, 1),
    }


def fig8_benchmark(
    clusters: Sequence[int] = (2, 3, 4, 5),
    clients: Sequence[int] = (12, 48, 120),
    duration: float = 0.30,
    warmup: float = 0.06,
    jobs: int = 1,
    repeats: int = 1,
) -> dict:
    """Wall/CPU time per fig8 scalability point (SharPer, 10% cross-shard).

    With ``repeats > 1`` every point is timed that many times and the
    *minimum* is reported — the standard way to cancel scheduler and
    host-speed noise out of a wall-clock benchmark (matching how the
    embedded baseline was recorded).
    """
    points: dict[str, dict[str, float]] = {}
    total_wall = total_cpu = 0.0
    for num_clusters in clusters:
        spec = ExperimentSpec(
            system="sharper",
            fault_model=FaultModel.CRASH,
            num_clusters=num_clusters,
            cross_shard_fraction=0.1,
            duration=duration,
            warmup=warmup,
        )
        wall = cpu = None
        peak = 0.0
        for _ in range(max(repeats, 1)):
            wall_start, cpu_start = time.perf_counter(), time.process_time()
            curve = run_curve(spec, list(clients), jobs=jobs)
            run_wall = time.perf_counter() - wall_start
            run_cpu = time.process_time() - cpu_start
            if wall is None or run_wall < wall:
                wall = run_wall
            if cpu is None or run_cpu < cpu:
                cpu = run_cpu
            peak = curve.peak().throughput
        total_wall += wall
        total_cpu += cpu
        points[str(num_clusters)] = {
            "wall_s": round(wall, 3),
            "cpu_s": round(cpu, 3),
            "peak_tps": round(peak, 1),
        }
    return {
        "clusters": list(clusters),
        "clients": list(clients),
        "duration": duration,
        "warmup": warmup,
        "jobs": jobs,
        "repeats": max(repeats, 1),
        "points": points,
        "total_wall_s": round(total_wall, 3),
        "total_cpu_s": round(total_cpu, 3),
    }


def batching_benchmark(
    clusters: Sequence[int] = (2, 5),
    batch_sizes: Sequence[int] = (1, 8, 16),
    depths: Sequence[int] = (1, 4),
    clients: Sequence[int] = (120, 480, 960),
    duration: float = 0.30,
    warmup: float = 0.06,
    jobs: int = 1,
    repeats: int = 1,
) -> dict:
    """Batch-size × clusters × pipeline-depth throughput curve.

    Every configuration sweeps the full client ladder and records its
    *peak simulated tps* — the metric the batching pipeline exists to
    move, and one that is deterministic for a given seed, so the
    speedup against the batch=1 baseline is host-independent.  Wall
    times are informational only and follow the interleaved min-of-N
    discipline: each repeat round-robins through every configuration
    before the next repeat starts, so host-speed drift (>20% on the
    reference machine) hits all configurations alike, and the minimum
    per configuration is reported.

    ``batch_size=1`` disables the pipeline entirely (the bit-identical
    legacy path), so pipeline depth is meaningless there and only the
    first depth is run — it serves as the in-run baseline that
    ``speedup_vs_unbatched`` is computed against per cluster count.
    """
    configs: list[dict] = []
    for num_clusters in clusters:
        for batch_size in batch_sizes:
            for depth in depths if batch_size > 1 else depths[:1]:
                configs.append(
                    {
                        "key": f"c{num_clusters}/b{batch_size}/d{depth}",
                        "clusters": num_clusters,
                        "batch_size": batch_size,
                        "depth": depth,
                        "spec": ExperimentSpec(
                            system="sharper",
                            fault_model=FaultModel.CRASH,
                            num_clusters=num_clusters,
                            cross_shard_fraction=0.1,
                            duration=duration,
                            warmup=warmup,
                            tuning=ProtocolTuning(
                                batch_size=batch_size, pipeline_depth=depth
                            ),
                        ),
                    }
                )
    walls: dict[str, float] = {}
    curves: dict[str, object] = {}
    for _ in range(max(repeats, 1)):
        for config in configs:  # interleaved: drift hits every config alike
            wall_start = time.perf_counter()
            curve = run_curve(config["spec"], list(clients), jobs=jobs)
            run_wall = time.perf_counter() - wall_start
            key = config["key"]
            if key not in walls or run_wall < walls[key]:
                walls[key] = run_wall
            curves[key] = curve  # simulated results are deterministic
    points: dict[str, dict] = {}
    baseline_peak: dict[str, float] = {}
    best: dict[str, dict] = {}
    for config in configs:
        key = config["key"]
        peak = curves[key].peak()
        point = {
            "clusters": config["clusters"],
            "batch_size": config["batch_size"],
            "pipeline_depth": config["depth"],
            "peak_tps": round(peak.throughput, 1),
            "peak_clients": peak.clients,
            "wall_s": round(walls[key], 3),
        }
        points[key] = point
        label = str(config["clusters"])
        if config["batch_size"] == 1:
            baseline_peak[label] = point["peak_tps"]
        if label not in best or point["peak_tps"] > best[label]["peak_tps"]:
            best[label] = point
    speedup = {
        label: round(best[label]["peak_tps"] / baseline_peak[label], 2)
        for label in baseline_peak
        if baseline_peak[label]
    }
    return {
        "clusters": list(clusters),
        "batch_sizes": list(batch_sizes),
        "pipeline_depths": list(depths),
        "clients": list(clients),
        "duration": duration,
        "warmup": warmup,
        "jobs": jobs,
        "repeats": max(repeats, 1),
        "methodology": (
            "peak simulated tps per configuration over the client ladder "
            "(deterministic, host-independent); wall_s is the interleaved "
            "min over repeats. batch=1 is the in-run unbatched baseline."
        ),
        "points": points,
        "baseline_peak_tps": baseline_peak,
        "best": best,
        "speedup_vs_unbatched": speedup,
    }


def run(quick: bool = False, jobs: int = 1, repeats: int = 1) -> dict:
    """Execute both benchmarks and assemble the report dictionary."""
    kernel = kernel_benchmark(events=50_000 if quick else 200_000)
    if quick:
        fig8 = fig8_benchmark(
            clusters=(2, 3), clients=(8, 24), duration=0.06, warmup=0.012,
            jobs=jobs, repeats=repeats,
        )
        batching = batching_benchmark(
            clusters=(2,), batch_sizes=(1, 8), depths=(4,), clients=(8, 24),
            duration=0.06, warmup=0.012, jobs=jobs, repeats=repeats,
        )
    else:
        fig8 = fig8_benchmark(jobs=jobs, repeats=repeats)
        batching = batching_benchmark(jobs=jobs, repeats=repeats)
    comparable = not quick
    baseline_fig8 = BASELINE["fig8"]
    report = {
        "schema": "sharper-perfbench/1",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "quick": quick,
        "kernel": kernel,
        "fig8": fig8,
        "batching": batching,
        "baseline": BASELINE,
        "speedup": {
            "comparable_to_baseline": comparable,
            "kernel_events_per_second": round(
                kernel["events_per_second"] / BASELINE["kernel"]["events_per_second"], 3
            ),
            "fig8_wall": (
                round(baseline_fig8["total_wall_s"] / fig8["total_wall_s"], 3)
                if comparable
                else None
            ),
            "fig8_cpu": (
                round(baseline_fig8["total_cpu_s"] / fig8["total_cpu_s"], 3)
                if comparable
                else None
            ),
        },
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.perfbench",
        description="Measure kernel events/sec and fig8 sweep wall time.",
    )
    parser.add_argument(
        "--output", default="BENCH_kernel.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny configuration for CI smoke runs (not baseline-comparable)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="process-pool size for the fig8 sweep"
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="time every fig8 point N times and report the minimum",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick, jobs=args.jobs, repeats=args.repeats)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    speedup = report["speedup"]
    print(f"kernel     : {report['kernel']['events_per_second']:,.0f} events/s "
          f"({speedup['kernel_events_per_second']}x baseline)")
    print(f"fig8 sweep : {report['fig8']['total_wall_s']}s wall, "
          f"{report['fig8']['total_cpu_s']}s cpu")
    batching = report["batching"]
    for label in sorted(batching["speedup_vs_unbatched"], key=int):
        winner = batching["best"][label]
        print(
            f"batching   : {batching['speedup_vs_unbatched'][label]}x peak tps "
            f"vs batch=1 at {label} clusters "
            f"(batch {winner['batch_size']}, depth {winner['pipeline_depth']}, "
            f"{winner['peak_tps']:,.0f} tps)"
        )
    if speedup["comparable_to_baseline"]:
        print(f"speedup    : {speedup['fig8_wall']}x wall, {speedup['fig8_cpu']}x cpu "
              "vs pre-refactor baseline")
    else:
        print("speedup    : n/a (quick mode is not baseline-comparable)")
    print(f"report     : {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke job
    raise SystemExit(main())
