"""Storage benchmark: digest-cost curve and the bounded-memory longrun.

Run as a module and it writes ``BENCH_storage.json``::

    PYTHONPATH=src python -m repro.bench.storagebench            # full config
    PYTHONPATH=src python -m repro.bench.storagebench --quick    # CI smoke

Two workloads are measured:

* **digest curve** — per store backend, the cost of ``state_digest()``
  after a fixed number of account writes, across account populations.
  The incremental digest (dict and columnar backends) re-hashes only the
  touched accounts, so its cost should stay flat as the population
  grows; the naive sorted full-table digest is measured alongside as the
  scaling foil.  Rounds are interleaved across series (min-of-N per
  cell) to cancel host-speed drift on a single-core box.
* **longrun** — a checkpointed SharPer run on the columnar backend with
  a sqlite archive attached: a million-account keyspace, multi-million
  committed transfers, bounded resident block count (checkpoint GC
  spills to the archive), followed by the offline archive audit.

``--quick`` shrinks both parts for CI; quick numbers are not comparable
with full runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time

from ..api import DeploymentSpec, Scenario
from ..common.types import FaultModel
from ..storage import audit_archive, make_store
from ..txn.accounts import ShardMapper
from ..txn.workload import WorkloadConfig

__all__ = ["digest_curve", "longrun", "main"]


def _touch(store, account_ids) -> None:
    """Apply one deposit per id (the write pattern between checkpoints)."""
    for account_id in account_ids:
        store.deposit(account_id, 1)


def digest_curve(
    account_counts=(10_000, 100_000, 1_000_000),
    writes_per_round: int = 1_000,
    rounds: int = 3,
) -> dict:
    """Digest cost per backend after ``writes_per_round`` writes.

    Returns min-of-``rounds`` wall milliseconds per (series, account
    count) cell.  Series:

    * ``dict_incremental`` / ``columnar_incremental`` — the production
      path: pre-images folded out of / current values folded into the
      additive digest accumulator;
    * ``columnar_naive_sorted`` — full sorted-table recomputation, the
      pre-incremental behaviour, measured as the scaling reference.
    """
    stores: dict[tuple[str, int], object] = {}
    for count in account_counts:
        mapper = ShardMapper(num_shards=1, accounts_per_shard=count)
        for backend in ("dict", "columnar"):
            store = make_store(backend, shard=0, mapper=mapper, initial_balance=1000)
            store.state_digest()  # prime the accumulator; start incremental
            stores[(backend, count)] = store
    results: dict[str, dict[str, float]] = {
        "dict_incremental": {},
        "columnar_incremental": {},
        "columnar_naive_sorted": {},
    }
    for _ in range(max(rounds, 1)):
        for count in account_counts:
            touched = range(0, count, max(1, count // writes_per_round))
            for backend in ("dict", "columnar"):
                store = stores[(backend, count)]
                _touch(store, touched)
                start = time.perf_counter()
                store.state_digest()
                elapsed_ms = (time.perf_counter() - start) * 1e3
                cell = results[f"{backend}_incremental"]
                key = str(count)
                if key not in cell or elapsed_ms < cell[key]:
                    cell[key] = elapsed_ms
            store = stores[("columnar", count)]
            start = time.perf_counter()
            naive = store.naive_state_digest()
            elapsed_ms = (time.perf_counter() - start) * 1e3
            assert naive == store.state_digest(), "incremental digest diverged"
            cell = results["columnar_naive_sorted"]
            key = str(count)
            if key not in cell or elapsed_ms < cell[key]:
                cell[key] = elapsed_ms
    return {
        "account_counts": list(account_counts),
        "writes_per_round": writes_per_round,
        "rounds": max(rounds, 1),
        "series_ms": {
            name: {key: round(value, 3) for key, value in cells.items()}
            for name, cells in results.items()
        },
    }


def longrun(
    num_clusters: int = 4,
    accounts_per_shard: int = 250_000,
    clients: int = 64,
    duration: float = 110.0,
    checkpoint_interval: int = 64,
    archive_path: str | None = None,
    seed: int = 11,
) -> dict:
    """Checkpointed columnar + archive run, then the offline audit.

    The defaults cover a one-million-account keyspace; ``duration`` is
    simulated seconds, sized so the committed transfer count reaches
    into the millions.  ``archive_path`` defaults to a temporary file
    (deleted afterwards).
    """
    cleanup = archive_path is None
    if archive_path is None:
        handle = tempfile.NamedTemporaryFile(
            prefix="sharper-archive-", suffix=".db", delete=False
        )
        handle.close()
        archive_path = handle.name
        os.unlink(archive_path)  # SqliteArchive creates it fresh
    try:
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper",
                fault_model=FaultModel.CRASH,
                num_clusters=num_clusters,
                checkpoint_interval=checkpoint_interval,
                store_backend="columnar",
                archive=archive_path,
            ),
            workload=WorkloadConfig(
                cross_shard_fraction=0.1, accounts_per_shard=accounts_per_shard
            ),
            clients=clients,
            duration=duration,
            warmup=min(0.06, duration / 5),
            seed=seed,
        )
        wall_start = time.perf_counter()
        result = scenario.run()
        run_wall = time.perf_counter() - wall_start
        result.raise_if_failed()
        storage = result.storage
        audit_start = time.perf_counter()
        report = audit_archive(result.system.archive)
        audit_wall = time.perf_counter() - audit_start
        return {
            "num_clusters": num_clusters,
            "accounts": num_clusters * accounts_per_shard,
            "clients": clients,
            "duration_sim_s": duration,
            "checkpoint_interval": checkpoint_interval,
            "committed": result.stats.committed,
            "committed_cross": result.stats.committed_cross,
            "throughput_tps": round(result.throughput, 1),
            "store_backend": storage.backend,
            "resident_accounts": storage.resident_accounts,
            "peak_ledger_blocks": storage.peak_ledger_blocks,
            "resident_blocks": storage.resident_blocks,
            "archive_blocks": storage.archive_blocks,
            "archive_tx_rows": storage.archive_tx_rows,
            "archive_checkpoints": storage.archive_checkpoints,
            "archive_bytes": storage.archive_bytes,
            "audit_ok": report.ok,
            "audit_problems": report.problems,
            "audit_checkpoints_verified": report.checkpoints_verified,
            "audit_txs_replayed": report.txs_replayed,
            "run_wall_s": round(run_wall, 2),
            "audit_wall_s": round(audit_wall, 2),
        }
    finally:
        if cleanup:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(archive_path + suffix)
                except OSError:
                    pass


def run(quick: bool = False, archive_path: str | None = None) -> dict:
    """Execute both parts and assemble the report dictionary."""
    if quick:
        curve = digest_curve(
            account_counts=(1_000, 10_000, 100_000), writes_per_round=500, rounds=2
        )
        long_report = longrun(
            num_clusters=3,
            accounts_per_shard=4_096,
            clients=24,
            duration=1.0,
            checkpoint_interval=16,
            archive_path=archive_path,
        )
    else:
        curve = digest_curve()
        long_report = longrun(archive_path=archive_path)
    return {
        "schema": "sharper-storagebench/1",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "quick": quick,
        "digest_curve": curve,
        "longrun": long_report,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.storagebench",
        description="Measure digest scaling and the archived bounded-memory longrun.",
    )
    parser.add_argument(
        "--output", default="BENCH_storage.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small configuration for CI smoke runs (not comparable to full runs)",
    )
    parser.add_argument(
        "--archive", default=None, metavar="PATH",
        help="keep the longrun's sqlite archive at PATH instead of a "
        "deleted temporary file",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick, archive_path=args.archive)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    curve = report["digest_curve"]
    for name, cells in curve["series_ms"].items():
        rendered = ", ".join(f"{key}: {value}ms" for key, value in cells.items())
        print(f"digest {name:24s} {rendered}")
    long_report = report["longrun"]
    print(
        f"longrun    : {long_report['committed']:,} txs over "
        f"{long_report['accounts']:,} accounts, "
        f"ledger peak {long_report['peak_ledger_blocks']} blocks, "
        f"archive {long_report['archive_blocks']:,} blocks / "
        f"{long_report['archive_bytes']:,} bytes"
    )
    print(
        f"audit      : {'OK' if long_report['audit_ok'] else long_report['audit_problems']} "
        f"({long_report['audit_checkpoints_verified']} checkpoints, "
        f"{long_report['audit_txs_replayed']:,} txs replayed)"
    )
    print(f"report     : {args.output}")
    return 0 if long_report["audit_ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke job
    raise SystemExit(main())
