"""First-class fault schedules: timed fault events executed by the simulator.

The paper's availability experiments crash primaries and backups at
chosen points of a run.  Instead of interleaving ``sim.run`` calls with
ad-hoc ``crash_node()`` calls, a :class:`FaultSchedule` declares *what
happens when* up front::

    faults = (
        FaultSchedule()
        .crash_primary(at=0.05, cluster=0)
        .partition(at=0.10, groups=[[0], [1, 2, 3]])
        .heal(at=0.15)
    )

and :meth:`FaultSchedule.arm` turns every event into a simulator event,
so a single ``sim.run`` drives the whole scenario.  Events operate on
the :class:`~repro.core.system.BaseSystem` fault-injection surface
(``crash_node``/``recover_node``/``crash_primary``) and the network's
partition primitives, so they work against every registered system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..common.errors import ConfigurationError
from ..common.types import ClusterId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.system import BaseSystem

__all__ = [
    "CrashNode",
    "CrashPrimary",
    "FaultEvent",
    "FaultSchedule",
    "Heal",
    "PartitionClusters",
    "RecoverNode",
]


@dataclass(frozen=True)
class FaultEvent:
    """A single timed fault; ``apply`` runs at simulated time ``time``."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"fault events need a non-negative time, got {self.time}")

    def apply(self, system: "BaseSystem") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__} @ t={self.time:.3f}s"


@dataclass(frozen=True)
class CrashNode(FaultEvent):
    """Crash one replica process."""

    node_id: int = 0

    def apply(self, system: "BaseSystem") -> None:
        system.crash_node(self.node_id)

    def describe(self) -> str:
        return f"crash node {self.node_id} @ t={self.time:.3f}s"


@dataclass(frozen=True)
class CrashPrimary(FaultEvent):
    """Crash the initial (view-0) primary of one cluster.

    After a view change the new primary is an ordinary node; crash it
    with :class:`CrashNode` and the cluster's ``primary_for_view``.
    """

    cluster: int = 0

    def apply(self, system: "BaseSystem") -> None:
        system.crash_primary(ClusterId(self.cluster))

    def describe(self) -> str:
        return f"crash primary of cluster p{self.cluster} @ t={self.time:.3f}s"


@dataclass(frozen=True)
class RecoverNode(FaultEvent):
    """Restart a previously crashed replica (state retained, Section 2.1)."""

    node_id: int = 0

    def apply(self, system: "BaseSystem") -> None:
        system.recover_node(self.node_id)

    def describe(self) -> str:
        return f"recover node {self.node_id} @ t={self.time:.3f}s"


@dataclass(frozen=True)
class PartitionClusters(FaultEvent):
    """Partition the network along cluster boundaries.

    ``groups`` lists cluster ids; messages only flow between nodes whose
    clusters share a group.  Processes not named by any group (clients,
    clusters left out) keep full connectivity, matching
    :meth:`repro.sim.network.Network.partition`.
    """

    groups: tuple[tuple[int, ...], ...] = ()

    def apply(self, system: "BaseSystem") -> None:
        pid_groups = []
        for group in self.groups:
            pids = []
            for cluster in group:
                cluster_config = system.config.cluster(ClusterId(cluster))
                pids.extend(int(node) for node in cluster_config.node_ids)
            pid_groups.append(pids)
        system.network.partition(pid_groups)

    def describe(self) -> str:
        rendered = " | ".join(
            ",".join(f"p{cluster}" for cluster in group) for group in self.groups
        )
        return f"partition [{rendered}] @ t={self.time:.3f}s"


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Remove every partition and severed link."""

    def apply(self, system: "BaseSystem") -> None:
        system.network.heal()

    def describe(self) -> str:
        return f"heal network @ t={self.time:.3f}s"


class FaultSchedule:
    """An ordered collection of :class:`FaultEvent` with a fluent builder.

    Schedules are append-only; every builder method returns ``self`` so
    calls chain.  :meth:`arm` registers the events with a system's
    simulator — after that, a plain ``sim.run`` executes them in time
    order alongside the protocol traffic.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: list[FaultEvent] = sorted(events, key=lambda event: event.time)

    # ------------------------------------------------------------------
    # builder surface
    # ------------------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Append one event (kept sorted by time)."""
        self._events.append(event)
        self._events.sort(key=lambda item: item.time)
        return self

    def crash_node(self, at: float, node_id: int) -> "FaultSchedule":
        """Crash replica ``node_id`` at simulated time ``at``."""
        return self.add(CrashNode(time=at, node_id=node_id))

    def crash_primary(self, at: float, cluster: int) -> "FaultSchedule":
        """Crash the primary of ``cluster`` at simulated time ``at``."""
        return self.add(CrashPrimary(time=at, cluster=cluster))

    def recover_node(self, at: float, node_id: int) -> "FaultSchedule":
        """Recover replica ``node_id`` at simulated time ``at``."""
        return self.add(RecoverNode(time=at, node_id=node_id))

    def partition(self, at: float, groups: Sequence[Sequence[int]]) -> "FaultSchedule":
        """Partition the network along cluster boundaries at time ``at``."""
        frozen = tuple(tuple(int(cluster) for cluster in group) for group in groups)
        return self.add(PartitionClusters(time=at, groups=frozen))

    def heal(self, at: float) -> "FaultSchedule":
        """Heal all partitions and severed links at time ``at``."""
        return self.add(Heal(time=at))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def arm(self, system: "BaseSystem") -> None:
        """Schedule every event on ``system``'s simulator."""
        for event in self._events:
            system.sim.schedule_at(event.time, event.apply, system)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """The schedule's events in time order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __repr__(self) -> str:
        inner = "; ".join(event.describe() for event in self._events) or "empty"
        return f"FaultSchedule({inner})"
