"""First-class fault schedules: timed fault events executed by the simulator.

The paper's availability experiments crash primaries and backups at
chosen points of a run.  Instead of interleaving ``sim.run`` calls with
ad-hoc ``crash_node()`` calls, a :class:`FaultSchedule` declares *what
happens when* up front::

    faults = (
        FaultSchedule()
        .crash_primary(at=0.05, cluster=0)
        .make_byzantine(at=0.08, node=4, behavior="equivocating-primary")
        .make_client_byzantine(at=0.09, client=0, behavior="duplicating-client")
        .form_coalition(at=0.10, members={0: "delay-attacker", 5: "vote-withholder"})
        .partition(at=0.12, groups=[[0], [1, 2, 3]])
        .heal(at=0.15)
        .restore(at=0.20, node=4)
    )

and :meth:`FaultSchedule.arm` turns every event into a simulator event,
so a single ``sim.run`` drives the whole scenario.  Events operate on
the :class:`~repro.core.system.BaseSystem` fault-injection surface
(``crash_node``/``recover_node``/``crash_primary``/``make_byzantine``)
and the network's partition primitives, so they work against every
registered system — and adversaries (:mod:`repro.adversary`) compose
with crashes and partitions in the same declarative schedule.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence
from weakref import WeakSet

from ..common.errors import ConfigurationError
from ..common.types import ClusterId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..adversary import AdversaryBehavior
    from ..core.system import BaseSystem

__all__ = [
    "CrashNode",
    "CrashPrimary",
    "FaultEvent",
    "FaultSchedule",
    "FormCoalition",
    "Heal",
    "MakeByzantine",
    "MakeClientByzantine",
    "MakePrimaryByzantine",
    "PartitionClusters",
    "RecoverNode",
    "RestoreNode",
]


@dataclass(frozen=True)
class FaultEvent:
    """A single timed fault; ``apply`` runs at simulated time ``time``."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"fault events need a non-negative time, got {self.time}")

    def apply(self, system: "BaseSystem") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__} @ t={self.time:.3f}s"


@dataclass(frozen=True)
class CrashNode(FaultEvent):
    """Crash one replica process."""

    node_id: int = 0

    def apply(self, system: "BaseSystem") -> None:
        system.crash_node(self.node_id)

    def describe(self) -> str:
        return f"crash node {self.node_id} @ t={self.time:.3f}s"


@dataclass(frozen=True)
class CrashPrimary(FaultEvent):
    """Crash the initial (view-0) primary of one cluster.

    After a view change the new primary is an ordinary node; crash it
    with :class:`CrashNode` and the cluster's ``primary_for_view``.
    """

    cluster: int = 0

    def apply(self, system: "BaseSystem") -> None:
        system.crash_primary(ClusterId(self.cluster))

    def describe(self) -> str:
        return f"crash primary of cluster p{self.cluster} @ t={self.time:.3f}s"


@dataclass(frozen=True)
class RecoverNode(FaultEvent):
    """Restart a previously crashed replica (state retained, Section 2.1)."""

    node_id: int = 0

    def apply(self, system: "BaseSystem") -> None:
        system.recover_node(self.node_id)

    def describe(self) -> str:
        return f"recover node {self.node_id} @ t={self.time:.3f}s"


@dataclass(frozen=True)
class PartitionClusters(FaultEvent):
    """Partition the network along cluster boundaries.

    ``groups`` lists cluster ids; messages only flow between nodes whose
    clusters share a group.  Processes not named by any group (clients,
    clusters left out) keep full connectivity, matching
    :meth:`repro.sim.network.Network.partition`.
    """

    groups: tuple[tuple[int, ...], ...] = ()

    def apply(self, system: "BaseSystem") -> None:
        pid_groups = []
        for group in self.groups:
            pids = []
            for cluster in group:
                cluster_config = system.config.cluster(ClusterId(cluster))
                pids.extend(int(node) for node in cluster_config.node_ids)
            pid_groups.append(pids)
        system.network.partition(pid_groups)

    def describe(self) -> str:
        rendered = " | ".join(
            ",".join(f"p{cluster}" for cluster in group) for group in self.groups
        )
        return f"partition [{rendered}] @ t={self.time:.3f}s"


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Remove every partition and severed link."""

    def apply(self, system: "BaseSystem") -> None:
        system.network.heal()

    def describe(self) -> str:
        return f"heal network @ t={self.time:.3f}s"


@dataclass(frozen=True)
class MakeByzantine(FaultEvent):
    """Attach an adversary behaviour to one replica (it keeps running).

    ``behavior`` is a :mod:`repro.adversary` registry name or a ready
    :class:`~repro.adversary.AdversaryBehavior` instance.
    """

    #: marker consulted by :meth:`repro.api.Scenario.run` to decide
    #: whether the cross-replica safety audit is warranted.
    adversarial = True

    node_id: int = 0
    behavior: "str | AdversaryBehavior" = "silent-primary"

    def apply(self, system: "BaseSystem") -> None:
        system.make_byzantine(self.node_id, self.behavior)

    def describe(self) -> str:
        label = self.behavior if isinstance(self.behavior, str) else self.behavior.describe()
        return f"make node {self.node_id} byzantine ({label}) @ t={self.time:.3f}s"


@dataclass(frozen=True)
class MakePrimaryByzantine(FaultEvent):
    """Attach an adversary behaviour to the initial primary of a cluster."""

    adversarial = True

    cluster: int = 0
    behavior: "str | AdversaryBehavior" = "silent-primary"

    def apply(self, system: "BaseSystem") -> None:
        system.make_primary_byzantine(ClusterId(self.cluster), self.behavior)

    def describe(self) -> str:
        label = self.behavior if isinstance(self.behavior, str) else self.behavior.describe()
        return f"make primary of cluster p{self.cluster} byzantine ({label}) @ t={self.time:.3f}s"


@dataclass(frozen=True)
class MakeClientByzantine(FaultEvent):
    """Attach a *client* adversary behaviour to one spawned client.

    ``client`` indexes the system's clients in spawn order; ``behavior``
    is a client-target registry name (``duplicating-client``,
    ``forged-signature-client``, ``ownership-violator-client``, …) or a
    ready instance.  Arming any adversary also arms the replica-side
    request guards (:meth:`repro.core.system.BaseSystem.arm_request_guards`).
    """

    adversarial = True

    client: int = 0
    behavior: "str | AdversaryBehavior" = "duplicating-client"

    def apply(self, system: "BaseSystem") -> None:
        system.make_client_byzantine(self.client, self.behavior)

    def describe(self) -> str:
        label = self.behavior if isinstance(self.behavior, str) else self.behavior.describe()
        return f"make client {self.client} byzantine ({label}) @ t={self.time:.3f}s"


@dataclass(frozen=True)
class FormCoalition(FaultEvent):
    """Bind Byzantine replicas in different clusters to one shared script.

    ``members`` maps node ids to the behaviour each coalition member
    gates on the shared target set (see
    :class:`repro.adversary.Coalition`).  The coalition object itself is
    built at apply time, so schedules stay picklable and worker pools
    construct private instances.
    """

    adversarial = True

    members: tuple[tuple[int, str], ...] = ()
    seed: int = 0

    def apply(self, system: "BaseSystem") -> None:
        system.form_coalition(dict(self.members), seed=self.seed)

    def describe(self) -> str:
        rendered = ", ".join(f"{node}:{behavior}" for node, behavior in self.members)
        return f"form coalition [{rendered}] @ t={self.time:.3f}s"


@dataclass(frozen=True)
class RestoreNode(FaultEvent):
    """Restore a Byzantine replica to correct behaviour (detach adversary)."""

    node_id: int = 0

    def apply(self, system: "BaseSystem") -> None:
        system.restore_node(self.node_id)

    def describe(self) -> str:
        return f"restore node {self.node_id} @ t={self.time:.3f}s"


class FaultSchedule:
    """An ordered collection of :class:`FaultEvent` with a fluent builder.

    Schedules are append-only; every builder method returns ``self`` so
    calls chain.  :meth:`arm` registers the events with a system's
    simulator — after that, a plain ``sim.run`` executes them in time
    order alongside the protocol traffic.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: list[FaultEvent] = sorted(events, key=lambda event: event.time)
        #: systems this schedule was already armed on (arm guard); weak
        #: references, so a collected system never blocks a new one that
        #: happens to reuse its memory address.
        self._armed_on: "WeakSet[BaseSystem]" = WeakSet()

    # ------------------------------------------------------------------
    # builder surface
    # ------------------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Insert one event, keeping the list sorted by time.

        Uses a binary insertion (``bisect.insort``) instead of re-sorting
        the whole list on every append; ties keep insertion order, which
        ``list.sort`` (stable) also guaranteed.
        """
        insort(self._events, event, key=lambda item: item.time)
        return self

    def crash_node(self, at: float, node_id: int) -> "FaultSchedule":
        """Crash replica ``node_id`` at simulated time ``at``."""
        return self.add(CrashNode(time=at, node_id=node_id))

    def crash_primary(self, at: float, cluster: int) -> "FaultSchedule":
        """Crash the primary of ``cluster`` at simulated time ``at``."""
        return self.add(CrashPrimary(time=at, cluster=cluster))

    def recover_node(self, at: float, node_id: int) -> "FaultSchedule":
        """Recover replica ``node_id`` at simulated time ``at``."""
        return self.add(RecoverNode(time=at, node_id=node_id))

    def partition(self, at: float, groups: Sequence[Sequence[int]]) -> "FaultSchedule":
        """Partition the network along cluster boundaries at time ``at``."""
        frozen = tuple(tuple(int(cluster) for cluster in group) for group in groups)
        return self.add(PartitionClusters(time=at, groups=frozen))

    def heal(self, at: float) -> "FaultSchedule":
        """Heal all partitions and severed links at time ``at``."""
        return self.add(Heal(time=at))

    def make_byzantine(
        self, at: float, node: int, behavior: "str | AdversaryBehavior" = "silent-primary"
    ) -> "FaultSchedule":
        """Attach an adversary behaviour to replica ``node`` at time ``at``."""
        return self.add(MakeByzantine(time=at, node_id=node, behavior=behavior))

    def make_primary_byzantine(
        self, at: float, cluster: int, behavior: "str | AdversaryBehavior" = "silent-primary"
    ) -> "FaultSchedule":
        """Attach an adversary behaviour to ``cluster``'s initial primary."""
        return self.add(MakePrimaryByzantine(time=at, cluster=cluster, behavior=behavior))

    def make_client_byzantine(
        self, at: float, client: int, behavior: "str | AdversaryBehavior" = "duplicating-client"
    ) -> "FaultSchedule":
        """Attach a client adversary behaviour to spawned client ``client``."""
        return self.add(MakeClientByzantine(time=at, client=client, behavior=behavior))

    def form_coalition(
        self, at: float, members: "dict[int, str] | Sequence[tuple[int, str]]", seed: int = 0
    ) -> "FaultSchedule":
        """Bind the given replicas to one colluding script at time ``at``."""
        pairs = members.items() if isinstance(members, dict) else members
        frozen = tuple(sorted((int(node), str(behavior)) for node, behavior in pairs))
        return self.add(FormCoalition(time=at, members=frozen, seed=seed))

    def restore(self, at: float, node: int) -> "FaultSchedule":
        """Restore Byzantine replica ``node`` to correct behaviour at ``at``."""
        return self.add(RestoreNode(time=at, node_id=node))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def arm(self, system: "BaseSystem") -> None:
        """Schedule every event on ``system``'s simulator.

        Arming is idempotent per system: arming the same schedule twice
        on one system is a no-op (double-arming would apply every fault
        twice — crash/heal pairs would still work, but adversary and
        partition events would misbehave).  Arming on a *different*
        system schedules normally, so one schedule can drive several
        deployments.
        """
        if system in self._armed_on:
            return
        self._armed_on.add(system)
        for event in self._events:
            system.sim.schedule_at(event.time, event.apply, system)

    # ------------------------------------------------------------------
    # pickling (schedules ride inside scenarios shipped to --jobs workers;
    # the arm guard is per-process runtime state and does not travel)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"_events": self._events}

    def __setstate__(self, state: dict) -> None:
        self._events = state["_events"]
        self._armed_on = WeakSet()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """The schedule's events in time order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __repr__(self) -> str:
        inner = "; ".join(event.describe() for event in self._events) or "empty"
        return f"FaultSchedule({inner})"
