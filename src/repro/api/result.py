"""Scenario results: performance, safety, and ledger state in one bundle.

A :class:`ScenarioResult` is what :meth:`repro.api.Scenario.run` returns:
the steady-state :class:`~repro.common.metrics.RunStats`, the per-cluster
chain heights, the ledger :class:`~repro.ledger.validation.AuditReport`,
and the balance-conservation check — plus the live system object for
callers that want to inspect replicas directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..adversary.auditor import SafetyReport
from ..common.errors import ValidationError
from ..common.metrics import RunStats
from ..common.types import ClusterId
from ..ledger.validation import AuditReport
from ..obs import TraceReport
from ..recovery.stats import RecoveryStats
from ..storage.stats import StorageStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.system import BaseSystem
    from .scenario import Scenario

__all__ = ["ScenarioResult"]


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    #: the scenario that was run.
    scenario: "Scenario"
    #: the live system object (replicas, network, simulator still
    #: inspectable).  ``None`` for detached results — e.g. those returned
    #: from a ``jobs > 1`` worker pool, where the live object graph
    #: (pending events, bound-method callbacks) cannot cross the process
    #: boundary.
    system: "BaseSystem | None"
    #: steady-state performance statistics.
    stats: RunStats
    #: simulated time at which measurement stopped.
    end_time: float
    #: simulated time at which the drained system went idle (None if not drained).
    idle_time: float | None = None
    #: ledger consistency audit (None when the scenario skipped verification).
    audit: AuditReport | None = None
    #: committed chain height per cluster (from the representative views).
    chain_heights: dict[ClusterId, int] = field(default_factory=dict)
    #: observed and expected total balance (None when verification skipped).
    total_balance: int | None = None
    expected_balance: int | None = None
    #: cross-replica safety audit under adversaries (None when skipped —
    #: see :attr:`repro.api.Scenario.audit_safety`).
    safety: SafetyReport | None = None
    #: aggregated checkpoint/state-transfer/termination counters (None
    #: for systems without the recovery subsystem, e.g. some baselines).
    recovery: RecoveryStats | None = None
    #: storage footprint gauges (store backend, resident accounts and
    #: blocks, archive growth).
    storage: StorageStats | None = None
    #: flight-recorder report (phase breakdown, spans, gauges); ``None``
    #: unless the scenario armed tracing via ``DeploymentSpec(trace=…)``.
    trace: TraceReport | None = None

    # ------------------------------------------------------------------
    # detachment (multiprocessing support)
    # ------------------------------------------------------------------
    def detach(self) -> "ScenarioResult":
        """A picklable copy of this result without the live system.

        Everything reported — stats, chain heights, audit, balances — is
        retained; only the ``system`` handle is dropped.  Worker processes
        of the parallel bench runner return detached results.
        """
        if self.system is None:
            return self
        return dataclasses.replace(self, system=None)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    @property
    def balance_conserved(self) -> bool:
        """Whether the total minted balance survived the run intact."""
        if self.total_balance is None or self.expected_balance is None:
            return True
        return self.total_balance == self.expected_balance

    @property
    def ok(self) -> bool:
        """Audits passed (or were skipped) and balances are conserved."""
        audit_ok = self.audit.ok if self.audit is not None else True
        safety_ok = self.safety.ok if self.safety is not None else True
        return audit_ok and safety_ok and self.balance_conserved

    def raise_if_failed(self) -> None:
        """Raise if any audit failed or balances were not conserved."""
        if self.audit is not None:
            self.audit.raise_if_failed()
        if self.safety is not None:
            self.safety.raise_if_failed()
        if not self.balance_conserved:
            raise ValidationError(
                f"balance not conserved: have {self.total_balance}, "
                f"expected {self.expected_balance}"
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        return self.stats.throughput

    @property
    def avg_latency_ms(self) -> float:
        """Average end-to-end latency in milliseconds."""
        return self.stats.avg_latency * 1e3

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary form, convenient for CSV/JSON reporting."""
        row: dict[str, Any] = {
            "scenario": self.scenario.name or self.scenario.deployment.system,
            "system": self.scenario.deployment.system,
            "clients": self.scenario.clients,
            **self.stats.as_dict(),
            "audit_ok": self.audit.ok if self.audit is not None else None,
            "safety_ok": self.safety.ok if self.safety is not None else None,
            "balance_conserved": self.balance_conserved,
        }
        if self.recovery is not None:
            row.update(self.recovery.as_dict())
        if self.storage is not None:
            row.update(self.storage.as_dict())
        for cluster_id in sorted(self.chain_heights):
            row[f"height_p{int(cluster_id)}"] = self.chain_heights[cluster_id]
        if self.trace is not None:
            row.update(self.trace.as_dict())
        return row

    def summary(self) -> str:
        """A short human-readable account of the run."""
        lines = [
            f"scenario   : {self.scenario.name or self.scenario.deployment.system}",
            f"committed  : {self.stats.committed} "
            f"({self.stats.committed_cross} cross-shard)",
            f"throughput : {self.stats.throughput:,.0f} tx/s",
            f"latency    : {self.avg_latency_ms:.2f} ms avg, "
            f"{self.stats.p95_latency * 1e3:.2f} ms p95",
        ]
        if self.chain_heights:
            heights = ", ".join(
                f"p{int(cluster_id)}={height}"
                for cluster_id, height in sorted(self.chain_heights.items())
            )
            lines.append(f"chains     : {heights}")
        if self.stats.late_commits:
            lines.append(f"late cmts  : {self.stats.late_commits} cross-shard commits raced a view change")
        if self.audit is not None:
            lines.append(f"audit      : {'OK' if self.audit.ok else self.audit.problems}")
            lines.append(f"balance    : {'conserved' if self.balance_conserved else 'VIOLATED'}")
        if self.safety is not None:
            lines.append(f"safety     : {'OK' if self.safety.ok else self.safety.problems}")
        if self.recovery is not None and (
            self.recovery.checkpoints_taken
            or self.recovery.state_transfers_requested
            or self.recovery.terminations_started
        ):
            lines.append(f"recovery   : {self.recovery.summary()}")
        if self.storage is not None:
            lines.append(f"storage    : {self.storage.summary()}")
        if self.trace is not None:
            lines.append(f"trace      : {self.trace.summary()}")
        return "\n".join(lines)
