"""Declarative scenarios: deployment + workload + clients + faults in one object.

A :class:`Scenario` captures one cell of the paper's evaluation matrix —
*which system*, under *which fault model*, driven by *which workload mix*,
with *which faults injected when* — and :meth:`Scenario.run` executes the
whole lifecycle (build, spawn clients, arm faults, simulate, drain,
audit) that examples and benchmarks used to hand-wire::

    from repro.api import DeploymentSpec, FaultSchedule, Scenario
    from repro import FaultModel, WorkloadConfig

    scenario = Scenario(
        deployment=DeploymentSpec(system="sharper", fault_model=FaultModel.CRASH),
        workload=WorkloadConfig(cross_shard_fraction=0.2, accounts_per_shard=256),
        clients=32,
        duration=0.4,
        faults=FaultSchedule().crash_primary(at=0.1, cluster=0),
    )
    result = scenario.run()
    print(result.summary())

Scenarios are frozen dataclasses, so variations (client sweeps, fault
ablations) are cheap ``dataclasses.replace`` copies — see
:meth:`Scenario.with_clients` and :func:`run_sweep`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..common.config import PerformanceModel, ProtocolTuning, StorageSpec, SystemConfig
from ..common.errors import ConfigurationError
from ..common.metrics import MetricsCollector
from ..common.types import FaultModel
from ..obs import FlightRecorder, TraceSpec, normalize_trace
from ..recovery.stats import collect_recovery_stats
from ..storage.stats import collect_storage_stats
from ..txn.workload import WorkloadConfig
from .faults import FaultSchedule
from .registry import get_system
from .result import ScenarioResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.system import BaseSystem

__all__ = ["DeploymentSpec", "Scenario", "run_scenarios", "run_sweep"]


@dataclass(frozen=True)
class DeploymentSpec:
    """Which system to deploy, on what cluster topology.

    Either describe a homogeneous deployment (``num_clusters``/``f``/
    ``nodes_per_cluster``, built via :meth:`SystemConfig.build`) or hand
    in an explicit :class:`SystemConfig` via ``config`` — e.g. one
    produced by :func:`repro.core.sharding.build_grouped_system` for the
    per-cloud clustering of Section 3.4.
    """

    system: str = "sharper"
    fault_model: FaultModel = FaultModel.CRASH
    num_clusters: int = 4
    f: int = 1
    nodes_per_cluster: int | None = None
    performance: PerformanceModel = field(default_factory=PerformanceModel)
    tuning: ProtocolTuning = field(default_factory=ProtocolTuning)
    #: convenience override for the most commonly swept recovery knob:
    #: when set, replaces ``tuning.checkpoint_interval`` (decided slots
    #: between checkpoints; 0 disables checkpointing and log GC).
    checkpoint_interval: int | None = None
    #: convenience overrides for the batching knobs: when set, they
    #: replace ``tuning.batch_size`` (requests ordered per consensus
    #: slot; 1 disables batching — bit-identical to the unbatched
    #: seeds) and ``tuning.pipeline_depth`` (in-flight batched slots
    #: per primary; binds only when batching is armed).
    batch_size: int | None = None
    pipeline_depth: int | None = None
    #: replica state-store backend: "dict" (default) or "columnar"
    #: (flat-column store for million-account shards).
    store_backend: str = "dict"
    #: sqlite database path checkpoint GC spills pruned blocks into
    #: (":memory:" accepted); None drops pruned history as before.
    archive: str | None = None
    #: flight-recorder arming (:mod:`repro.obs`): ``None``/``False`` runs
    #: untraced (bit-identical to the seeds — every hook is a single
    #: ``is None`` check), ``True`` arms the default :class:`TraceSpec`,
    #: and an explicit :class:`TraceSpec` tunes gauges and their
    #: sampling interval.
    trace: "TraceSpec | bool | None" = None
    #: explicit topology override; when set, the fields above describing
    #: the homogeneous layout are ignored (except ``store_backend`` /
    #: ``archive``, which still apply when non-default).
    config: SystemConfig | None = None

    def resolve(self, seed: int = 0) -> SystemConfig:
        """The concrete :class:`SystemConfig` this spec describes."""
        storage = StorageSpec(store_backend=self.store_backend, archive_path=self.archive)
        if self.config is not None:
            if storage != StorageSpec():
                return dataclasses.replace(self.config, storage=storage)
            return self.config
        tuning = self.tuning
        if self.checkpoint_interval is not None:
            tuning = dataclasses.replace(
                tuning, checkpoint_interval=self.checkpoint_interval
            )
        if self.batch_size is not None:
            tuning = dataclasses.replace(tuning, batch_size=self.batch_size)
        if self.pipeline_depth is not None:
            tuning = dataclasses.replace(tuning, pipeline_depth=self.pipeline_depth)
        return SystemConfig.build(
            num_clusters=self.num_clusters,
            fault_model=self.fault_model,
            f=self.f,
            nodes_per_cluster=self.nodes_per_cluster,
            performance=self.performance,
            tuning=tuning,
            storage=storage,
            seed=seed,
        )


@dataclass(frozen=True)
class Scenario:
    """One fully-specified experiment, runnable end to end."""

    deployment: DeploymentSpec = field(default_factory=DeploymentSpec)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: display name used in reports; defaults to the system name.
    name: str = ""
    #: number of closed-loop clients driving the system.
    clients: int = 32
    #: simulated seconds to run and measure.
    duration: float = 0.30
    #: leading window whose samples are discarded (paper: steady state).
    warmup: float = 0.06
    #: simulated seconds granted to in-flight transactions after the
    #: measurement window, before auditing.
    drain_grace: float = 2.0
    #: client retry/fail-over timeout (seconds).
    retry_timeout: float = 2.0
    seed: int = 1
    #: timed faults injected during the run.
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    #: drain, audit, and check balance conservation after measuring.
    verify: bool = True
    #: run the cross-replica :class:`~repro.adversary.SafetyAuditor`
    #: after draining.  ``None`` (the default) audits automatically
    #: whenever the fault schedule contains adversary events, so
    #: faultless benchmark sweeps pay nothing; set ``True``/``False`` to
    #: force either way.  Requires ``verify``.
    audit_safety: bool | None = None

    @property
    def label(self) -> str:
        """Report label: the explicit name, or the system's short name."""
        return self.name or self.deployment.system

    # ------------------------------------------------------------------
    # variations
    # ------------------------------------------------------------------
    def with_clients(self, clients: int) -> "Scenario":
        """A copy of this scenario at a different offered load."""
        return dataclasses.replace(self, clients=clients)

    def with_faults(self, faults: FaultSchedule) -> "Scenario":
        """A copy of this scenario with a different fault schedule."""
        return dataclasses.replace(self, faults=faults)

    def with_seed(self, seed: int) -> "Scenario":
        """A copy of this scenario with a different simulation seed."""
        return dataclasses.replace(self, seed=seed)

    # ------------------------------------------------------------------
    # adversary integration
    # ------------------------------------------------------------------
    @property
    def has_adversary(self) -> bool:
        """Whether the fault schedule injects Byzantine behaviour."""
        return any(getattr(event, "adversarial", False) for event in self.faults)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def build_system(self) -> "BaseSystem":
        """Instantiate the system under test (without running it)."""
        system_cls = get_system(self.deployment.system)
        config = self.deployment.resolve(seed=self.seed)
        return system_cls(config, self.workload, seed=self.seed)

    def run(self) -> ScenarioResult:
        """Execute the scenario and return the bundled result.

        Lifecycle: build the system, spawn and start the closed-loop
        clients, arm the fault schedule, simulate ``duration`` seconds,
        snapshot the steady-state statistics, and — when ``verify`` is
        set — drain in-flight transactions, audit the ledger, and check
        balance conservation.
        """
        # Events may land in the measurement window or (when verifying,
        # e.g. a heal before the audit) in the drain window — but an event
        # past the run's horizon would silently never execute.
        horizon = self.duration + (self.drain_grace if self.verify else 0.0)
        for event in self.faults:
            if event.time >= horizon:
                raise ConfigurationError(
                    f"fault event ({event.describe()}) is scheduled at or after "
                    f"this scenario's horizon of {horizon}s (duration plus drain "
                    "grace), so it would never execute"
                )
        system = self.build_system()
        metrics = MetricsCollector(warmup=self.warmup, measure_until=self.duration)
        group = system.spawn_clients(self.clients, metrics, retry_timeout=self.retry_timeout)
        trace_spec = normalize_trace(self.deployment.trace)
        recorder = None
        if trace_spec is not None:
            recorder = FlightRecorder(trace_spec)
            system.arm_recorder(recorder)
            recorder.start_gauges(system)
        system.start_clients(group)
        self.faults.arm(system)
        end = system.sim.run(until=self.duration)
        stats = metrics.finalize(end)
        idle_time = audit = total = expected = safety = None
        if self.verify:
            idle_time = system.drain(self.drain_grace)
            audit = system.audit()
            total = system.total_balance()
            expected = system.expected_total_balance()
            run_safety = (
                self.audit_safety
                if self.audit_safety is not None
                else self.has_adversary
            )
            if run_safety:
                safety = system.safety_audit()
        # Surface the engines' late-commit counters (cross-shard commits
        # that lost the race against a view-change fill) and the
        # recovery subsystem's checkpoint/state-transfer/termination
        # activity alongside the performance statistics.
        late_commits = 0
        for process in system.processes():
            cross = getattr(process, "cross", None)
            if cross is not None:
                late_commits += getattr(cross, "late_commits", 0)
        if late_commits:
            stats = dataclasses.replace(stats, late_commits=late_commits)
        recovery = collect_recovery_stats(system)
        storage = collect_storage_stats(system)
        heights = {
            cluster_id: view.height for cluster_id, view in system.views().items()
        }
        trace_report = None
        if recorder is not None:
            trace_report = recorder.finalize(system, system.sim.now)
        return ScenarioResult(
            scenario=self,
            system=system,
            stats=stats,
            end_time=end,
            idle_time=idle_time,
            audit=audit,
            chain_heights=heights,
            total_balance=total,
            expected_balance=expected,
            safety=safety,
            recovery=recovery,
            storage=storage,
            trace=trace_report,
        )


def _run_detached(scenario: Scenario) -> ScenarioResult:
    """Worker entry point: run a scenario, return a picklable result."""
    return scenario.run().detach()


def run_scenarios(
    scenarios: Sequence[Scenario],
    jobs: int = 1,
    progress: Callable[[str], None] | None = None,
) -> list[ScenarioResult]:
    """Run several independent scenarios, optionally in a process pool.

    Scenarios are deterministic and self-contained, so with ``jobs > 1``
    they are farmed out to a :mod:`multiprocessing` pool; results come
    back in input order and are *detached* (``result.system is None``).
    Per-seed results are bit-identical between serial and parallel
    execution — workload generation, transaction ids, and every RNG draw
    depend only on the scenario itself.  With ``jobs <= 1`` everything
    runs in-process and results keep their live system.
    """
    if jobs <= 1 or len(scenarios) <= 1:
        results = []
        for scenario in scenarios:
            result = scenario.run()
            results.append(result)
            if progress is not None:
                progress(_progress_line(result))
        return results
    with multiprocessing.get_context().Pool(processes=min(jobs, len(scenarios))) as pool:
        results = []
        for result in pool.imap(_run_detached, scenarios):
            results.append(result)
            if progress is not None:
                progress(_progress_line(result))
    return results


def _progress_line(result: ScenarioResult) -> str:
    scenario = result.scenario
    return (
        f"{scenario.label}: {scenario.clients} clients -> "
        f"{result.throughput:.0f} tps @ {result.avg_latency_ms:.1f} ms"
    )


def run_sweep(
    scenario: Scenario,
    client_counts: Sequence[int],
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
) -> list[ScenarioResult]:
    """Run ``scenario`` once per client count (a load sweep).

    With ``jobs > 1`` the sweep points run in a process pool (see
    :func:`run_scenarios`); results are returned in ``client_counts``
    order either way.
    """
    return run_scenarios(
        [scenario.with_clients(clients) for clients in client_counts],
        jobs=jobs,
        progress=progress,
    )
