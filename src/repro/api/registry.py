"""Pluggable system registry: name -> :class:`~repro.core.system.BaseSystem`.

Every evaluated system registers itself with :func:`register_system`::

    from repro.api import register_system
    from repro.core.system import BaseSystem

    @register_system("mysystem", aliases=("my",))
    class MySystem(BaseSystem):
        ...

and becomes addressable by name from a :class:`~repro.api.Scenario`, the
benchmark harness, and the CLI — no central dict to edit.  The built-in
systems (SharPer plus the AHL/APR/Fast baselines) self-register when
their modules are imported; :func:`get_system` imports them lazily so a
bare ``get_system("sharper")`` works without any prior import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Type, TypeVar

from ..common.errors import RegistrationError, UnknownSystemError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.system import BaseSystem

__all__ = [
    "available_systems",
    "get_system",
    "register_system",
    "unregister_system",
]

SystemT = TypeVar("SystemT", bound="type")

#: name -> system class; aliases map to the same class as the canonical name.
_REGISTRY: dict[str, Type["BaseSystem"]] = {}
_builtins_loaded = False


def _normalize(name: str) -> str:
    key = name.strip().lower()
    if not key:
        raise RegistrationError("system names must be non-empty")
    return key


def _ensure_builtins() -> None:
    """Import the modules whose import side effect registers the built-ins."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    from .. import baselines  # noqa: F401  (registers ahl/apr/fast)
    from ..core import system  # noqa: F401  (registers sharper)

    _builtins_loaded = True


def register_system(
    name: str, *, aliases: Iterable[str] = (), replace: bool = False
) -> Callable[[SystemT], SystemT]:
    """Class decorator registering a system under ``name`` (plus aliases).

    Re-registering the *same* class under the same name is a no-op, so
    module reloads stay harmless; binding a name to a *different* class
    raises :class:`~repro.common.errors.RegistrationError` unless
    ``replace=True`` is passed explicitly.
    """
    keys = [_normalize(name)] + [_normalize(alias) for alias in aliases]

    def _same_class(a: type, b: type) -> bool:
        # A module reload re-executes the class statement, producing a new
        # class object with the same identity in source terms.
        return a is b or (a.__module__, a.__qualname__) == (b.__module__, b.__qualname__)

    def decorator(cls: SystemT) -> SystemT:
        # Validate every key before touching the registry, so a conflict
        # on an alias does not leave a half-registered system behind.
        for key in keys:
            existing = _REGISTRY.get(key)
            if existing is not None and not _same_class(existing, cls) and not replace:
                raise RegistrationError(
                    f"system name {key!r} is already registered to "
                    f"{existing.__module__}.{existing.__qualname__}; "
                    "pass replace=True to override"
                )
        for key in keys:
            _REGISTRY[key] = cls
        cls.registry_name = keys[0]
        return cls

    return decorator


def get_system(name: str) -> Type["BaseSystem"]:
    """Look up a registered system class by (case-insensitive) name."""
    _ensure_builtins()
    try:
        return _REGISTRY[_normalize(name)]
    except KeyError:
        raise UnknownSystemError(
            f"unknown system {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def available_systems() -> dict[str, Type["BaseSystem"]]:
    """A snapshot of the registry: sorted name -> system class."""
    _ensure_builtins()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def unregister_system(name: str) -> None:
    """Remove a system and every alias it was registered under."""
    removed = _REGISTRY.pop(_normalize(name), None)
    if removed is not None:
        for key in [key for key, cls in _REGISTRY.items() if cls is removed]:
            del _REGISTRY[key]
