"""The public experiment API: scenarios, fault schedules, system registry.

This package is the one entry point for running anything in the
reproduction:

* :class:`Scenario` / :class:`DeploymentSpec` — declare *what* to run
  (system, topology, workload, client mix, duration) and let
  :meth:`Scenario.run` own the lifecycle.
* :class:`FaultSchedule` — declare timed faults (crashes, partitions,
  Byzantine adversaries) executed as simulator events during the run.
* :func:`register_system` / :func:`get_system` — the pluggable registry
  that maps short names (``"sharper"``, ``"ahl"``, …) to system classes;
  third-party systems plug in with the same decorator the built-ins use.
* :class:`ScenarioResult` — performance statistics, per-cluster chain
  heights, the ledger audit, and the balance-conservation check.

The benchmark harness (:mod:`repro.bench`) and every example build on
this API.
"""

from .faults import (
    CrashNode,
    CrashPrimary,
    FaultEvent,
    FaultSchedule,
    FormCoalition,
    Heal,
    MakeByzantine,
    MakeClientByzantine,
    MakePrimaryByzantine,
    PartitionClusters,
    RecoverNode,
    RestoreNode,
)
from .registry import available_systems, get_system, register_system, unregister_system
from .result import ScenarioResult
from .scenario import DeploymentSpec, Scenario, run_scenarios, run_sweep

__all__ = [
    "CrashNode",
    "CrashPrimary",
    "DeploymentSpec",
    "FaultEvent",
    "FaultSchedule",
    "FormCoalition",
    "Heal",
    "MakeByzantine",
    "MakeClientByzantine",
    "MakePrimaryByzantine",
    "PartitionClusters",
    "RecoverNode",
    "RestoreNode",
    "Scenario",
    "ScenarioResult",
    "available_systems",
    "get_system",
    "register_system",
    "run_scenarios",
    "run_sweep",
    "unregister_system",
]
