"""Intra-shard consensus for Byzantine clusters (PBFT, Figure 3(b)).

Normal-case operation over a cluster of ``3f + 1`` nodes:

1. the primary assigns the next sequence number and multicasts a signed
   ``pre-prepare``;
2. every replica that accepts the pre-prepare multicasts a signed
   ``prepare``; a replica is *prepared* once it holds ``2f + 1`` matching
   prepares (its own included);
3. prepared replicas multicast a signed ``commit``; a slot is decided at a
   replica once it holds ``2f + 1`` matching commits.

Replicas execute decided slots in order and reply to the client, which
waits for ``f + 1`` matching replies.  The view-change path is shared
with the Paxos engine (:class:`~repro.consensus.view_change.ViewChangeManager`).
"""

from __future__ import annotations

from .base import ConsensusEngine, ConsensusHost, QuorumTracker
from .batching import member_requests
from .log import EntryStatus, item_digest
from .messages import NewView, PBFTCommit, PrePrepare, Prepare, ViewChange
from .view_change import ViewChangeManager

__all__ = ["PBFTEngine"]


class PBFTEngine(ConsensusEngine):
    """PBFT ordering engine for one Byzantine cluster."""

    HANDLERS = {
        PrePrepare: "_on_pre_prepare",
        Prepare: "_on_prepare",
        PBFTCommit: "_on_commit",
        ViewChange: "_on_view_change_message",
        NewView: "_on_new_view_message",
    }

    #: upper bound on pre-prepares parked for not-yet-installed views (a
    #: Byzantine primary inflating views must not grow memory unboundedly).
    MAX_STASHED_PRE_PREPARES = 64

    def __init__(self, host: ConsensusHost) -> None:
        super().__init__(host)
        quorum = 2 * host.cluster.f + 1
        self._prepares = QuorumTracker(quorum)
        self._commits = QuorumTracker(quorum)
        self._items: dict[tuple[int, int, str], object] = {}
        #: pre-prepares for views this replica has not installed yet,
        #: keyed by view; released by :meth:`on_view_installed`.
        self._stashed_pre_prepares: dict[int, list[tuple[PrePrepare, int]]] = {}
        self._stashed_count = 0
        self.view_change = ViewChangeManager(self, quorum=quorum)

    # ------------------------------------------------------------------
    # primary side
    # ------------------------------------------------------------------
    def submit(self, item: object) -> int | None:
        """Order ``item``; only the primary of the current view may call this."""
        if not self.is_primary:
            return None
        slot = self.host.log.allocate()
        self.propose_at(slot, item)
        return slot

    def propose_at(self, slot: int, item: object) -> None:
        """Send the pre-prepare for ``item`` at an explicit slot."""
        digest = item_digest(item)
        self.host.log.record_pending(slot, digest, item, view=self.view, proposer=self.cluster_id)
        key = (self.view, slot, digest)
        self._items[key] = item
        self.host.multicast_cluster(
            PrePrepare(view=self.view, slot=slot, digest=digest, item=item)
        )
        self.view_change.monitor_slot(slot)
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            recorder.slot_open(now, pid, int(self.host.cluster.cluster_id), slot)
            for request in member_requests(item):
                recorder.phase(now, request.transaction.tx_id, "propose", pid)
        # The primary's pre-prepare counts as its prepare vote.
        self._record_prepare_vote(key, self.host.node_id)

    # ------------------------------------------------------------------
    # message handling (table-driven; see HandlerTable.handle)
    # ------------------------------------------------------------------
    def _on_pre_prepare(self, message: PrePrepare, src: int) -> None:
        if src != self.host.cluster.primary_for_view(message.view):
            return
        if message.view < self.view:
            return
        if message.view > self.view:
            # A pre-prepare alone must never advance the view: that is
            # exactly how a `forged-view` adversary self-elects (inflate
            # `message.view` to a view whose round-robin primary it is).
            # Higher views are only adopted through a certificate-carrying
            # NewView (or a quorum-attested state transfer); park the
            # message and replay it if that view is legitimately installed.
            self._stash_pre_prepare(message, src)
            return
        try:
            self.host.log.record_pending(
                message.slot, message.digest, message.item, view=message.view,
                proposer=self.cluster_id,
            )
        except Exception:
            # A different digest already occupies the slot: do not prepare.
            return
        key = (message.view, message.slot, message.digest)
        self._items[key] = message.item
        self.view_change.monitor_slot(message.slot)
        recorder = self.host.recorder
        if recorder is not None:
            recorder.slot_open(
                self.host.now, int(self.host.node_id),
                int(self.host.cluster.cluster_id), message.slot,
            )
        prepare = Prepare(
            view=message.view, slot=message.slot, digest=message.digest, node=self.host.node_id
        )
        self.host.multicast_cluster(prepare)
        self._record_prepare_vote(key, self.host.node_id)
        # As in PBFT, the pre-prepare doubles as the primary's prepare
        # vote at every backup (the primary never multicasts a separate
        # Prepare).  Without this a cluster of 3f + 1 with one silent
        # replica can never assemble a 2f + 1 prepare quorum at backups.
        self._record_prepare_vote(key, src)

    def _on_prepare(self, message: Prepare, src: int) -> None:
        key = (message.view, message.slot, message.digest)
        self._record_prepare_vote(key, src)

    def _record_prepare_vote(self, key: tuple[int, int, str], voter: int) -> None:
        fired = self._prepares.vote(key, voter)
        causal = self.host.recorder
        if causal is not None and causal.causal_armed:
            causal.quorum_vote(
                self.host.now, int(self.host.node_id), "prepare", key, int(voter), fired
            )
        if not fired:
            return
        # Prepared: multicast commit and count our own commit vote.
        view, slot, digest = key
        recorder = self.host.recorder
        if recorder is not None:
            item = self._items.get(key)
            if item is not None:
                now = self.host.now
                pid = int(self.host.node_id)
                for request in member_requests(item):
                    recorder.phase(now, request.transaction.tx_id, "prepared", pid)
        commit = PBFTCommit(view=view, slot=slot, digest=digest, node=self.host.node_id)
        self.host.multicast_cluster(commit)
        self._record_commit_vote(key, self.host.node_id)

    def _on_commit(self, message: PBFTCommit, src: int) -> None:
        key = (message.view, message.slot, message.digest)
        self._record_commit_vote(key, src)

    def _record_commit_vote(self, key: tuple[int, int, str], voter: int) -> None:
        fired = self._commits.vote(key, voter)
        causal = self.host.recorder
        if causal is not None and causal.causal_armed:
            causal.quorum_vote(
                self.host.now, int(self.host.node_id), "commit", key, int(voter), fired
            )
        if not fired:
            return
        view, slot, digest = key
        item = self._items.get(key)
        if item is None:
            entry = self.host.log.entry(slot)
            if entry is None or entry.digest != digest:
                return
            item = entry.item
        self.host.log.decide(slot, digest, item, proposer=self.cluster_id, view=view)
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for request in member_requests(item):
                recorder.phase(now, request.transaction.tx_id, "decided", pid)
        self.view_change.slot_decided(slot)
        self.host.after_decide()

    def _stash_pre_prepare(self, message: PrePrepare, src: int) -> None:
        """Park a future-view pre-prepare, preferring the nearest views.

        Legitimate out-of-order traffic is for the view about to install
        (a new primary's pre-prepare overtaking its NewView under link
        jitter); a forged-view adversary inflates to *farther* views.
        When the bounded stash is full, an entry of the farthest stashed
        view is evicted in favour of a nearer one, so the attacker can
        fill the budget with junk yet never crowd out the traffic the
        next installed view will actually want.
        """
        if self._stashed_count >= self.MAX_STASHED_PRE_PREPARES:
            farthest = max(self._stashed_pre_prepares)
            if message.view >= farthest:
                return
            batch = self._stashed_pre_prepares[farthest]
            batch.pop()
            if not batch:
                del self._stashed_pre_prepares[farthest]
            self._stashed_count -= 1
        self._stashed_pre_prepares.setdefault(message.view, []).append((message, src))
        self._stashed_count += 1

    # ------------------------------------------------------------------
    # view installation (certificate-verified; see ViewChangeManager)
    # ------------------------------------------------------------------
    def on_view_installed(self, view: int) -> None:
        """Release pre-prepares parked for ``view``; drop stale stashes.

        Stashed messages re-enter :meth:`_on_pre_prepare` with the view
        now current, so the usual primary/digest checks still apply.
        """
        for stashed_view in sorted(
            v for v in self._stashed_pre_prepares if v <= view
        ):
            batch = self._stashed_pre_prepares.pop(stashed_view)
            self._stashed_count -= len(batch)
            if stashed_view == view:
                for message, src in batch:
                    self._on_pre_prepare(message, src)

    # ------------------------------------------------------------------
    # checkpoint compaction (repro.recovery)
    # ------------------------------------------------------------------
    def compact_below(self, slot: int) -> None:
        """Drop per-slot vote/item bookkeeping covered by a stable checkpoint.

        Keys are ``(view, slot, digest)`` tuples, so the vote trackers
        and the item cache are filtered on the slot component; the
        view-change tracker (keyed on views, not slots) is untouched.
        """
        self._prepares.drop(lambda key: key[1] <= slot)
        self._commits.drop(lambda key: key[1] <= slot)
        for key in [key for key in self._items if key[1] <= slot]:
            del self._items[key]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def undecided_count(self) -> int:
        """Number of slots pre-prepared but not yet decided at this replica."""
        return sum(
            1
            for entry in self.host.log.entries()
            if entry.status is EntryStatus.PENDING
        )
