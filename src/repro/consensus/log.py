"""Per-replica ordering log.

Every replica keeps one :class:`OrderingLog` for its cluster's chain.
Intra-shard and cross-shard consensus instances both allocate *slots*
(sequence numbers) from the same log, which is what gives the paper's
total order over all transactions — intra or cross — that access the
cluster's shard (Section 2.3).

The log tracks three things per slot:

* the item proposed/accepted for the slot (at most one digest per slot —
  the quorum-intersection argument of Paxos/PBFT relies on this);
* whether the slot has been *decided* (committed by consensus);
* whether the slot has been *applied* (executed and appended to the
  ledger view).  Application is strictly in slot order.

Stable checkpoints (:mod:`repro.recovery`) garbage-collect the log:
:meth:`OrderingLog.truncate` drops applied entries and their dedup-index
rows at or below the *low-water mark*, bounding the per-replica entry
count for arbitrarily long runs, and stale protocol messages referring
to compacted slots are ignored rather than resurrected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..common.errors import ConsensusError
from ..common.types import ClusterId

__all__ = ["EntryStatus", "LogEntry", "OrderingLog", "Noop", "item_digest"]

from ..common.crypto import digest as _digest


@dataclass(frozen=True)
class Noop:
    """A no-op entry used to fill abandoned slots (e.g. after a view change)."""

    reason: str = "noop"


def item_digest(item: object) -> str:
    """Digest of an ordered item (transaction, no-op, or protocol marker).

    Ordered items are immutable (frozen dataclasses), and one payload
    object is shared by every replica a multicast reaches, so the digest
    is computed once and memoised on the instance — every later replica
    touching the same payload gets the cached value.  The cache attribute
    lives in ``__dict__`` and is not a dataclass field, so equality,
    hashing, and canonical encoding are unaffected.  Items that provide
    their own ``payload_digest`` (transactions, client requests) delegate
    to it.
    """
    payload_digest = getattr(item, "payload_digest", None)
    if payload_digest is not None:
        return payload_digest()
    item_dict = getattr(item, "__dict__", None)
    if item_dict is None:
        return _digest(item)
    cached = item_dict.get("_item_digest")
    if cached is None:
        cached = _digest(item)
        object.__setattr__(item, "_item_digest", cached)
    return cached


class EntryStatus(enum.Enum):
    """Lifecycle of a slot in the ordering log."""

    PENDING = "pending"
    DECIDED = "decided"
    APPLIED = "applied"


@dataclass(slots=True)
class LogEntry:
    """State of one slot."""

    slot: int
    digest: str
    item: object
    status: EntryStatus = EntryStatus.PENDING
    #: full position vector for cross-shard entries (own cluster included).
    positions: dict[ClusterId, int] = field(default_factory=dict)
    #: cluster that initiated consensus for this entry.
    proposer: ClusterId | None = None
    #: view in which the entry was accepted (intra-shard protocols).
    view: int = 0

    @property
    def is_noop(self) -> bool:
        """Whether the entry is a gap-filling no-op."""
        return isinstance(self.item, Noop)


class OrderingLog:
    """Slot-indexed log of (to-be-)ordered items for one cluster."""

    def __init__(self, cluster_id: ClusterId) -> None:
        self.cluster_id = cluster_id
        self._entries: dict[int, LogEntry] = {}
        self._next_slot = 1
        self._next_apply = 1
        self._decided_digests: dict[str, int] = {}
        self._pending_digests: dict[str, int] = {}
        self._blocked_decisions = 0
        #: slots at or below this mark are checkpointed and compacted.
        self._low_water = 0
        #: running total of entries dropped by truncation.
        self.truncated_entries = 0
        #: high-water mark of the live entry count (bounded-memory proof).
        self.peak_entry_count = 0

    # ------------------------------------------------------------------
    # slot allocation
    # ------------------------------------------------------------------
    @property
    def next_slot(self) -> int:
        """Next slot a primary would allocate."""
        return self._next_slot

    @property
    def next_apply(self) -> int:
        """Lowest slot that has not been applied yet."""
        return self._next_apply

    @property
    def low_water_mark(self) -> int:
        """Highest slot compacted away by a stable checkpoint (0 = none)."""
        return self._low_water

    @property
    def entry_count(self) -> int:
        """Number of entries currently held (bounded by checkpointing)."""
        return len(self._entries)

    def allocate(self) -> int:
        """Allocate the next slot (primary side)."""
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def observe(self, slot: int) -> None:
        """Advance the allocation cursor past an externally observed slot."""
        if slot >= self._next_slot:
            self._next_slot = slot + 1

    # ------------------------------------------------------------------
    # entry state transitions
    # ------------------------------------------------------------------
    def entry(self, slot: int) -> LogEntry | None:
        """The entry currently recorded for ``slot``, if any."""
        return self._entries.get(slot)

    def entries(self) -> Iterator[LogEntry]:
        """All entries, in slot order."""
        for slot in sorted(self._entries):
            yield self._entries[slot]

    def record_pending(
        self,
        slot: int,
        digest: str,
        item: object,
        view: int = 0,
        proposer: ClusterId | None = None,
    ) -> LogEntry | None:
        """Record that ``item`` was accepted for ``slot`` (not yet decided).

        Within one view a slot accepts only one digest: re-recording the
        same digest is idempotent, and recording a different digest for
        an undecided slot raises (the caller decides how to resolve the
        conflict — in the normal case it simply refuses to vote for the
        second proposal).  A proposal carrying a strictly *higher* view
        supersedes a stale pending entry, as in PBFT: after a view
        change the new primary may legitimately re-propose a different
        item for a slot an equivocating old primary poisoned, and
        replicas must be able to accept it (otherwise one equivocation
        would wedge the slot forever).  Decided slots never change
        digest.  Slots at or below the low-water mark were checkpointed
        and compacted; stale proposals for them are ignored (``None``).
        """
        if slot <= self._low_water:
            return None
        if slot >= self._next_slot:  # inline observe()
            self._next_slot = slot + 1
        existing = self._entries.get(slot)
        if existing is not None:
            if existing.digest == digest:
                return existing
            if existing.status is not EntryStatus.PENDING:
                raise ConsensusError(
                    f"slot {slot} already {existing.status.value} with a different digest"
                )
            if view > existing.view:
                if self._pending_digests.get(existing.digest) == slot:
                    del self._pending_digests[existing.digest]
                existing.digest = digest
                existing.item = item
                existing.view = view
                existing.proposer = proposer
                self._pending_digests.setdefault(digest, slot)
                return existing
            raise ConsensusError(f"slot {slot} already holds a different pending digest")
        entry = LogEntry(slot=slot, digest=digest, item=item, view=view, proposer=proposer)
        self._entries[slot] = entry
        if len(self._entries) > self.peak_entry_count:
            self.peak_entry_count = len(self._entries)
        self._pending_digests.setdefault(digest, slot)
        return entry

    def decide(
        self,
        slot: int,
        digest: str,
        item: object,
        positions: Mapping[ClusterId, int] | None = None,
        proposer: ClusterId | None = None,
        view: int = 0,
    ) -> LogEntry | None:
        """Mark ``slot`` as decided with ``item``.

        Deciding overrides any pending entry for the slot (a pending entry
        with a different digest means that proposal lost; its initiator
        will retry at another slot).  Deciding an already-decided slot with
        a different digest is a safety violation and raises.  A stale
        decision for a slot at or below the low-water mark (already
        checkpointed and compacted) is ignored — resurrecting it would
        leave a permanently blocked entry below ``next_apply``.
        """
        if slot <= self._low_water:
            return None
        if slot >= self._next_slot:  # inline observe()
            self._next_slot = slot + 1
        existing = self._entries.get(slot)
        if existing is not None and existing.status is not EntryStatus.PENDING:
            if existing.digest != digest:
                raise ConsensusError(
                    f"slot {slot} decided twice with different digests (fork)"
                )
            return existing
        self._blocked_decisions += 1
        if existing is not None and existing.digest == digest:
            # Promote the pending entry in place (the common path: the
            # accept/pre-prepare already recorded it) instead of
            # allocating a replacement.
            entry = existing
            entry.item = item
            entry.status = EntryStatus.DECIDED
            entry.positions = dict(positions or {self.cluster_id: slot})
            entry.proposer = proposer
            entry.view = view
        else:
            entry = LogEntry(
                slot=slot,
                digest=digest,
                item=item,
                status=EntryStatus.DECIDED,
                positions=dict(positions or {self.cluster_id: slot}),
                proposer=proposer,
                view=view,
            )
            self._entries[slot] = entry
            if len(self._entries) > self.peak_entry_count:
                self.peak_entry_count = len(self._entries)
        if existing is not None and existing.digest != digest:
            # The pending proposal for this slot lost; drop its index
            # entry so its initiator may retry at another slot.
            if self._pending_digests.get(existing.digest) == slot:
                del self._pending_digests[existing.digest]
        self._pending_digests.pop(digest, None)
        self._decided_digests[digest] = slot
        return entry

    def decided_slot_of(self, digest: str) -> int | None:
        """Slot at which ``digest`` was decided, if it was."""
        return self._decided_digests.get(digest)

    def slot_of(self, digest: str) -> int | None:
        """Slot holding ``digest``, decided *or* still in flight.

        Primaries consult this before ordering a client retry: a request
        that is already decided (but perhaps not yet applied, so
        ``chain.contains_tx`` is still false) or still pending in some
        slot must not be allocated a second one — committing the same
        transaction at two slots would violate at-most-once execution.
        """
        slot = self._decided_digests.get(digest)
        if slot is not None:
            return slot
        return self._pending_digests.get(digest)

    def is_applied(self, slot: int) -> bool:
        """Whether ``slot`` has been executed and appended."""
        entry = self._entries.get(slot)
        return entry is not None and entry.status is EntryStatus.APPLIED

    # ------------------------------------------------------------------
    # in-order application
    # ------------------------------------------------------------------
    def pop_applicable(self) -> list[LogEntry]:
        """Return (and mark applied) the maximal run of decided slots.

        Application is strictly in slot order: the run stops at the first
        slot that is missing or not yet decided.
        """
        ready: list[LogEntry] = []
        while True:
            entry = self._entries.get(self._next_apply)
            if entry is None or entry.status is not EntryStatus.DECIDED:
                break
            entry.status = EntryStatus.APPLIED
            ready.append(entry)
            self._next_apply += 1
        self._blocked_decisions -= len(ready)
        return ready

    @property
    def blocked_decisions(self) -> int:
        """Number of decided slots that cannot apply yet (gap below them).

        Non-zero means some lower slot is missing or undecided — briefly
        normal while instances pipeline, but *persistently* non-zero is
        the signature of a primary withholding sequence numbers (e.g. a
        muted primary whose pre-prepares never reached the backups while
        cross-shard slots kept deciding above the gap).
        """
        return self._blocked_decisions

    # ------------------------------------------------------------------
    # checkpointing and compaction (repro.recovery)
    # ------------------------------------------------------------------
    def truncate(self, upto: int) -> int:
        """Drop applied entries at slots ``<= upto`` (stable-checkpoint GC).

        Only slots already applied may be compacted (a stable checkpoint
        certifies state *after* applying them), so the effective mark is
        clamped to ``next_apply - 1``.  Dedup-index rows pointing at the
        dropped slots go with them; the ledger view's transaction index
        keeps answering duplicate-detection queries for compacted
        history.  Returns the number of entries dropped.
        """
        upto = min(upto, self._next_apply - 1)
        if upto <= self._low_water:
            return 0
        removed = 0
        entries = self._entries
        decided = self._decided_digests
        for slot in range(self._low_water + 1, upto + 1):
            entry = entries.pop(slot, None)
            if entry is None:
                continue
            removed += 1
            if decided.get(entry.digest) == slot:
                del decided[entry.digest]
            if self._pending_digests.get(entry.digest) == slot:
                del self._pending_digests[entry.digest]
        self._low_water = upto
        self.truncated_entries += removed
        return removed

    def install_checkpoint(self, seq: int) -> None:
        """Adopt a remote stable checkpoint at ``seq`` (state transfer).

        Everything at or below ``seq`` is forgotten — including entries
        this replica never decided — and the apply cursor jumps past the
        checkpoint; the caller is responsible for installing the matching
        ledger/store snapshot and replaying the decided suffix.
        """
        entries = self._entries
        for slot in [slot for slot in entries if slot <= seq]:
            entry = entries.pop(slot)
            if self._decided_digests.get(entry.digest) == slot:
                del self._decided_digests[entry.digest]
            if self._pending_digests.get(entry.digest) == slot:
                del self._pending_digests[entry.digest]
        self._next_slot = max(self._next_slot, seq + 1)
        self._next_apply = max(self._next_apply, seq + 1)
        self._low_water = max(self._low_water, seq)
        self._blocked_decisions = sum(
            1 for entry in entries.values() if entry.status is EntryStatus.DECIDED
        )

    # ------------------------------------------------------------------
    # introspection (view change support, tests)
    # ------------------------------------------------------------------
    def undecided_slots(self) -> list[int]:
        """Slots below the allocation cursor that are not decided/applied.

        Compacted slots (at or below the low-water mark) are excluded —
        their stable checkpoint proves they were decided and applied.
        """
        return [
            slot
            for slot in range(self._low_water + 1, self._next_slot)
            if slot not in self._entries
            or self._entries[slot].status is EntryStatus.PENDING
        ]

    def decided_summary(self) -> tuple[tuple[int, str], ...]:
        """Compact ``(slot, digest)`` summary of decided/applied slots."""
        return tuple(
            (entry.slot, entry.digest)
            for entry in self.entries()
            if entry.status is not EntryStatus.PENDING
        )

    def pending_summary(self) -> tuple[tuple[int, str, object], ...]:
        """Compact summary of accepted-but-undecided slots."""
        return tuple(
            (entry.slot, entry.digest, entry.item)
            for entry in self.entries()
            if entry.status is EntryStatus.PENDING
        )
