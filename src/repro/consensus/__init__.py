"""Intra-shard consensus engines (Paxos, PBFT), ordering log, messages."""

from .base import ConsensusEngine, ConsensusHost, QuorumTracker
from .batching import BatchPipeline, member_requests
from .log import EntryStatus, LogEntry, Noop, OrderingLog, item_digest
from .messages import (
    ClientReply,
    ClientRequest,
    RequestBatch,
    CrossAccept,
    CrossAcceptB,
    CrossCommit,
    CrossCommitB,
    CrossPropose,
    CrossProposeB,
    NewView,
    PassiveUpdate,
    PaxosAccept,
    PaxosAccepted,
    PaxosCommit,
    PBFTCommit,
    Prepare,
    PrePrepare,
    ViewChange,
)
from .paxos import PaxosEngine
from .pbft import PBFTEngine
from .view_change import ViewChangeManager

__all__ = [
    "BatchPipeline",
    "ClientReply",
    "ClientRequest",
    "ConsensusEngine",
    "ConsensusHost",
    "CrossAccept",
    "CrossAcceptB",
    "CrossCommit",
    "CrossCommitB",
    "CrossPropose",
    "CrossProposeB",
    "EntryStatus",
    "LogEntry",
    "NewView",
    "Noop",
    "OrderingLog",
    "PBFTCommit",
    "PBFTEngine",
    "PassiveUpdate",
    "PaxosAccept",
    "PaxosAccepted",
    "PaxosCommit",
    "PaxosEngine",
    "Prepare",
    "PrePrepare",
    "QuorumTracker",
    "RequestBatch",
    "ViewChange",
    "ViewChangeManager",
    "item_digest",
    "member_requests",
]
