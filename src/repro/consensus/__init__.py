"""Intra-shard consensus engines (Paxos, PBFT), ordering log, messages."""

from .base import ConsensusEngine, ConsensusHost, QuorumTracker
from .log import EntryStatus, LogEntry, Noop, OrderingLog, item_digest
from .messages import (
    ClientReply,
    ClientRequest,
    CrossAccept,
    CrossAcceptB,
    CrossCommit,
    CrossCommitB,
    CrossPropose,
    CrossProposeB,
    NewView,
    PassiveUpdate,
    PaxosAccept,
    PaxosAccepted,
    PaxosCommit,
    PBFTCommit,
    Prepare,
    PrePrepare,
    ViewChange,
)
from .paxos import PaxosEngine
from .pbft import PBFTEngine
from .view_change import ViewChangeManager

__all__ = [
    "ClientReply",
    "ClientRequest",
    "ConsensusEngine",
    "ConsensusHost",
    "CrossAccept",
    "CrossAcceptB",
    "CrossCommit",
    "CrossCommitB",
    "CrossPropose",
    "CrossProposeB",
    "EntryStatus",
    "LogEntry",
    "NewView",
    "Noop",
    "OrderingLog",
    "PBFTCommit",
    "PBFTEngine",
    "PassiveUpdate",
    "PaxosAccept",
    "PaxosAccepted",
    "PaxosCommit",
    "PaxosEngine",
    "Prepare",
    "PrePrepare",
    "QuorumTracker",
    "ViewChange",
    "ViewChangeManager",
    "item_digest",
]
