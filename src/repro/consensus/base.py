"""Shared infrastructure for the consensus engines.

Engines (Paxos, PBFT, and the cross-shard protocols in
:mod:`repro.core`) are plain state machines: they do not own a network
socket or a ledger, they talk to a *host* — the replica process — through
the small :class:`ConsensusHost` interface.  This keeps the protocols
testable without the simulator and lets SharPer plug either intra-shard
protocol into the same replica ("the intra-shard consensus protocol in
SharPer is pluggable", Section 3.1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, ClassVar, Hashable, Mapping, Protocol, runtime_checkable

from ..common.config import ClusterConfig
from ..common.types import ClusterId, NodeId
from ..sim.simulator import Timer
from .log import OrderingLog

__all__ = ["ConsensusHost", "QuorumTracker", "ConsensusEngine", "HandlerTable"]


@runtime_checkable
class ConsensusHost(Protocol):
    """What a consensus engine needs from the replica hosting it."""

    node_id: NodeId
    cluster: ClusterConfig
    log: OrderingLog

    def multicast_cluster(self, message: Any) -> None:
        """Send ``message`` to every other node of this cluster."""
        ...

    def send_to(self, node_id: NodeId, message: Any) -> None:
        """Send ``message`` to one node."""
        ...

    def after_decide(self) -> None:
        """Notify the host that new slots may be ready to apply."""
        ...

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Arm a timer on the host's clock."""
        ...

    @property
    def now(self) -> float:
        """Current simulated time at the host."""
        ...

    @property
    def view_change_timeout(self) -> float:
        """Timeout after which a backup suspects the primary."""
        ...


class QuorumTracker:
    """Counts distinct votes per key and fires once a threshold is reached.

    Keys are protocol-specific tuples such as ``(view, slot, digest)``.
    A key fires at most once; duplicate votes from the same voter are
    ignored, matching the "matching messages from distinct nodes"
    requirement of every quorum in the paper.
    """

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError("quorum threshold must be positive")
        self.threshold = threshold
        self._votes: dict[Hashable, set[int]] = defaultdict(set)
        self._fired: set[Hashable] = set()

    def vote(self, key: Hashable, voter: int) -> bool:
        """Record a vote; returns ``True`` the first time the key reaches quorum."""
        if key in self._fired:
            return False
        votes = self._votes[key]
        votes.add(voter)
        if len(votes) >= self.threshold:
            self._fired.add(key)
            return True
        return False

    def count(self, key: Hashable) -> int:
        """Number of distinct votes recorded for ``key``."""
        return len(self._votes.get(key, ()))

    def reached(self, key: Hashable) -> bool:
        """Whether ``key`` has already reached its quorum."""
        return key in self._fired

    def voters(self, key: Hashable) -> frozenset[int]:
        """The distinct voters recorded for ``key``."""
        return frozenset(self._votes.get(key, ()))

    def clear(self) -> None:
        """Forget all votes (used on view installation)."""
        self._votes.clear()
        self._fired.clear()

    def drop(self, predicate: Callable[[Hashable], bool]) -> None:
        """Forget votes and fired marks for keys matching ``predicate``.

        Used by checkpoint compaction to garbage-collect per-slot vote
        bookkeeping once the slot is covered by a stable checkpoint.
        """
        for key in [key for key in self._votes if predicate(key)]:
            del self._votes[key]
        for key in [key for key in self._fired if predicate(key)]:
            self._fired.discard(key)


class HandlerTable:
    """Table-driven message dispatch shared by every protocol engine.

    Subclasses declare ``HANDLERS``, a class-level mapping from concrete
    message type to the *name* of the handling method.  The constructor
    resolves those names into bound methods once (so subclass overrides —
    e.g. :class:`~repro.baselines.single_group.FastPaxosEngine` replacing
    ``_on_accept`` — are picked up automatically), and :meth:`handle`
    dispatches with a single dict lookup on ``type(message)``.  Hosts
    merge :meth:`handlers` into their own process-level dispatch table so
    a delivered message is routed with one lookup end to end.
    """

    #: message type → handler method name; subclasses override.
    HANDLERS: ClassVar[Mapping[type, str]] = {}

    def _build_handlers(self) -> None:
        self._handlers: dict[type, Callable[[Any, int], None]] = {
            message_type: getattr(self, method_name)
            for message_type, method_name in self.HANDLERS.items()
        }

    def handlers(self) -> dict[type, Callable[[Any, int], None]]:
        """A copy of the bound message-type → handler table."""
        return dict(self._handlers)

    def handle(self, message: Any, src: int) -> bool:
        """Process a protocol message; returns ``True`` if it was consumed."""
        handler = self._handlers.get(type(message))
        if handler is None:
            return False
        handler(message, src)
        return True


class ConsensusEngine(HandlerTable):
    """Common plumbing shared by the intra-shard engines."""

    def __init__(self, host: ConsensusHost) -> None:
        self.host = host
        self.view = 0
        self._build_handlers()

    # ------------------------------------------------------------------
    # primary/backup roles
    # ------------------------------------------------------------------
    @property
    def primary(self) -> NodeId:
        """The primary of the current view."""
        return self.host.cluster.primary_for_view(self.view)

    @property
    def is_primary(self) -> bool:
        """Whether the hosting replica is the primary of the current view."""
        return self.host.node_id == self.primary

    @property
    def cluster_id(self) -> ClusterId:
        """Identifier of the hosting cluster."""
        return self.host.cluster.cluster_id

    # ------------------------------------------------------------------
    # shared view-change handlers (both intra-shard engines own a
    # ViewChangeManager under ``self.view_change``)
    # ------------------------------------------------------------------
    def _on_view_change_message(self, message: Any, src: int) -> None:
        self.view_change.handle_view_change(message, src)

    def _on_new_view_message(self, message: Any, src: int) -> None:
        self.view_change.handle_new_view(message, src)

    def on_view_installed(self, view: int) -> None:
        """Hook invoked whenever a view is installed (certificate-verified).

        Engines that park traffic for not-yet-installed views (PBFT
        stashes pre-prepares rather than trusting ``message.view``)
        release it here.  The base implementation does nothing.
        """

    # ------------------------------------------------------------------
    # interface implemented by concrete engines
    # ------------------------------------------------------------------
    def submit(self, item: object) -> int | None:
        """Primary-side entry point: start consensus on ``item``."""
        raise NotImplementedError
