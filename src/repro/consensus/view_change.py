"""Primary fail-over (view change) for the intra-shard protocols.

The paper (Sections 3.2/3.3) triggers a view change by timeout: a backup
that accepted a proposal starts a timer and suspects the primary if no
commit arrives before it expires.  Replicas exchange ``view-change``
messages; once enough replicas agree, the next primary (round-robin over
the cluster members) installs the new view, re-proposes the uncommitted
slots it learned about, fills unknown gaps with no-ops, and resumes
handling client requests.

View changes are *authenticated*, as in full PBFT: every ``ViewChange``
vote is signed by its sender, and the ``NewView`` that installs the new
primary carries a **certificate** of ``2f + 1`` (Byzantine; ``f + 1``
crash) signed votes for that view.  Backups verify the certificate —
distinct cluster members, matching view, valid signatures — before
adopting the primary, so a Byzantine replica that inflates view numbers
to self-elect (the ``forged-view`` behaviour) is rejected; see
:func:`verify_new_view_certificate`.  Checkpoint proofs are still
summarised rather than carried in full (``ViewChange.checkpoint`` plus
the ``f + 1`` attestation rule in :meth:`_install_as_primary`).
"""

from __future__ import annotations

import hashlib
from collections import Counter, defaultdict, deque
from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING, Iterable

from ..common.config import ClusterConfig
from ..common.crypto import Signature
from ..sim.simulator import Timer
from .base import QuorumTracker
from .log import EntryStatus, Noop, item_digest
from .messages import NewView, ViewChange

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import ConsensusEngine

__all__ = [
    "ViewChangeManager",
    "sign_view_change",
    "verify_new_view_certificate",
    "verify_view_change_signature",
    "view_change_digest",
]


def view_change_digest(message: ViewChange) -> str:
    """Content digest a view-change signature binds.

    Covers the vote's view, sender, checkpoint, and the (slot, digest)
    pairs of the log summary — the item objects are already bound
    through their digests, so they are not re-canonicalised.
    """
    hasher = hashlib.sha256(
        f"VC|{message.new_view}|{int(message.node)}|{message.checkpoint}".encode()
    )
    for slot, digest in message.decided:
        hasher.update(f"|d{slot}:{digest}".encode())
    for slot, digest, _item in message.accepted:
        hasher.update(f"|a{slot}:{digest}".encode())
    return hasher.hexdigest()


def sign_view_change(message: ViewChange) -> Signature:
    """Produce the sender's signature over a view-change vote."""
    return Signature(signer=int(message.node), payload_digest=view_change_digest(message))


def verify_view_change_signature(message: ViewChange) -> bool:
    """Check that a (possibly relayed) view-change vote is authentic."""
    signature = message.signature
    if signature is None or signature.forged:
        return False
    if signature.signer != int(message.node):
        return False
    return signature.payload_digest == view_change_digest(message)


def verify_new_view_certificate(
    certificate: Iterable[ViewChange], view: int, cluster: ClusterConfig
) -> bool:
    """Whether ``certificate`` proves the election of ``view``'s primary.

    Valid iff at least ``intra_quorum`` *distinct* members of ``cluster``
    contributed an authentic view-change vote for exactly ``view``.
    Votes for other views, from non-members, or with missing/forged/
    mismatching signatures are ignored — a fabricated certificate (the
    ``forged-view`` adversary) can therefore never reach quorum, because
    the forger cannot sign on behalf of correct nodes.
    """
    members = {int(node) for node in cluster.node_ids}
    signers: set[int] = set()
    for vote in certificate:
        if vote.new_view != view:
            continue
        if int(vote.node) not in members:
            continue
        if not verify_view_change_signature(vote):
            continue
        signers.add(int(vote.node))
    return len(signers) >= cluster.intra_quorum


class ViewChangeManager:
    """Drives timer-based primary fail-over for one consensus engine.

    Slot monitoring uses a single rolling timer per engine instead of one
    simulator timer per slot.  Slots are monitored in arming order, so
    their deadlines are monotonically increasing: the timer is armed for
    the earliest monitored deadline, and on firing it lazily skips slots
    that decided in the meantime and re-arms for the next pending
    deadline.  Fire times are identical to the per-slot-timer design, but
    a fault-free run keeps one live timer event per engine instead of one
    per slot — which previously bloated the event heap with tens of
    thousands of cancelled entries per benchmark point.
    """

    def __init__(self, engine: "ConsensusEngine", quorum: int) -> None:
        self.engine = engine
        self.quorum = quorum
        self._tracker = QuorumTracker(quorum)
        self._reports: dict[int, dict[int, ViewChange]] = defaultdict(dict)
        #: slots currently monitored (accepted but not yet decided).
        self._monitored: set[int] = set()
        #: (deadline, slot) in arming order — deadlines are monotonic.
        self._deadlines: deque[tuple[float, int]] = deque()
        self._timer: Timer | None = None
        self.in_view_change = False
        self.view_changes_completed = 0
        #: view-change votes dropped for bad/missing signatures, and
        #: NewView messages dropped for invalid certificates.
        self.rejected_votes = 0
        self.rejected_new_views = 0

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def monitor_slot(self, slot: int) -> None:
        """Start the commit timer for a slot this replica has accepted."""
        if slot in self._monitored:
            return
        host = self.engine.host
        self._monitored.add(slot)
        deadline = host.now + host.view_change_timeout
        self._deadlines.append((deadline, slot))
        if self._timer is None or not self._timer.active:
            self._arm(deadline)

    def _arm(self, deadline: float) -> None:
        # Single live timer per engine: cancel any pending one (e.g. armed
        # re-entrantly by monitor_slot during _on_timer) before arming.
        if self._timer is not None and self._timer.active:
            self._timer.cancel()
        host = self.engine.host
        delay = deadline - host.now
        self._timer = host.set_timer(delay if delay > 0.0 else 0.0, self._on_timer)

    def slot_decided(self, slot: int) -> None:
        """Stop monitoring a slot once it is decided (lazily dequeued)."""
        self._monitored.discard(slot)

    def _on_timer(self) -> None:
        # The fired timer is spent; clear the handle so re-entrant
        # monitor_slot calls (suspect → view change → re-propose) may arm
        # a fresh one, which the final _arm call below takes over.
        self._timer = None
        now = self.engine.host.now
        monitored = self._monitored
        deadlines = self._deadlines
        while deadlines:
            deadline, slot = deadlines[0]
            if slot not in monitored:
                deadlines.popleft()
                continue
            if deadline > now:
                self._arm(deadline)
                return
            deadlines.popleft()
            monitored.discard(slot)
            self._on_slot_timeout(slot)
        # Deque drained; a timer armed re-entrantly (if any) stays owned.

    def _on_slot_timeout(self, slot: int) -> None:
        entry = self.engine.host.log.entry(slot)
        if entry is not None and entry.status is not EntryStatus.PENDING:
            return
        self.suspect_primary()

    # ------------------------------------------------------------------
    # initiating a view change
    # ------------------------------------------------------------------
    def suspect_primary(self) -> None:
        """Broadcast a view-change vote for the next view."""
        if self.in_view_change:
            return
        self.in_view_change = True
        new_view = self.engine.view + 1
        host = self.engine.host
        recorder = host.recorder
        if recorder is not None:
            recorder.vc_open(
                host.now, int(host.node_id), int(host.cluster.cluster_id), new_view
            )
        message = self._build_view_change(new_view)
        self.engine.host.multicast_cluster(message)
        self.handle_view_change(message, self.engine.host.node_id)

    def _build_view_change(self, new_view: int) -> ViewChange:
        log = self.engine.host.log
        decided = []
        accepted = []
        for entry in log.entries():
            if entry.status is EntryStatus.PENDING:
                accepted.append((entry.slot, entry.digest, entry.item))
            else:
                decided.append((entry.slot, entry.digest))
                accepted.append((entry.slot, entry.digest, entry.item))
        unsigned = ViewChange(
            new_view=new_view,
            node=self.engine.host.node_id,
            decided=tuple(decided),
            accepted=tuple(accepted),
            checkpoint=log.low_water_mark,
        )
        return dataclass_replace(unsigned, signature=sign_view_change(unsigned))

    # ------------------------------------------------------------------
    # handling votes
    # ------------------------------------------------------------------
    def handle_view_change(self, message: ViewChange, src: int) -> None:
        """Record a view-change vote; install the view once quorum is reached.

        Votes are validated before they count (and before they can enter
        a certificate): the claimed ``node`` must match the channel-
        authenticated sender, and the signature must verify.  Without
        this, one Byzantine replica could smuggle a vote "from" a correct
        node into the stored reports, and a certificate built from them
        would fall below quorum at honest verifiers.
        """
        if message.new_view <= self.engine.view:
            return
        if int(message.node) != src or not verify_view_change_signature(message):
            self.rejected_votes += 1
            return
        self._reports[message.new_view][src] = message
        if not self._tracker.vote(("vc", message.new_view), src):
            return
        new_primary = self.engine.host.cluster.primary_for_view(message.new_view)
        if self.engine.host.node_id == new_primary:
            self._install_as_primary(message.new_view)

    def handle_new_view(self, message: NewView, src: int) -> None:
        """Adopt a new view announced by its primary — certificate checked.

        The announcement must come from the primary its view elects
        *and* carry a verifying quorum certificate of signed view-change
        votes; a ``forged-view`` adversary fails both the fabricated
        certificate check here and (for relayed claims) the
        cross-cluster verification in
        :meth:`repro.core.replica.SharPerReplica._on_new_view_announcement`.
        """
        expected_primary = self.engine.host.cluster.primary_for_view(message.view)
        if src != expected_primary or message.view <= self.engine.view:
            return
        if not verify_new_view_certificate(
            message.certificate, message.view, self.engine.host.cluster
        ):
            self.rejected_new_views += 1
            return
        self._enter_view(message.view)

    # ------------------------------------------------------------------
    # installing the new view
    # ------------------------------------------------------------------
    def _enter_view(self, view: int) -> None:
        self.engine.view = view
        self.in_view_change = False
        self.view_changes_completed += 1
        host = self.engine.host
        recorder = host.recorder
        if recorder is not None:
            recorder.vc_close(host.now, int(host.node_id), view)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._monitored.clear()
        self._deadlines.clear()
        # Reports for installed (and skipped) views can never be
        # consulted again; dropping them keeps long churny runs bounded.
        for stale in [reported for reported in self._reports if reported <= view]:
            del self._reports[stale]
        self.engine.on_view_installed(view)
        # Hosts may carry view-scoped state of their own (the batching
        # pipeline's in-flight window and queues); give them the same
        # installation signal the engine gets.
        notify = getattr(self.engine.host, "on_intra_view_installed", None)
        if notify is not None:
            notify(view)

    def _install_as_primary(self, view: int) -> None:
        """Become the primary of ``view``: announce it and resolve open slots.

        The ``NewView`` carries the quorum certificate of signed
        view-change votes this primary collected (they were validated on
        receipt), and — when the host participates in cross-shard
        consensus — the same certificate is announced to every other
        cluster so remote nodes update their primary table through an
        authenticated channel instead of trusting bare claims.
        """
        reports = self._reports.get(view, {})
        certificate = tuple(reports.values())
        self._enter_view(view)
        host = self.engine.host
        host.multicast_cluster(
            NewView(view=view, node=host.node_id, entries=(), certificate=certificate)
        )
        announce = getattr(host, "announce_new_view", None)
        if announce is not None:
            announce(view, certificate)

        # Determine what needs re-proposing: every slot up to the highest
        # slot any replica has heard of that this primary has not applied.
        # The scan is anchored on stable checkpoints: nothing at or below
        # the highest reported checkpoint is touched (those slots are
        # certified decided-and-applied cluster-wide), and a primary that
        # finds itself *behind* that anchor fetches the missing state
        # before it could mis-resolve slots it never saw.
        highest = host.log.next_slot - 1
        decided_digest: dict[int, str] = {}
        candidates: dict[int, Counter] = defaultdict(Counter)
        items_by_digest: dict[str, object] = {}
        reported_checkpoints: list[int] = []
        for report in reports.values():
            reported_checkpoints.append(report.checkpoint)
            for slot, digest in report.decided:
                highest = max(highest, slot)
                decided_digest[slot] = digest
            for slot, digest, item in report.accepted:
                highest = max(highest, slot)
                candidates[slot][digest] += 1
                items_by_digest[digest] = item

        # A reported checkpoint is only trusted once f + 1 replicas
        # attest at least that mark (the f+1-th largest value) — one
        # Byzantine replica inflating its ViewChange.checkpoint must not
        # be able to suppress re-proposal of live slots.  The local
        # low-water mark is always trusted: it was quorum-certified.
        reported_checkpoints.sort(reverse=True)
        faults = host.cluster.f
        attested = (
            reported_checkpoints[faults] if len(reported_checkpoints) > faults else 0
        )
        stable_floor = max(host.log.low_water_mark, attested)
        if stable_floor > host.log.next_apply - 1:
            transfer = getattr(host, "state_transfer", None)
            if transfer is not None:
                transfer.request_catch_up()

        spans_clusters = getattr(host, "spans_clusters", None)
        terminator = getattr(host, "terminator", None)
        for slot in range(max(host.log.next_apply, stable_floor + 1), highest + 1):
            entry = host.log.entry(slot)
            if entry is not None and entry.status is not EntryStatus.PENDING:
                continue
            if slot in decided_digest and decided_digest[slot] in items_by_digest:
                item = items_by_digest[decided_digest[slot]]
                if spans_clusters is not None and spans_clusters(item):
                    # Some replica reported this slot DECIDED as a
                    # cross-shard instance: its all-to-all commit (with
                    # the full position vector) is still in flight to
                    # us.  Re-proposing anything here — the item (which
                    # would intra-ize it) or a no-op — would conflict
                    # with that decision and fork correct replicas.
                    # Run a termination round to fetch the decision
                    # actively (the late commit remains a fallback).
                    if terminator is not None:
                        terminator.begin(slot, item, view)
                    continue
            else:
                if entry is not None:
                    item = entry.item
                elif candidates.get(slot):
                    best_digest, _ = candidates[slot].most_common(1)[0]
                    item = items_by_digest[best_digest]
                else:
                    item = Noop(reason=f"view-change-{view}-slot-{slot}")
                if spans_clusters is not None and spans_clusters(item):
                    # A merely *pending* cross-shard request must not be
                    # re-proposed through intra-shard consensus:
                    # committing it with a single-cluster position
                    # vector would execute only the local transfers and
                    # silently break cross-shard atomicity (money
                    # minted or lost).  A termination round checks the
                    # involved clusters for a commit quorum that formed
                    # just before this view change and adopts it —
                    # closing the race the immediate no-op fill used to
                    # run — and only no-op-fills the slot when no
                    # decision evidence exists anywhere.
                    if terminator is not None:
                        terminator.begin(slot, item, view)
                        continue
                    item = Noop(reason=f"view-change-{view}-cross-slot-{slot}")
            host.log.observe(slot)
            self.engine.propose_at(slot, item)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_slot_count(self) -> int:
        """Number of slots currently monitored by the commit timer."""
        return len(self._monitored)
