"""Primary-side request batching and bounded slot pipelining.

Without batching, every client request is proposed the moment it reaches
the primary: one consensus slot — one pre-prepare/accept signature, one
quorum-tracking entry, one apply-loop dispatch, one block — per
transaction.  Peak throughput is then bounded by that per-slot protocol
overhead, not by execution.  :class:`BatchPipeline` amortises it:

* **Batching** — requests arriving while the in-flight window is full
  queue at the primary; when a slot frees up, the backlog drains in
  chunks of up to ``ProtocolTuning.batch_size`` requests wrapped into a
  single :class:`~repro.consensus.messages.RequestBatch`, which flows
  through the unmodified intra-/cross-shard engines as one ordered item.
  A chunk of one proposes the bare request unwrapped, so lightly loaded
  clusters produce exactly the slots, digests, and blocks they produce
  today.
* **Pipelining** — up to ``ProtocolTuning.pipeline_depth`` batched slots
  may be in flight (proposed, not yet applied) concurrently; slot *k+1*
  gathers votes while *k* is still open, and the
  :class:`~repro.consensus.log.OrderingLog` applies strictly in slot
  order behind the window.

The pipeline is **armed only when** ``batch_size > 1``.  At the default
``batch_size = 1`` the replica never constructs one and every request
takes the pre-batching code path bit for bit — which is also why the
window is not enforced there: the legacy behaviour *is* an unbounded
pipeline of single-request slots, and retrofitting a binding window
would change every seed.

Window semantics at a view change (see also ``docs/consensus.md``): the
batcher's window and member index are replica-local bookkeeping, not
protocol state.  In-flight batches live in the ordering log and are
carried by :class:`~repro.consensus.messages.ViewChange` summaries like
any other pending item, so the new primary re-proposes or no-op-fills
them through the ordinary view-change path.  On view installation the
host resets its batcher (:meth:`BatchPipeline.on_view_installed`): the
window reopens, queued-but-unproposed requests are forwarded to the new
primary (or re-pumped, if this replica is the new primary), and the
member index is cleared — a member that ends up ordered twice across the
hand-off is skipped at apply time by the ledger's transaction index.

Causal tracing (``repro.obs.causal``): the ``seal`` phase a batch member
records is a leaf of the commit DAG — it annotates the member, it does
not re-root its chain.  A request sealed *inside the dispatch that frees
the window* is proposed within that dispatch's causal context, which
belongs to an *earlier* transaction's commit; the critical-path walk
clips there and charges the member a synthetic ``wait`` edge from its
submit to the seal — exactly the time the request spent queued behind
the window.  Deciding-vote bookkeeping is untouched by batching: the
batch flows through the intra-shard engines as one item, so the quorum
that decides the batch slot is the quorum recorded for every member.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common.types import ClusterId
from .log import item_digest
from .messages import ClientRequest, RequestBatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.replica import SharPerReplica

__all__ = [
    "BatchPipeline",
    "member_requests",
    "members_all_committed",
    "screen_members",
]


def member_requests(item: object) -> tuple[ClientRequest, ...]:
    """The client requests an ordered item carries (one, or a batch)."""
    if isinstance(item, RequestBatch):
        return item.requests
    if isinstance(item, ClientRequest):
        return (item,)
    return ()


def members_all_committed(chain, item: object) -> bool:
    """Whether every transaction of ``item`` is already in ``chain``.

    The batch-aware version of the engines' stale-duplicate checks: a
    batch is settled only if *all* its members committed — a partially
    committed batch must still be orderable so its remaining members
    commit (the applied-twice members are skipped at apply time).
    """
    contains = chain.contains_tx
    return all(contains(request.transaction.tx_id) for request in member_requests(item))


def screen_members(guard, item: object) -> int:
    """Worst :mod:`~repro.core.guard` verdict across an item's members.

    Cross-shard proposals are screened at every involved cluster; for a
    batch, *all* members must be admissible — a single forged or
    ownership-violating member poisons the whole batch (no correct node
    accepts it, so its quorum never forms and the honest members retry
    through a fresh batch after the initiator gives up).
    """
    from ..core.guard import ADMIT  # local import: core imports consensus

    worst = ADMIT
    for request in member_requests(item):
        verdict = guard.screen(request)
        if verdict != ADMIT:
            worst = max(worst, verdict)
    return worst


class BatchPipeline:
    """Accumulates client requests into batched, pipelined proposals.

    One instance per replica (constructed only when batching is armed);
    only the cluster primary ever holds queued state.  Intra-shard
    requests share one queue; cross-shard requests are queued per
    involved-cluster set so every batch spans exactly one set and flows
    through the cross-shard engines with a single position vector.
    """

    def __init__(self, host: "SharPerReplica") -> None:
        self.host = host
        tuning = host.tuning
        self.batch_size: int = max(1, tuning.batch_size)
        self.pipeline_depth: int = max(1, tuning.pipeline_depth)
        self._intra_queue: list[ClientRequest] = []
        self._cross_queues: dict[tuple[ClusterId, ...], list[ClientRequest]] = {}
        #: digests of member requests currently queued or in flight —
        #: the dedup index that keeps client retries from re-entering
        #: the pipeline while their original is still being ordered.
        self._members: set[str] = set()
        #: proposed-item digest → (involved set or None for intra,
        #: member digests) for window accounting and member release.
        self._in_flight: dict[str, tuple[tuple[ClusterId, ...] | None, tuple[str, ...]]] = {}
        self._intra_in_flight = 0
        self._cross_in_flight = 0
        # observability
        self.batches_proposed = 0
        self.singletons_proposed = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.peak_queue = 0
        self.view_resets = 0

    # ------------------------------------------------------------------
    # intake (primary only; callers route/forward before reaching here)
    # ------------------------------------------------------------------
    def knows(self, digest: str) -> bool:
        """Whether a request with this digest is queued or in flight."""
        return digest in self._members

    def submit_intra(self, request: ClientRequest) -> None:
        """Queue an intra-shard request and propose as the window allows."""
        if not self._admit(request):
            return
        self._intra_queue.append(request)
        self._note_queue_depth()
        self._pump_intra()

    def submit_cross(
        self, request: ClientRequest, involved: tuple[ClusterId, ...]
    ) -> None:
        """Queue a cross-shard request on its involved-set lane."""
        if not self._admit(request):
            return
        self._cross_queues.setdefault(involved, []).append(request)
        self._note_queue_depth()
        self._pump_cross(involved)

    def _admit(self, request: ClientRequest) -> bool:
        digest = item_digest(request)
        if digest in self._members:
            # Retry of a request already queued or riding an in-flight
            # batch: proposing it again would order (and commit) the
            # transaction twice.
            return False
        self._members.add(digest)
        return True

    def _note_queue_depth(self) -> None:
        depth = len(self._intra_queue) + sum(
            len(queue) for queue in self._cross_queues.values()
        )
        if depth > self.peak_queue:
            self.peak_queue = depth

    # ------------------------------------------------------------------
    # proposing
    # ------------------------------------------------------------------
    def _wrap(self, chunk: list[ClientRequest]) -> object:
        if len(chunk) == 1:
            # A queue of one proposes the bare request unwrapped: same
            # digest, same dedup behaviour, same block as the unbatched
            # path — batching only changes the wire format under load.
            self.singletons_proposed += 1
            return chunk[0]
        self.batches_proposed += 1
        self.batched_requests += len(chunk)
        if len(chunk) > self.max_batch:
            self.max_batch = len(chunk)
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for request in chunk:
                recorder.phase(now, request.transaction.tx_id, "seal", pid)
        return RequestBatch(requests=tuple(chunk))

    def _pump_intra(self) -> None:
        host = self.host
        if not host.is_cluster_primary:
            return
        queue = self._intra_queue
        while queue and self._intra_in_flight < self.pipeline_depth:
            chunk = queue[: self.batch_size]
            del queue[: self.batch_size]
            item = self._wrap(chunk)
            digest = item_digest(item)
            self._in_flight[digest] = (None, tuple(item_digest(r) for r in chunk))
            self._intra_in_flight += 1
            host.intra.submit(item)

    def _pump_cross(self, involved: tuple[ClusterId, ...]) -> None:
        host = self.host
        if not host.is_cluster_primary:
            return
        queue = self._cross_queues.get(involved)
        while queue and self._cross_in_flight < self.pipeline_depth:
            chunk = queue[: self.batch_size]
            del queue[: self.batch_size]
            item = self._wrap(chunk)
            digest = item_digest(item)
            self._in_flight[digest] = (involved, tuple(item_digest(r) for r in chunk))
            self._cross_in_flight += 1
            host.cross.start(item)
        if not queue:
            self._cross_queues.pop(involved, None)

    def _pump_all_cross(self) -> None:
        for involved in list(self._cross_queues):
            self._pump_cross(involved)

    # ------------------------------------------------------------------
    # window release
    # ------------------------------------------------------------------
    def item_applied(self, digest: str) -> None:
        """A proposed slot applied (or aborted): free its window entry.

        Called for *every* applied log entry on every replica; only the
        proposing primary has matching in-flight state, so elsewhere this
        is one failed dict lookup.
        """
        info = self._in_flight.pop(digest, None)
        if info is None:
            return
        involved, members = info
        self._members.difference_update(members)
        if involved is None:
            self._intra_in_flight -= 1
            self._pump_intra()
        else:
            self._cross_in_flight -= 1
            # The window is shared across involved-set lanes: the freed
            # slot must be offered to every lane, not just the one the
            # applied item came from — its own queue may be empty while
            # another lane is backed up.
            self._pump_all_cross()

    # ------------------------------------------------------------------
    # view changes
    # ------------------------------------------------------------------
    def on_view_installed(self) -> None:
        """Reset window bookkeeping after a view change.

        In-flight batches are protocol state — the view change carried
        them and the new primary re-proposes or no-op-fills their slots —
        so only the replica-local accounting resets here.  Queued
        requests were never proposed anywhere: if this replica is no
        longer primary they are forwarded to the new one (monitored, so
        a silent successor is suspected); if it *is* the new primary the
        queues re-pump into the fresh window.
        """
        self.view_resets += 1
        self._in_flight.clear()
        self._intra_in_flight = 0
        self._cross_in_flight = 0
        host = self.host
        if host.is_cluster_primary:
            self._pump_intra()
            self._pump_all_cross()
            return
        queued: list[ClientRequest] = list(self._intra_queue)
        self._intra_queue.clear()
        for lane in self._cross_queues.values():
            queued.extend(lane)
        self._cross_queues.clear()
        primary = host.primary_pid_of(host.cluster_id)
        for request in queued:
            self._members.discard(item_digest(request))
            host._monitor_forwarded_request(request)
            host._forward(request, primary)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counters for reporting (see ``RunStats``)."""
        return {
            "batches_proposed": self.batches_proposed,
            "singletons_proposed": self.singletons_proposed,
            "batched_requests": self.batched_requests,
            "max_batch": self.max_batch,
            "peak_queue": self.peak_queue,
            "view_resets": self.view_resets,
        }
