"""Intra-shard consensus for crash-only clusters (Paxos, Figure 3(a)).

The cluster primary receives client requests, assigns the next sequence
number (the role the hash of the previous block plays in the paper),
multicasts an ``accept`` to its backups, waits for ``f`` matching
``accepted`` replies (``f + 1`` votes counting itself — a majority of the
``2f + 1`` cluster), and multicasts a ``commit``.  Backups execute and
append once they receive the commit.

Consensus instances are pipelined over sequence numbers (Multi-Paxos
style); the ledger layer applies decided slots strictly in order, so the
chain every replica materialises is identical to the one the paper's
hash-chained formulation produces.
"""

from __future__ import annotations

from .base import ConsensusEngine, ConsensusHost, QuorumTracker
from .batching import member_requests
from .log import EntryStatus, item_digest
from .messages import NewView, PaxosAccept, PaxosAccepted, PaxosCommit, ViewChange
from .view_change import ViewChangeManager

__all__ = ["PaxosEngine"]


class PaxosEngine(ConsensusEngine):
    """Multi-Paxos ordering engine for one crash-only cluster."""

    HANDLERS = {
        PaxosAccept: "_on_accept",
        PaxosAccepted: "_on_accepted",
        PaxosCommit: "_on_commit",
        ViewChange: "_on_view_change_message",
        NewView: "_on_new_view_message",
    }

    def __init__(self, host: ConsensusHost) -> None:
        super().__init__(host)
        # f + 1 votes (counting the primary itself) decide a slot.
        self._accepted = QuorumTracker(host.cluster.f + 1)
        self.view_change = ViewChangeManager(self, quorum=host.cluster.f + 1)

    # ------------------------------------------------------------------
    # primary side
    # ------------------------------------------------------------------
    def submit(self, item: object) -> int | None:
        """Order ``item``; only the primary of the current view may call this."""
        if not self.is_primary:
            return None
        slot = self.host.log.allocate()
        self.propose_at(slot, item)
        return slot

    def propose_at(self, slot: int, item: object) -> None:
        """Propose ``item`` at an explicit slot (used by view changes too)."""
        digest = item_digest(item)
        self.host.log.record_pending(slot, digest, item, view=self.view, proposer=self.cluster_id)
        message = PaxosAccept(view=self.view, slot=slot, digest=digest, item=item)
        self.host.multicast_cluster(message)
        # The primary's own vote counts toward the f + 1 majority.
        fired = self._accepted.vote((self.view, slot, digest), self.host.node_id)
        self.view_change.monitor_slot(slot)
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            recorder.slot_open(now, pid, int(self.host.cluster.cluster_id), slot)
            for request in member_requests(item):
                recorder.phase(now, request.transaction.tx_id, "propose", pid)
            if recorder.causal_armed:
                recorder.quorum_vote(
                    now, pid, "accept", (self.view, slot, digest), pid, fired
                )

    # ------------------------------------------------------------------
    # message handling (table-driven; see HandlerTable.handle)
    # ------------------------------------------------------------------
    def _on_accept(self, message: PaxosAccept, src: int) -> None:
        if src != self.host.cluster.primary_for_view(message.view):
            return
        if message.view < self.view:
            return
        if message.view > self.view:
            # The cluster moved on without us; adopt the newer view.
            self.view = message.view
        try:
            self.host.log.record_pending(
                message.slot, message.digest, message.item, view=message.view,
                proposer=self.cluster_id,
            )
        except Exception:
            # The slot already holds a different digest; do not vote.
            return
        self.view_change.monitor_slot(message.slot)
        recorder = self.host.recorder
        if recorder is not None:
            recorder.slot_open(
                self.host.now, int(self.host.node_id),
                int(self.host.cluster.cluster_id), message.slot,
            )
        reply = PaxosAccepted(
            view=message.view, slot=message.slot, digest=message.digest, node=self.host.node_id
        )
        self.host.send_to(self.host.cluster.primary_for_view(message.view), reply)

    def _on_accepted(self, message: PaxosAccepted, src: int) -> None:
        if not self.is_primary or message.view != self.view:
            return
        key = (message.view, message.slot, message.digest)
        fired = self._accepted.vote(key, src)
        recorder = self.host.recorder
        if recorder is not None and recorder.causal_armed:
            recorder.quorum_vote(
                self.host.now, int(self.host.node_id), "accept", key, int(src), fired
            )
        if not fired:
            return
        entry = self.host.log.entry(message.slot)
        item = entry.item if entry is not None else None
        if item is None:
            return
        self.host.log.decide(
            message.slot, message.digest, item,
            proposer=self.cluster_id, view=message.view,
        )
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for request in member_requests(item):
                recorder.phase(now, request.transaction.tx_id, "decided", pid)
        self.view_change.slot_decided(message.slot)
        commit = PaxosCommit(
            view=message.view, slot=message.slot, digest=message.digest, item=item
        )
        self.host.multicast_cluster(commit)
        self.host.after_decide()

    def _on_commit(self, message: PaxosCommit, src: int) -> None:
        if src != self.host.cluster.primary_for_view(message.view):
            return
        self.host.log.decide(
            message.slot, message.digest, message.item,
            proposer=self.cluster_id, view=message.view,
        )
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for request in member_requests(message.item):
                recorder.phase(now, request.transaction.tx_id, "decided", pid)
        self.view_change.slot_decided(message.slot)
        self.host.after_decide()

    # ------------------------------------------------------------------
    # checkpoint compaction (repro.recovery)
    # ------------------------------------------------------------------
    def compact_below(self, slot: int) -> None:
        """Drop accepted-vote bookkeeping covered by a stable checkpoint."""
        self._accepted.drop(lambda key: key[1] <= slot)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def undecided_count(self) -> int:
        """Number of slots accepted but not yet decided at this replica."""
        return sum(
            1
            for entry in self.host.log.entries()
            if entry.status is EntryStatus.PENDING
        )
