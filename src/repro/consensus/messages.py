"""Protocol message types.

Message classes double as the unit of CPU accounting: the simulator's
cost model charges signature verification per ``verify_signatures`` and
signing per ``sign_signatures``.  Crash-only protocol messages carry no
signatures ("since all nodes in the system are crash-only nodes, there is
no need to sign messages", Section 3.2); Byzantine protocol messages are
signed, as in Algorithms 2 and PBFT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from ..common.types import ClientId, ClusterId, NodeId
from ..txn.transaction import Transaction

__all__ = [
    "ClientRequest",
    "ClientReply",
    "PaxosAccept",
    "PaxosAccepted",
    "PaxosCommit",
    "PrePrepare",
    "Prepare",
    "PBFTCommit",
    "ViewChange",
    "NewView",
    "CrossPropose",
    "CrossAccept",
    "CrossCommit",
    "CrossProposeB",
    "CrossAcceptB",
    "CrossCommitB",
    "PassiveUpdate",
]


@dataclass(frozen=True)
class ClientRequest:
    """``⟨REQUEST, tx, τ_c, c⟩σ_c`` — a signed client request.

    ``reply_to`` is the network address (process id) of the submitting
    client process, so that every replica that executes the transaction
    can send its reply.
    """

    transaction: Transaction
    client: ClientId
    timestamp: float
    reply_to: int = -1

    #: replicas verify the client signature once.
    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True)
class ClientReply:
    """Reply sent back to the client once its transaction is executed."""

    tx_id: str
    node: NodeId
    cluster: ClusterId
    view: int
    success: bool
    cross_shard: bool = False

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


# ----------------------------------------------------------------------
# Intra-shard consensus, crash failure model (Paxos, Figure 3a)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PaxosAccept:
    """Primary → backups: accept ``item`` at ``slot`` (carries ``H(t)``)."""

    view: int
    slot: int
    digest: str
    item: object

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True)
class PaxosAccepted:
    """Backup → primary: acknowledgement of an accept message."""

    view: int
    slot: int
    digest: str
    node: NodeId

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True)
class PaxosCommit:
    """Primary → backups: ``slot`` is decided; execute and append."""

    view: int
    slot: int
    digest: str
    item: object

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


# ----------------------------------------------------------------------
# Intra-shard consensus, Byzantine failure model (PBFT, Figure 3b)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrePrepare:
    """Primary → backups: signed pre-prepare for ``slot``."""

    view: int
    slot: int
    digest: str
    item: object

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True)
class Prepare:
    """Replica → replicas: signed prepare matching a pre-prepare."""

    view: int
    slot: int
    digest: str
    node: NodeId

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True)
class PBFTCommit:
    """Replica → replicas: signed commit for ``slot``."""

    view: int
    slot: int
    digest: str
    node: NodeId

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


# ----------------------------------------------------------------------
# View change (shared by both intra-shard protocols)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ViewChange:
    """Replica → replicas: the sender suspects the primary of ``view - 1``.

    ``decided`` and ``accepted`` summarise the sender's log so the new
    primary can re-propose undecided slots.
    """

    new_view: int
    node: NodeId
    decided: tuple[tuple[int, str], ...]
    accepted: tuple[tuple[int, str, object], ...] = ()

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True)
class NewView:
    """New primary → replicas: install ``view`` and re-propose ``entries``."""

    view: int
    node: NodeId
    entries: tuple[tuple[int, object], ...]

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


# ----------------------------------------------------------------------
# Cross-shard consensus, crash failure model (Algorithm 1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrossPropose:
    """Initiator primary → nodes of every involved cluster (``PROPOSE``).

    ``request`` is the full client request being ordered; ``initiator_slot``
    is the position the initiator cluster reserves for the transaction (the
    ``h_i`` reference of Algorithm 1).
    """

    digest: str
    request: object
    involved: tuple[ClusterId, ...]
    initiator_cluster: ClusterId
    initiator_slot: int
    attempt: int = 0

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True)
class CrossAccept:
    """Node of an involved cluster → initiator primary (``ACCEPT``).

    The ``slot`` field is the position the sender's cluster reserves for
    the transaction (the role played by ``h_j`` in the paper); it is set
    by the cluster primary and echoed by backups once known.
    """

    digest: str
    cluster: ClusterId
    node: NodeId
    slot: int | None
    attempt: int = 0

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True)
class CrossCommit:
    """Initiator primary → nodes of every involved cluster (``COMMIT``).

    Carries the full agreed position vector (the ``h_i, h_j, h_k, ...``
    collected from the accept messages in the paper).
    """

    digest: str
    request: object
    positions: tuple[tuple[ClusterId, int], ...]
    proposer: ClusterId
    attempt: int = 0

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


# ----------------------------------------------------------------------
# Cross-shard consensus, Byzantine failure model (Algorithm 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrossProposeB:
    """Signed ``PROPOSE`` multicast by the initiator primary."""

    digest: str
    request: object
    involved: tuple[ClusterId, ...]
    initiator_cluster: ClusterId
    initiator_slot: int
    attempt: int = 0

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True)
class CrossAcceptB:
    """Signed ``ACCEPT`` multicast by every node of every involved cluster."""

    digest: str
    cluster: ClusterId
    node: NodeId
    slot: int | None
    attempt: int = 0

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True)
class CrossCommitB:
    """Signed ``COMMIT`` multicast by every node of every involved cluster."""

    digest: str
    cluster: ClusterId
    node: NodeId
    positions: tuple[tuple[ClusterId, int], ...]
    attempt: int = 0

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


# ----------------------------------------------------------------------
# Active/passive replication support
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PassiveUpdate:
    """Active replica → passive replicas: execution result notification."""

    slot: int
    digest: str
    item: object

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0
