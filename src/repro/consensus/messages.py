"""Protocol message types.

Message classes double as the unit of CPU accounting: the simulator's
cost model charges signature verification per ``verify_signatures`` and
signing per ``sign_signatures``.  Crash-only protocol messages carry no
signatures ("since all nodes in the system are crash-only nodes, there is
no need to sign messages", Section 3.2); Byzantine protocol messages are
signed, as in Algorithms 2 and PBFT.

Performance model & parallel execution
--------------------------------------
Every message is a *frozen* dataclass, and that immutability is load-
bearing for the hot path:

* one payload object is shared by all destinations of a multicast
  (:meth:`repro.sim.network.Network.multicast`) — receivers must never
  mutate a message;
* digests are memoised on the instance by
  :func:`repro.consensus.log.item_digest`; :class:`ClientRequest` — the
  only message type that gets digested as an ordered item — therefore
  keeps its ``__dict__`` (the cache lives there), while every other
  message type is declared with ``slots=True`` to make the per-message
  allocation as small as possible;
* protocol dispatch is keyed on the concrete class (the per-engine
  ``HANDLERS`` tables, merged into each replica's process-level table at
  construction), so a delivered message is routed with a single dict
  lookup — do not subclass message types expecting ``isinstance``-style
  routing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import ClassVar

from ..common.crypto import Signature
from ..common.types import ClientId, ClusterId, NodeId
from ..txn.transaction import Transaction

__all__ = [
    "ClientRequest",
    "RequestBatch",
    "ClientReply",
    "PaxosAccept",
    "PaxosAccepted",
    "PaxosCommit",
    "PrePrepare",
    "Prepare",
    "PBFTCommit",
    "ViewChange",
    "NewView",
    "NewViewAnnouncement",
    "CrossPropose",
    "CrossAccept",
    "CrossCommit",
    "CrossProposeB",
    "CrossAcceptB",
    "CrossCommitB",
    "PassiveUpdate",
]


@dataclass(frozen=True)
class ClientRequest:
    """``⟨REQUEST, tx, τ_c, c⟩σ_c`` — a signed client request.

    ``reply_to`` is the network address (process id) of the submitting
    client process, so that every replica that executes the transaction
    can send its reply.
    """

    transaction: Transaction
    client: ClientId
    timestamp: float
    reply_to: int = -1

    #: replicas verify the client signature once.
    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 0

    def payload_digest(self) -> str:
        """Digest of the request, memoised on the (immutable) instance.

        Built from the transaction's cached payload digest plus the
        request scalars, so ordering a request never re-canonicalises the
        transaction body.  Two requests with equal fields digest equally,
        which is what the cross-shard engines' duplicate detection needs
        across client retries.
        """
        cached = self.__dict__.get("_item_digest")
        if cached is None:
            cached = hashlib.sha256(
                (
                    f"CR|{self.transaction.payload_digest()}|{int(self.client)}"
                    f"|{self.timestamp!r}|{self.reply_to}"
                ).encode()
            ).hexdigest()
            object.__setattr__(self, "_item_digest", cached)
        return cached


@dataclass(frozen=True)
class RequestBatch:
    """An ordered batch of client requests proposed as one consensus item.

    Built only by the primary-side batching pipeline
    (:class:`~repro.consensus.batching.BatchPipeline`, armed when
    ``ProtocolTuning.batch_size > 1``).  One batch costs one signature,
    one quorum-tracking entry, and one apply-loop dispatch regardless of
    how many member requests it carries; the member requests keep their
    individual per-transaction semantics (guard screening, replies, and
    at-most-once execution are all per member).

    Like :class:`ClientRequest` — the other message type ordered as a
    log item — the class keeps its ``__dict__`` so
    :func:`repro.consensus.log.item_digest` can memoise the batch digest
    on the instance; the digest chains the members' (themselves
    memoised) request digests, so digesting a batch never
    re-canonicalises a transaction body.
    """

    requests: tuple[ClientRequest, ...]

    #: the batch rides inside one pre-prepare/accept: one signature per
    #: batch, which is precisely the amortisation batching buys.
    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 0

    @property
    def transaction(self) -> Transaction:
        """Representative transaction used for routing decisions.

        Members of a batch are grouped by involved-cluster set before
        batching (the pipeline keeps one queue per set), so the first
        member answers "which clusters does this item touch" and "which
        cluster initiates it" for the whole batch.  Per-transaction
        logic (execution, replies, dedup) must iterate ``requests``
        instead of using this.
        """
        return self.requests[0].transaction

    def payload_digest(self) -> str:
        """Digest of the batch, memoised on the (immutable) instance."""
        cached = self.__dict__.get("_item_digest")
        if cached is None:
            hasher = hashlib.sha256(b"RB")
            for request in self.requests:
                hasher.update(b"|")
                hasher.update(request.payload_digest().encode())
            cached = hasher.hexdigest()
            object.__setattr__(self, "_item_digest", cached)
        return cached


@dataclass(frozen=True, slots=True)
class ClientReply:
    """Reply sent back to the client once its transaction is executed."""

    tx_id: str
    node: NodeId
    cluster: ClusterId
    view: int
    success: bool
    cross_shard: bool = False

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


# ----------------------------------------------------------------------
# Intra-shard consensus, crash failure model (Paxos, Figure 3a)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PaxosAccept:
    """Primary → backups: accept ``item`` at ``slot`` (carries ``H(t)``)."""

    view: int
    slot: int
    digest: str
    item: object

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True, slots=True)
class PaxosAccepted:
    """Backup → primary: acknowledgement of an accept message."""

    view: int
    slot: int
    digest: str
    node: NodeId

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True, slots=True)
class PaxosCommit:
    """Primary → backups: ``slot`` is decided; execute and append."""

    view: int
    slot: int
    digest: str
    item: object

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


# ----------------------------------------------------------------------
# Intra-shard consensus, Byzantine failure model (PBFT, Figure 3b)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PrePrepare:
    """Primary → backups: signed pre-prepare for ``slot``."""

    view: int
    slot: int
    digest: str
    item: object

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class Prepare:
    """Replica → replicas: signed prepare matching a pre-prepare."""

    view: int
    slot: int
    digest: str
    node: NodeId

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class PBFTCommit:
    """Replica → replicas: signed commit for ``slot``."""

    view: int
    slot: int
    digest: str
    node: NodeId

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


# ----------------------------------------------------------------------
# View change (shared by both intra-shard protocols)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ViewChange:
    """Replica → replicas: the sender suspects the primary of ``view - 1``.

    ``decided`` and ``accepted`` summarise the sender's log so the new
    primary can re-propose undecided slots.  ``checkpoint`` anchors the
    summary: it is the sender's stable-checkpoint low-water mark, every
    summarised slot lies above it, and the new primary never re-proposes
    at or below the highest reported checkpoint (slots there are
    certified decided-and-applied cluster-wide) — which is also what
    keeps view-change messages bounded once log compaction runs.

    ``signature`` binds the vote to its sender beyond the pairwise
    channel authentication: view-change messages are *relayed* inside
    :class:`NewView` / :class:`NewViewAnnouncement` certificates, where
    the receiver never talked to the original sender, so the claimed
    ``node`` must be verifiable from the message itself.  A Byzantine
    node cannot produce a valid signature of a correct node (it can only
    fabricate ``forged`` signatures, which never verify).
    """

    new_view: int
    node: NodeId
    decided: tuple[tuple[int, str], ...]
    accepted: tuple[tuple[int, str, object], ...] = ()
    checkpoint: int = 0
    signature: Signature | None = None

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class NewView:
    """New primary → replicas: install ``view`` and re-propose ``entries``.

    ``certificate`` carries the quorum of signed :class:`ViewChange`
    votes (``2f + 1`` in the Byzantine model, ``f + 1`` under crash
    faults) that elected this primary.  Backups verify the certificate —
    distinct cluster members, matching ``new_view``, valid signatures —
    before adopting the view, so a Byzantine replica cannot self-elect
    by inflating view numbers (the ``forged-view`` adversary behaviour).
    """

    view: int
    node: NodeId
    entries: tuple[tuple[int, object], ...]
    certificate: tuple[ViewChange, ...] = ()

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class NewViewAnnouncement:
    """New primary → nodes of every *other* cluster: authenticated fail-over.

    Cross-shard consensus needs every node to know which node currently
    speaks for each remote cluster (proposals from anyone else are
    dropped).  Rather than trusting a bare claim — exactly the forged
    view surface the certificate closes locally — the new primary
    multicasts the same ``2f + 1`` (``f + 1`` crash) signed view-change
    certificate cluster-wide; receivers verify it against the announced
    cluster's membership before updating their remote-primary table.
    """

    cluster: ClusterId
    view: int
    node: NodeId
    certificate: tuple[ViewChange, ...]

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


# ----------------------------------------------------------------------
# Cross-shard consensus, crash failure model (Algorithm 1)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CrossPropose:
    """Initiator primary → nodes of every involved cluster (``PROPOSE``).

    ``request`` is the full client request being ordered; ``initiator_slot``
    is the position the initiator cluster reserves for the transaction (the
    ``h_i`` reference of Algorithm 1).
    """

    digest: str
    request: object
    involved: tuple[ClusterId, ...]
    initiator_cluster: ClusterId
    initiator_slot: int
    attempt: int = 0

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True, slots=True)
class CrossAccept:
    """Node of an involved cluster → initiator primary (``ACCEPT``).

    The ``slot`` field is the position the sender's cluster reserves for
    the transaction (the role played by ``h_j`` in the paper); it is set
    by the cluster primary and echoed by backups once known.
    """

    digest: str
    cluster: ClusterId
    node: NodeId
    slot: int | None
    attempt: int = 0

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True, slots=True)
class CrossCommit:
    """Initiator primary → nodes of every involved cluster (``COMMIT``).

    Carries the full agreed position vector (the ``h_i, h_j, h_k, ...``
    collected from the accept messages in the paper).
    """

    digest: str
    request: object
    positions: tuple[tuple[ClusterId, int], ...]
    proposer: ClusterId
    attempt: int = 0

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


# ----------------------------------------------------------------------
# Cross-shard consensus, Byzantine failure model (Algorithm 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CrossProposeB:
    """Signed ``PROPOSE`` multicast by the initiator primary."""

    digest: str
    request: object
    involved: tuple[ClusterId, ...]
    initiator_cluster: ClusterId
    initiator_slot: int
    attempt: int = 0

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class CrossAcceptB:
    """Signed ``ACCEPT`` multicast by every node of every involved cluster."""

    digest: str
    cluster: ClusterId
    node: NodeId
    slot: int | None
    attempt: int = 0

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class CrossCommitB:
    """Signed ``COMMIT`` multicast by every node of every involved cluster."""

    digest: str
    cluster: ClusterId
    node: NodeId
    positions: tuple[tuple[ClusterId, int], ...]
    attempt: int = 0

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


# ----------------------------------------------------------------------
# Active/passive replication support
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PassiveUpdate:
    """Active replica → passive replicas: execution result notification."""

    slot: int
    digest: str
    item: object

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0
