"""Baseline systems the paper compares against: APR, FPaxos, FaB, AHL."""

from .ahl import AHLReplica, AHLSystem, ReferenceCommitteeReplica
from .single_group import (
    ActivePassiveSystem,
    FaBEngine,
    FastConsensusSystem,
    FastPaxosEngine,
    PassiveReplica,
    SingleGroupReplica,
)

__all__ = [
    "AHLReplica",
    "AHLSystem",
    "ActivePassiveSystem",
    "FaBEngine",
    "FastConsensusSystem",
    "FastPaxosEngine",
    "PassiveReplica",
    "ReferenceCommitteeReplica",
    "SingleGroupReplica",
]
