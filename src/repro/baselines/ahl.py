"""AHL-C / AHL-B: the reference-committee sharded baseline [21].

AHL (Dang et al., SIGMOD 2019) shards the nodes like SharPer but orders
cross-shard transactions through a dedicated *reference committee* (RC)
that runs two-phase commit on top of per-shard consensus:

1. the client sends the cross-shard transaction to the RC;
2. the RC orders a *prepare* decision through its own consensus protocol
   and sends prepare requests to every involved cluster;
3. each involved cluster orders the prepare through its intra-shard
   consensus and votes back to the RC;
4. the RC orders the *commit/abort* decision through its own consensus
   and sends it to the involved clusters;
5. each involved cluster orders the commit through its intra-shard
   consensus, executes the transaction, and replies.

Following the paper's evaluation setup, AHL-C/AHL-B use exactly the same
intra-shard protocol as SharPer (Paxos/PBFT); only the cross-shard path
differs.  Because a single RC orders *all* cross-shard transactions and
each step requires a full consensus round, cross-shard throughput is
bounded by the RC and cross-shard latency is much higher than SharPer's
three flattened phases — the effect Figures 6 and 7 quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar

from ..api.registry import register_system
from ..common.config import ClusterConfig, SystemConfig
from ..common.types import ClientId, ClusterId, FaultModel, NodeId
from ..consensus.log import OrderingLog, item_digest
from ..consensus.messages import ClientReply, ClientRequest
from ..consensus.paxos import PaxosEngine
from ..consensus.pbft import PBFTEngine
from ..core.replica import SharPerReplica
from ..core.system import BaseSystem
from ..core import sharding
from ..ledger.block import Block
from ..ledger.view import ClusterView
from ..sim.process import Process
from ..txn.accounts import AccountStore
from ..txn.transaction import Transaction
from ..txn.workload import WorkloadConfig

__all__ = ["AHLSystem", "AHLReplica", "ReferenceCommitteeReplica"]


# ----------------------------------------------------------------------
# 2PC protocol messages and ordered markers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrepareMarker:
    """Ordered by an involved cluster: lock/validate the cross-shard tx."""

    request: ClientRequest
    phase: str = "prepare"


@dataclass(frozen=True)
class CommitMarker:
    """Ordered by an involved cluster: execute and append the cross-shard tx."""

    request: ClientRequest
    phase: str = "commit"


@dataclass(frozen=True)
class RCOrderMarker:
    """Ordered by the reference committee: a 2PC step decision."""

    request: ClientRequest
    phase: str  # "prepare" or "commit"


@dataclass(frozen=True)
class AHLPrepareRequest:
    """RC primary → involved cluster primary: please prepare the transaction."""

    request: ClientRequest
    digest: str

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True)
class AHLVote:
    """Involved cluster primary → RC primary: prepare vote."""

    digest: str
    cluster: ClusterId
    vote: bool

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


@dataclass(frozen=True)
class AHLCommitRequest:
    """RC primary → involved cluster primary: commit (or abort) the transaction."""

    request: ClientRequest
    digest: str
    commit: bool

    verify_signatures: ClassVar[int] = 0
    sign_signatures: ClassVar[int] = 0


# ----------------------------------------------------------------------
# shard replicas
# ----------------------------------------------------------------------
class AHLReplica(SharPerReplica):
    """A shard replica of AHL.

    Intra-shard transactions follow the same path as SharPer.  Cross-shard
    client requests are redirected to the reference committee, and the
    replica additionally orders the RC-driven prepare/commit markers
    through its intra-shard consensus engine.
    """

    def __init__(self, *args, rc_primary_pid: int, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rc_primary_pid = rc_primary_pid
        self.prepared: set[str] = set()
        self.register_handler(AHLPrepareRequest, self._on_prepare_request)
        self.register_handler(AHLCommitRequest, self._on_commit_request)

    # Cross-shard client requests belong to the reference committee.
    def _handle_cross_request(self, request: ClientRequest, involved) -> None:
        self.send(self.rc_primary_pid, request)

    def _on_prepare_request(self, message: AHLPrepareRequest, src: int) -> None:
        if self.is_cluster_primary:
            self.intra.submit(PrepareMarker(request=message.request))

    def _on_commit_request(self, message: AHLCommitRequest, src: int) -> None:
        if self.is_cluster_primary and message.commit:
            self.intra.submit(CommitMarker(request=message.request))

    def on_marker_applied(self, entry, positions, parents, proposer) -> None:
        item = entry.item
        if isinstance(item, PrepareMarker):
            # The prepare only reserves the slot; it leaves no transaction
            # in the chain.  The primary votes back to the RC.
            self.chain.append(Block.noop(positions, proposer=proposer, parents=parents))
            self.prepared.add(item_digest(item.request))
            if self.is_cluster_primary:
                vote = AHLVote(
                    digest=item_digest(item.request), cluster=self.cluster_id, vote=True
                )
                self.send(self.rc_primary_pid, vote)
            return
        if isinstance(item, CommitMarker):
            transaction = item.request.transaction
            self.charge(self.cost_model.execution_cost)
            result = self.executor.execute(transaction)
            if not result.success:
                self.failed_executions += 1
            block = Block.create(transaction, positions, proposer=proposer, parents=parents)
            self.chain.append(block)
            self.committed_count += 1
            self.committed_cross_count += 1
            if self._should_reply_cross():
                self._send_reply(item.request, success=result.success, cross_shard=True)
            return
        super().on_marker_applied(entry, positions, parents, proposer)

    def _should_reply_cross(self) -> bool:
        if self.cluster.fault_model is FaultModel.BYZANTINE:
            return True
        return self.is_cluster_primary


# ----------------------------------------------------------------------
# reference committee
# ----------------------------------------------------------------------
@dataclass
class _RC2PCState:
    """Coordinator-side state of one cross-shard transaction."""

    request: ClientRequest
    involved: tuple[ClusterId, ...]
    votes: set[ClusterId] = field(default_factory=set)
    prepare_sent: bool = False
    commit_sent: bool = False


class ReferenceCommitteeReplica(Process):
    """A member of AHL's reference committee.

    The committee orders every 2PC step (prepare decision, commit
    decision) through its own consensus protocol; its primary acts as the
    two-phase-commit coordinator towards the involved clusters.
    """

    def __init__(
        self,
        node_id: NodeId,
        committee: ClusterConfig,
        config: SystemConfig,
        mapper,
        sim,
        network,
        cost_model,
    ) -> None:
        super().__init__(int(node_id), sim, network, cost_model, name=f"rc-{node_id}")
        self.node_id = node_id
        self.cluster = committee
        self.config = config
        self.mapper = mapper
        self.tuning = config.tuning
        self.log = OrderingLog(committee.cluster_id)
        self.chain = ClusterView(committee.cluster_id)
        if committee.fault_model is FaultModel.CRASH:
            self.intra = PaxosEngine(self)
        else:
            self.intra = PBFTEngine(self)
        self._states: dict[str, _RC2PCState] = {}
        self.coordinated = 0
        self.register_handler(ClientRequest, self._on_client_request)
        self.register_handler(AHLVote, self._on_vote)
        self.register_handlers(self.intra.handlers())

    # ------------------------------------------------------------------
    # ConsensusHost interface
    # ------------------------------------------------------------------
    @property
    def cluster_id(self) -> ClusterId:
        return self.cluster.cluster_id

    @property
    def view_change_timeout(self) -> float:
        return self.tuning.view_change_timeout

    def multicast_cluster(self, message: object) -> None:
        self.multicast([int(node) for node in self.cluster.node_ids], message)

    def send_to(self, node_id: int, message: object) -> None:
        self.send(int(node_id), message)

    # ------------------------------------------------------------------
    # message handling (table-driven; see Process.on_message)
    # ------------------------------------------------------------------
    def _on_client_request(self, request: ClientRequest, src: int) -> None:
        if request.reply_to < 0:
            request = replace(request, reply_to=src)
        if not self.intra.is_primary:
            self.send(int(self.cluster.primary_for_view(self.intra.view)), request)
            return
        digest = item_digest(request)
        if digest in self._states:
            return
        involved = sharding.involved_clusters(request.transaction, self.mapper)
        self._states[digest] = _RC2PCState(request=request, involved=involved)
        # Step 1: the RC orders the prepare decision among its members.
        self.intra.submit(RCOrderMarker(request=request, phase="prepare"))

    def _on_vote(self, message: AHLVote, src: int) -> None:
        state = self._states.get(message.digest)
        if state is None or not self.intra.is_primary:
            return
        if message.vote:
            state.votes.add(message.cluster)
        if state.commit_sent or set(state.involved) - state.votes:
            return
        # Step 3: all involved clusters voted yes — order the commit decision.
        state.commit_sent = True
        self.intra.submit(RCOrderMarker(request=state.request, phase="commit"))

    # ------------------------------------------------------------------
    # applying RC decisions
    # ------------------------------------------------------------------
    def after_decide(self) -> None:
        for entry in self.log.pop_applicable():
            self._apply(entry)

    def _apply(self, entry) -> None:
        positions = {self.cluster_id: entry.slot}
        parents = {self.cluster_id: self.chain.head_hash}
        self.charge(self.cost_model.append_cost)
        item = entry.item
        if not isinstance(item, RCOrderMarker):
            self.chain.append(Block.noop(positions, proposer=self.cluster_id, parents=parents))
            return
        # The RC's own chain records every 2PC decision as a no-op block
        # (it stores no application data).
        self.chain.append(Block.noop(positions, proposer=self.cluster_id, parents=parents))
        if not self.intra.is_primary:
            return
        digest = item_digest(item.request)
        state = self._states.get(digest)
        if state is None:
            return
        if item.phase == "prepare" and not state.prepare_sent:
            state.prepare_sent = True
            for cluster in state.involved:
                self.send(
                    int(self.config.cluster(cluster).primary),
                    AHLPrepareRequest(request=item.request, digest=digest),
                )
        elif item.phase == "commit":
            self.coordinated += 1
            for cluster in state.involved:
                self.send(
                    int(self.config.cluster(cluster).primary),
                    AHLCommitRequest(request=item.request, digest=digest, commit=True),
                )


# ----------------------------------------------------------------------
# the full AHL system
# ----------------------------------------------------------------------
@register_system("ahl")
class AHLSystem(BaseSystem):
    """AHL-C / AHL-B: SharPer's clusters plus a reference committee."""

    #: cluster id used for the reference committee (after the data clusters).
    RC_CLUSTER_OFFSET = 1000

    def __init__(
        self,
        config: SystemConfig,
        workload_config: WorkloadConfig,
        seed: int | None = None,
    ) -> None:
        super().__init__(config, workload_config, seed)
        f = config.clusters[0].f
        committee_size = config.fault_model.min_cluster_size(f)
        first_rc_pid = max(int(node) for node in config.all_node_ids) + 1
        self.committee = ClusterConfig(
            cluster_id=ClusterId(config.num_clusters + self.RC_CLUSTER_OFFSET),
            node_ids=tuple(NodeId(first_rc_pid + index) for index in range(committee_size)),
            fault_model=config.fault_model,
            f=f,
        )
        # The reference committee is its own cluster in the latency topology:
        # RC-internal links are intra-cluster, RC-to-shard links are
        # cross-cluster (the RC is a separate set of nodes in AHL).
        self.latency_model.cluster_of.update(
            {int(node): int(self.committee.cluster_id) for node in self.committee.node_ids}
        )
        rc_primary_pid = int(self.committee.primary)
        self.replicas: dict[int, AHLReplica] = {}
        for cluster in config.clusters:
            shard = sharding.cluster_to_shard(cluster.cluster_id)
            for node in cluster.node_ids:
                store = self._bootstrap_store(self.workload_mapper, shard)
                self.replicas[int(node)] = AHLReplica(
                    node_id=node,
                    cluster=cluster,
                    config=config,
                    mapper=self.workload_mapper,
                    store=store,
                    sim=self.sim,
                    network=self.network,
                    cost_model=self.cost_model,
                    rc_primary_pid=rc_primary_pid,
                )
        self.committee_replicas: dict[int, ReferenceCommitteeReplica] = {}
        for node in self.committee.node_ids:
            self.committee_replicas[int(node)] = ReferenceCommitteeReplica(
                node_id=node,
                committee=self.committee,
                config=config,
                mapper=self.workload_mapper,
                sim=self.sim,
                network=self.network,
                cost_model=self.cost_model,
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return "AHL-C" if self.config.fault_model is FaultModel.CRASH else "AHL-B"

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, transaction: Transaction) -> int:
        involved = sharding.involved_clusters(transaction, self.workload_mapper)
        if len(involved) == 1:
            return int(self.config.cluster(involved[0]).primary)
        return int(self.committee.primary)

    def fallback_route(self, transaction: Transaction, attempt: int) -> int:
        involved = sharding.involved_clusters(transaction, self.workload_mapper)
        if len(involved) == 1:
            nodes = self.config.cluster(involved[0]).node_ids
        else:
            nodes = self.committee.node_ids
        return int(nodes[attempt % len(nodes)])

    @property
    def required_replies(self) -> int:
        if self.config.fault_model is FaultModel.CRASH:
            return 1
        return self.config.clusters[0].f + 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def processes(self) -> list[Process]:
        return list(self.replicas.values()) + list(self.committee_replicas.values())

    def views(self) -> dict[ClusterId, ClusterView]:
        result: dict[ClusterId, ClusterView] = {}
        for cluster in self.config.clusters:
            replicas = [
                self.replicas[int(node)] for node in cluster.node_ids
            ]
            best = max(replicas, key=lambda replica: replica.chain.height)
            result[cluster.cluster_id] = best.chain
        return result

    def stores(self) -> list[AccountStore]:
        stores = []
        for cluster in self.config.clusters:
            replicas = [self.replicas[int(node)] for node in cluster.node_ids]
            best = max(replicas, key=lambda replica: replica.chain.height)
            stores.append(best.store)
        return stores

    def reference_committee_primary(self) -> ReferenceCommitteeReplica:
        """The RC coordinator replica."""
        return self.committee_replicas[int(self.committee.primary)]
