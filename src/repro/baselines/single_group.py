"""Non-sharded baselines: APR-C/APR-B, FPaxos, and FaB.

The paper compares SharPer against the two standard ways of exploiting
extra nodes without sharding (Section 4):

* **active/passive replication** (APR-C for crash, APR-B for Byzantine):
  only ``2f + 1`` (or ``3f + 1``) *active* replicas run consensus and
  execute transactions; the remaining nodes are *passive* replicas that
  merely receive execution results.
* **fast consensus** (FPaxos for crash, FaB for Byzantine): ``3f + 1``
  (or ``5f + 1``) replicas are used to commit in one fewer communication
  phase than Paxos/PBFT.

None of these systems shard the data, so every transaction — intra- or
cross-shard under SharPer's partitioning — is ordered by the single
replica group; their performance is therefore insensitive to the
cross-shard percentage, which is exactly the behaviour Figures 6 and 7
show.

The fast engines model the phase reduction: replicas execute as soon as
they accept the leader's proposal and the leader replies after collecting
the (larger) fast quorum, eliminating the explicit commit phase.  This
reproduces the latency/throughput profile of Fast Paxos [34] and FaB [40]
in fault-free runs, which is all the paper's evaluation exercises.
"""

from __future__ import annotations

from dataclasses import replace

from ..api.registry import register_system
from ..common.config import ClusterConfig, SystemConfig
from ..common.errors import ConfigurationError
from ..common.types import ClusterId, FaultModel, NodeId
from ..consensus.log import Noop, OrderingLog
from ..consensus.messages import (
    ClientReply,
    ClientRequest,
    PassiveUpdate,
    PaxosAccept,
    PaxosAccepted,
    PrePrepare,
)
from ..consensus.paxos import PaxosEngine
from ..consensus.pbft import PBFTEngine
from ..core.system import BaseSystem
from ..ledger.block import Block
from ..ledger.view import ClusterView
from ..sim.process import Process
from ..txn.accounts import AccountStore, ShardMapper
from ..txn.execution import TransactionExecutor
from ..txn.transaction import Transaction
from ..txn.workload import WorkloadConfig

__all__ = [
    "FastPaxosEngine",
    "FaBEngine",
    "SingleGroupReplica",
    "PassiveReplica",
    "ActivePassiveSystem",
    "FastConsensusSystem",
]


class FastPaxosEngine(PaxosEngine):
    """Fast Paxos [34]: ``3f + 1`` acceptors, one fewer phase than Paxos.

    Backups execute optimistically when they accept; the leader decides
    after a fast quorum of ``2f + 1`` accepted messages and replies
    without multicasting a separate commit.
    """

    def __init__(self, host) -> None:
        super().__init__(host)
        # Fast quorum: 2f + 1 out of 3f + 1 acceptors.
        self._accepted.threshold = 2 * host.cluster.f + 1

    def propose_at(self, slot: int, item: object) -> None:
        super().propose_at(slot, item)
        # The fast path saves one message delay: the leader executes and
        # replies speculatively while the acceptors' answers are in flight
        # (they are still collected and would trigger recovery on a
        # mismatch in a deployment with failures).
        entry = self.host.log.entry(slot)
        if entry is not None:
            self.host.log.decide(
                slot, entry.digest, entry.item, proposer=self.cluster_id, view=self.view
            )
            self.view_change.slot_decided(slot)
            self.host.after_decide()

    def _on_accept(self, message: PaxosAccept, src: int) -> None:
        super()._on_accept(message, src)
        # Optimistic execution: the backup treats the accepted proposal as
        # decided immediately (safe in the fault-free runs the evaluation
        # uses; a real deployment would fall back to classic rounds).
        entry = self.host.log.entry(message.slot)
        if entry is not None and entry.digest == message.digest:
            self.host.log.decide(
                message.slot, message.digest, message.item,
                proposer=self.cluster_id, view=message.view,
            )
            self.view_change.slot_decided(message.slot)
            self.host.after_decide()

    def _on_accepted(self, message: PaxosAccepted, src: int) -> None:
        if not self.is_primary or message.view != self.view:
            return
        key = (message.view, message.slot, message.digest)
        if not self._accepted.vote(key, src):
            return
        entry = self.host.log.entry(message.slot)
        if entry is None:
            return
        self.host.log.decide(
            message.slot, message.digest, entry.item,
            proposer=self.cluster_id, view=message.view,
        )
        self.view_change.slot_decided(message.slot)
        # No commit phase: the leader replies straight after the fast quorum.
        self.host.after_decide()


class FaBEngine(PBFTEngine):
    """FaB [40]: ``5f + 1`` replicas commit in two phases instead of three.

    A replica decides once it holds a prepare quorum of ``⌈(n + 3f + 1)/2⌉``
    messages; the commit phase of PBFT is skipped entirely.
    """

    def __init__(self, host) -> None:
        super().__init__(host)
        n = host.cluster.size
        f = host.cluster.f
        self._prepares.threshold = (n + 3 * f + 1 + 1) // 2

    def _record_prepare_vote(self, key: tuple[int, int, str], voter: int) -> None:
        if not self._prepares.vote(key, voter):
            return
        view, slot, digest = key
        item = self._items.get(key)
        if item is None:
            entry = self.host.log.entry(slot)
            if entry is None or entry.digest != digest:
                return
            item = entry.item
        self.host.log.decide(slot, digest, item, proposer=self.cluster_id, view=view)
        self.view_change.slot_decided(slot)
        self.host.after_decide()


class SingleGroupReplica(Process):
    """An active replica of a non-sharded system.

    It orders every transaction with the configured engine over the single
    replica group, executes against the full (unsharded) account store,
    appends to a single linear chain, and forwards execution results to
    the passive replicas.
    """

    def __init__(
        self,
        node_id: NodeId,
        cluster: ClusterConfig,
        config: SystemConfig,
        mapper: ShardMapper,
        store: AccountStore,
        sim,
        network,
        cost_model,
        engine_factory,
        passive_nodes: tuple[int, ...] = (),
    ) -> None:
        super().__init__(
            pid=int(node_id), sim=sim, network=network, cost_model=cost_model,
            name=f"active-{node_id}",
        )
        self.node_id = node_id
        self.cluster = cluster
        self.config = config
        self.mapper = mapper
        self.tuning = config.tuning
        self.log = OrderingLog(cluster.cluster_id)
        self.chain = ClusterView(cluster.cluster_id)
        self.store = store
        self.executor = TransactionExecutor(store, mapper, shard=0)
        self.passive_nodes = passive_nodes
        self.intra = engine_factory(self)
        self.committed_count = 0
        self.failed_executions = 0
        self.register_handler(ClientRequest, self._on_client_request)
        self.register_handlers(self.intra.handlers())

    # ------------------------------------------------------------------
    # ConsensusHost interface
    # ------------------------------------------------------------------
    @property
    def cluster_id(self) -> ClusterId:
        return self.cluster.cluster_id

    @property
    def view_change_timeout(self) -> float:
        return self.tuning.view_change_timeout

    def multicast_cluster(self, message: object) -> None:
        self.multicast([int(node) for node in self.cluster.node_ids], message)

    def send_to(self, node_id: int, message: object) -> None:
        self.send(int(node_id), message)

    # ------------------------------------------------------------------
    # message handling (table-driven; see Process.on_message)
    # ------------------------------------------------------------------
    def _on_client_request(self, request: ClientRequest, src: int) -> None:
        if request.reply_to < 0:
            request = replace(request, reply_to=src)
        if self.chain.contains_tx(request.transaction.tx_id):
            self._send_reply(request, success=True)
            return
        if not self.intra.is_primary:
            self.send(int(self.cluster.primary_for_view(self.intra.view)), request)
            return
        self.intra.submit(request)

    # ------------------------------------------------------------------
    # applying decided slots
    # ------------------------------------------------------------------
    def after_decide(self) -> None:
        for entry in self.log.pop_applicable():
            self._apply(entry)

    def _apply(self, entry) -> None:
        positions = {self.cluster_id: entry.slot}
        parents = {self.cluster_id: self.chain.head_hash}
        self.charge(self.cost_model.append_cost)
        item = entry.item
        if isinstance(item, ClientRequest):
            transaction = item.transaction
            self.charge(self.cost_model.execution_cost)
            result = self.executor.execute(transaction)
            if not result.success:
                self.failed_executions += 1
            block = Block.create(transaction, positions, proposer=self.cluster_id, parents=parents)
            self.chain.append(block)
            self.committed_count += 1
            if self._should_reply():
                self._send_reply(item, success=result.success)
            if self.intra.is_primary and self.passive_nodes:
                update = PassiveUpdate(slot=entry.slot, digest=entry.digest, item=item)
                self.multicast(list(self.passive_nodes), update)
        elif isinstance(item, Noop):
            self.chain.append(Block.noop(positions, proposer=self.cluster_id, parents=parents))

    def _should_reply(self) -> bool:
        if self.cluster.fault_model is FaultModel.BYZANTINE:
            return True
        return self.intra.is_primary

    def _send_reply(self, request: ClientRequest, success: bool) -> None:
        if request.reply_to < 0:
            return
        reply = ClientReply(
            tx_id=request.transaction.tx_id,
            node=self.node_id,
            cluster=self.cluster_id,
            view=self.intra.view,
            success=success,
            cross_shard=False,
        )
        self.send(request.reply_to, reply)


class PassiveReplica(Process):
    """A passive replica: applies execution results forwarded by the actives."""

    def __init__(self, pid, sim, network, cost_model, mapper, store) -> None:
        super().__init__(pid, sim, network, cost_model, name=f"passive-{pid}")
        self.mapper = mapper
        self.store = store
        self.executor = TransactionExecutor(store, mapper, shard=0)
        self.chain = ClusterView(ClusterId(0))
        self.applied = 0
        self.register_handler(PassiveUpdate, self._on_passive_update)

    def _on_passive_update(self, message: PassiveUpdate, src: int) -> None:
        item = message.item
        if not isinstance(item, ClientRequest):
            return
        if self.chain.contains_tx(item.transaction.tx_id):
            return
        self.charge(self.cost_model.execution_cost)
        self.executor.execute(item.transaction)
        positions = {ClusterId(0): self.chain.next_index}
        parents = {ClusterId(0): self.chain.head_hash}
        self.chain.append(
            Block.create(item.transaction, positions, proposer=ClusterId(0), parents=parents)
        )
        self.applied += 1


class _SingleGroupSystem(BaseSystem):
    """Shared builder for the non-sharded baselines."""

    #: number of active replicas as a function of ``f``; subclasses set it.
    def _active_count(self, f: int) -> int:
        raise NotImplementedError

    def _engine_factory(self):
        raise NotImplementedError

    def __init__(
        self,
        config: SystemConfig,
        workload_config: WorkloadConfig,
        seed: int | None = None,
    ) -> None:
        super().__init__(config, workload_config, seed)
        f = config.clusters[0].f
        active = self._active_count(f)
        if config.num_nodes < active:
            raise ConfigurationError(
                f"{self.name} needs at least {active} nodes, got {config.num_nodes}"
            )
        all_nodes = list(config.all_node_ids)
        active_nodes = tuple(NodeId(int(node)) for node in all_nodes[:active])
        passive_nodes = tuple(int(node) for node in all_nodes[active:])
        self.active_cluster = ClusterConfig(
            cluster_id=ClusterId(0),
            node_ids=active_nodes,
            fault_model=config.fault_model,
            f=f,
        )
        # The data is not sharded: one mapper covering the whole keyspace.
        self.full_mapper = ShardMapper(
            num_shards=1,
            accounts_per_shard=self.workload_mapper.total_accounts,
        )
        self.replicas: dict[int, SingleGroupReplica] = {}
        self.passives: dict[int, PassiveReplica] = {}
        for node in active_nodes:
            store = self._bootstrap_store(self.full_mapper, 0)
            self.replicas[int(node)] = SingleGroupReplica(
                node_id=node,
                cluster=self.active_cluster,
                config=config,
                mapper=self.full_mapper,
                store=store,
                sim=self.sim,
                network=self.network,
                cost_model=self.cost_model,
                engine_factory=self._engine_factory(),
                passive_nodes=passive_nodes,
            )
        for pid in passive_nodes:
            store = self._bootstrap_store(self.full_mapper, 0)
            self.passives[pid] = PassiveReplica(
                pid, self.sim, self.network, self.cost_model, self.full_mapper, store
            )

    # ------------------------------------------------------------------
    # system interface
    # ------------------------------------------------------------------
    def route(self, transaction: Transaction) -> int:
        return int(self.active_cluster.primary)

    def fallback_route(self, transaction: Transaction, attempt: int) -> int:
        nodes = self.active_cluster.node_ids
        return int(nodes[attempt % len(nodes)])

    @property
    def required_replies(self) -> int:
        if self.config.fault_model is FaultModel.CRASH:
            return 1
        return self.active_cluster.f + 1

    def processes(self) -> list[Process]:
        return list(self.replicas.values()) + list(self.passives.values())

    def views(self) -> dict[ClusterId, ClusterView]:
        best = max(self.replicas.values(), key=lambda replica: replica.chain.height)
        return {ClusterId(0): best.chain}

    def stores(self) -> list[AccountStore]:
        best = max(self.replicas.values(), key=lambda replica: replica.chain.height)
        return [best.store]

    def expected_total_balance(self) -> int:
        return (
            self.workload_config.initial_balance * self.full_mapper.total_accounts
        )

    def primary(self) -> SingleGroupReplica:
        """The (initial) primary active replica."""
        return self.replicas[int(self.active_cluster.primary)]


@register_system("apr")
class ActivePassiveSystem(_SingleGroupSystem):
    """APR-C / APR-B: consensus among the minimal active group, rest passive."""

    @property
    def name(self) -> str:  # type: ignore[override]
        return "APR-C" if self.config.fault_model is FaultModel.CRASH else "APR-B"

    def _active_count(self, f: int) -> int:
        return self.config.fault_model.min_cluster_size(f)

    def _engine_factory(self):
        if self.config.fault_model is FaultModel.CRASH:
            return PaxosEngine
        return PBFTEngine


@register_system("fast")
class FastConsensusSystem(_SingleGroupSystem):
    """FPaxos / FaB: extra replicas buy one fewer communication phase."""

    @property
    def name(self) -> str:  # type: ignore[override]
        return "FPaxos" if self.config.fault_model is FaultModel.CRASH else "FaB"

    def _active_count(self, f: int) -> int:
        if self.config.fault_model is FaultModel.CRASH:
            return 3 * f + 1
        return 5 * f + 1

    def _engine_factory(self):
        if self.config.fault_model is FaultModel.CRASH:
            return FastPaxosEngine
        return FaBEngine
