"""Replica-side client-request screening (the Byzantine-client defence).

The paper assumes correct clients; :class:`RequestGuard` removes that
assumption.  Armed on every replica the moment *any* adversary enters a
run (:meth:`repro.core.system.BaseSystem.arm_request_guards`), it
screens each client request at the door — before it can reach consensus
— and backstops the apply path:

* **authentication** — a request whose transaction carries a signature
  that does not verify (forged flag, signer ≠ claimed client, digest
  mismatch) is dropped; the transport prevents *sender* spoofing, the
  signature prevents *content* spoofing by relays and Byzantine clients;
* **ownership** — account ownership is a static, deterministic mapping,
  so a transfer whose source is not owned by the issuing client is
  refused everywhere, including at clusters that only hold the
  destination shard (without this, a cross-shard theft attempt would
  fail validation at the source cluster but still deposit remotely,
  minting money);
* **per-client sequence dedup** — each client *process* is a closed
  loop, so its request timestamps are strictly increasing; a request
  whose timestamp lies below the latest transaction this replica
  committed for that client — and whose transaction is not simply a
  retry of something already committed — is a replay and is dropped;
* **in-flight duplicate dedup** — a transaction id already pending under
  a *different* request digest (a replayed request with a mutated
  timestamp would otherwise slip past the digest-keyed dedup and commit
  the same transaction at two slots) is dropped while the original is
  in flight; together with the apply-time backstop
  (:meth:`RequestGuard.is_duplicate_apply`, which no-op-fills any
  duplicate a Byzantine *primary* smuggles past the door), this is what
  keeps **at-most-once** execution intact under arbitrary duplicated,
  replayed, or mutated client traffic.

The guard is deliberately **lazy**: faultless runs never construct one,
and the hot path pays exactly one ``is None`` check per client request —
the same contract the message-interceptor hook established.  All
screening is deterministic, so serial and pooled runs stay bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..common.types import AccountId, ClientId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..consensus.messages import ClientRequest
    from ..ledger.view import ClusterView

__all__ = ["ADMIT", "DROP", "REFUSE", "RequestGuard"]

#: screening verdicts: admit to the normal path, drop silently, or drop
#: and answer the client with a failure reply (invalid-but-authentic
#: requests, e.g. ownership violations, where the submitter deserves an
#: answer instead of a retry loop).
ADMIT, DROP, REFUSE = range(3)


class RequestGuard:
    """Screens client requests for one replica (see module docstring)."""

    __slots__ = (
        "chain",
        "owner_of",
        "_last_committed",
        "_pending_tx",
        "rejected_forged",
        "rejected_ownership",
        "rejected_replays",
        "rejected_duplicates",
        "deduped_applies",
    )

    def __init__(
        self,
        chain: "ClusterView",
        owner_of: Callable[[AccountId], ClientId] | None = None,
    ) -> None:
        self.chain = chain
        self.owner_of = owner_of
        #: client process id → timestamp of the latest request this
        #: replica committed for it (closed-loop clients submit with
        #: strictly increasing timestamps, so anything below is a replay).
        self._last_committed: dict[int, float] = {}
        #: transaction id → request digest currently being ordered here.
        self._pending_tx: dict[str, str] = {}
        self.rejected_forged = 0
        self.rejected_ownership = 0
        self.rejected_replays = 0
        self.rejected_duplicates = 0
        #: duplicates that reached the apply path and were no-op filled.
        self.deduped_applies = 0

    # ------------------------------------------------------------------
    # the door
    # ------------------------------------------------------------------
    def screen(self, request: "ClientRequest") -> int:
        """Screen one request; registers it as pending when admitted."""
        transaction = request.transaction
        signature = transaction.signature
        if signature is not None and not transaction.verify_signature():
            self.rejected_forged += 1
            return DROP
        owner_of = self.owner_of
        if owner_of is not None:
            client = transaction.client
            for transfer in transaction.transfers:
                if owner_of(transfer.source) != client:
                    self.rejected_ownership += 1
                    return REFUSE
        tx_id = transaction.tx_id
        already_committed = self.chain.contains_tx(tx_id)
        last = self._last_committed.get(request.reply_to)
        if last is not None and request.timestamp < last and not already_committed:
            self.rejected_replays += 1
            return DROP
        digest = request.payload_digest()
        pending = self._pending_tx.get(tx_id)
        if pending is not None and pending != digest:
            self.rejected_duplicates += 1
            return DROP
        if pending is None and not already_committed:
            # Register only transactions actually heading for ordering:
            # retries of committed transactions are answered from the
            # chain's duplicate index and must not leave an entry
            # nothing will ever clean up.
            self._pending_tx[tx_id] = digest
        return ADMIT

    # ------------------------------------------------------------------
    # apply-side bookkeeping
    # ------------------------------------------------------------------
    def committed(self, request: "ClientRequest") -> None:
        """Record that ``request`` was applied (advance the client window)."""
        self._pending_tx.pop(request.transaction.tx_id, None)
        reply_to = request.reply_to
        if reply_to < 0:
            return
        last = self._last_committed.get(reply_to)
        if last is None or request.timestamp > last:
            self._last_committed[reply_to] = request.timestamp

    def abandoned(self, tx_id: str) -> None:
        """Forget a pending registration whose slot resolved without a commit.

        Called when an ordered slot is filled with a no-op instead of
        the transaction (cross-shard atomicity backstop, termination
        fill): the client's retry re-runs the instance under the *same*
        request digest, so dropping the entry is safe and keeps the
        pending map from leaking abandoned instances.
        """
        self._pending_tx.pop(tx_id, None)

    def is_duplicate_apply(self, tx_id: str) -> bool:
        """Apply-time at-most-once backstop: already committed here?

        Catches duplicates ordered past the door (e.g. proposed directly
        by a Byzantine primary): the caller fills the slot with a no-op
        instead of executing — every correct replica of the cluster
        applies slots in the same order, so the decision is identical
        cluster-wide and no fork arises.
        """
        if self.chain.contains_tx(tx_id):
            self.deduped_applies += 1
            self._pending_tx.pop(tx_id, None)
            return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def rejected_total(self) -> int:
        """All requests turned away at the door."""
        return (
            self.rejected_forged
            + self.rejected_ownership
            + self.rejected_replays
            + self.rejected_duplicates
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RequestGuard forged={self.rejected_forged} "
            f"ownership={self.rejected_ownership} replays={self.rejected_replays} "
            f"duplicates={self.rejected_duplicates} deduped={self.deduped_applies}>"
        )
