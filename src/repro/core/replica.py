"""The SharPer replica: one node of one cluster.

A replica glues together everything a node of the paper's system runs:

* the intra-shard consensus engine (Paxos for crash-only clusters, PBFT
  for Byzantine clusters — Section 3.1);
* the flattened cross-shard consensus engine (Algorithm 1 or 2);
* one :class:`~repro.consensus.log.OrderingLog`, shared by both engines,
  so intra- and cross-shard transactions of the cluster are totally
  ordered together;
* the cluster's view of the DAG ledger and the shard's account store,
  updated strictly in slot order;
* client reply handling (the primary replies in the crash model, every
  replica replies in the Byzantine model, where clients wait for ``f + 1``
  matching replies).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable

from ..common.config import ClusterConfig, SystemConfig
from ..common.types import AccountId, ClientId, ClusterId, FaultModel, NodeId
from ..consensus.batching import BatchPipeline, member_requests
from ..consensus.log import Noop, OrderingLog, item_digest
from ..consensus.messages import (
    ClientReply,
    ClientRequest,
    NewViewAnnouncement,
    RequestBatch,
)
from ..consensus.paxos import PaxosEngine
from ..consensus.pbft import PBFTEngine
from ..consensus.view_change import verify_new_view_certificate
from ..ledger.block import Block
from ..ledger.view import ClusterView
from ..recovery import CheckpointManager, CrossShardTerminator, StateTransferManager
from ..sim.costs import CostModel
from ..sim.network import Network
from ..sim.process import Process
from ..sim.simulator import Simulator
from ..txn.accounts import AccountStore, ShardMapper
from ..txn.execution import TransactionExecutor
from ..txn.transaction import Transaction
from . import sharding
from .cross_shard import ByzantineCrossShardEngine, CrashCrossShardEngine
from .guard import ADMIT, REFUSE, RequestGuard

__all__ = ["SharPerReplica"]


class SharPerReplica(Process):
    """One SharPer node: intra-shard + cross-shard consensus + ledger view."""

    def __init__(
        self,
        node_id: NodeId,
        cluster: ClusterConfig,
        config: SystemConfig,
        mapper: ShardMapper,
        store: AccountStore,
        sim: Simulator,
        network: Network,
        cost_model: CostModel,
    ) -> None:
        super().__init__(
            pid=int(node_id),
            sim=sim,
            network=network,
            cost_model=cost_model,
            name=f"replica-{node_id}@p{cluster.cluster_id}",
        )
        self.node_id = node_id
        self.cluster = cluster
        self.config = config
        self.mapper = mapper
        self.tuning = config.tuning
        self.log = OrderingLog(cluster.cluster_id)
        self.chain = ClusterView(cluster.cluster_id)
        self.store = store
        self.executor = TransactionExecutor(
            store, mapper, sharding.cluster_to_shard(cluster.cluster_id)
        )
        if cluster.fault_model is FaultModel.CRASH:
            self.intra = PaxosEngine(self)
            self.cross = CrashCrossShardEngine(self)
        else:
            self.intra = PBFTEngine(self)
            self.cross = ByzantineCrossShardEngine(self)
        self.committed_count = 0
        self.committed_cross_count = 0
        self.failed_executions = 0
        self.forwarded_requests = 0
        #: rolling withheld-sequence-number timer (see _monitor_gap).
        self._gap_timer = None
        # Recovery subsystem: checkpointing/compaction, state transfer,
        # and checkpoint-anchored cross-shard termination.  A zero
        # interval disables checkpoint production (the faultless
        # default); state transfer and termination stay armed either way.
        self._checkpoint_interval = self.tuning.checkpoint_interval
        self.checkpoints = CheckpointManager(self, interval=self._checkpoint_interval)
        self.state_transfer = StateTransferManager(self)
        self.terminator = CrossShardTerminator(self)
        #: suppress client replies while replaying state-transferred slots.
        self._replaying = False
        #: Byzantine-client defence, armed lazily (None on the faultless
        #: fast path — one ``is None`` check per client request).
        self.request_guard: RequestGuard | None = None
        # Batching pipeline, armed only when batch_size > 1: at the
        # default of 1 every request takes the pre-batching code path
        # bit for bit (and the in-flight window is not enforced — the
        # legacy behaviour is an unbounded pipeline of singleton slots).
        self.batcher: BatchPipeline | None = (
            BatchPipeline(self) if self.tuning.batch_size > 1 else None
        )
        # Remote-primary table: who currently speaks for each other
        # cluster.  Pre-resolved to plain pids (replacing a linear config
        # scan per lookup) and updated only through certificate-verified
        # NewViewAnnouncements — a bare claim never changes it.
        self._remote_primaries: dict[ClusterId, int] = {
            remote.cluster_id: int(remote.primary) for remote in config.clusters
        }
        self._remote_views: dict[ClusterId, int] = {}
        # Table-driven dispatch: merge the engines' handler tables into the
        # process-level table once, so delivery is a single dict lookup
        # (the message sets of the engines and managers are disjoint).
        self.register_handler(ClientRequest, self._on_client_request)
        self.register_handler(NewViewAnnouncement, self._on_new_view_announcement)
        self.register_handlers(self.cross.handlers())
        self.register_handlers(self.intra.handlers())
        self.register_handlers(self.checkpoints.handlers())
        self.register_handlers(self.state_transfer.handlers())
        self.register_handlers(self.terminator.handlers())

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    @property
    def cluster_id(self) -> ClusterId:
        """Identifier of the cluster (and shard) this replica belongs to."""
        return self.cluster.cluster_id

    @property
    def is_cluster_primary(self) -> bool:
        """Whether this replica is the primary of its cluster's current view."""
        return self.intra.is_primary

    @property
    def view_change_timeout(self) -> float:
        """Timeout used by the view-change manager (ConsensusHost interface)."""
        return self.tuning.view_change_timeout

    def primary_pid_of(self, cluster_id: ClusterId) -> int:
        """Process id of the primary of ``cluster_id``.

        For the local cluster the current view is used; remote primaries
        come from the pre-resolved table, which starts at every cluster's
        initial view and advances only through certificate-verified
        :class:`~repro.consensus.messages.NewViewAnnouncement` messages
        (see :meth:`_on_new_view_announcement`).
        """
        if cluster_id == self.cluster_id:
            return int(self.cluster.primary_for_view(self.intra.view))
        return self._remote_primaries[cluster_id]

    def nodes_of_clusters(self, clusters: Iterable[ClusterId]) -> list[int]:
        """Process ids of every node of the given clusters."""
        return [
            int(node)
            for cluster_id in clusters
            for node in self.config.cluster(cluster_id).node_ids
        ]

    def involved_clusters_of(self, transaction: Transaction) -> tuple[ClusterId, ...]:
        """Clusters whose shards ``transaction`` accesses."""
        return sharding.involved_clusters(transaction, self.mapper)

    def spans_clusters(self, item: object) -> bool:
        """Whether an ordered item is a cross-shard client request.

        Used by the view-change manager to keep cross-shard instances
        out of intra-shard re-proposals (see
        :meth:`~repro.consensus.view_change.ViewChangeManager._install_as_primary`).
        """
        if isinstance(item, (ClientRequest, RequestBatch)):
            # Batch members share one involved-cluster set by
            # construction, so the representative transaction answers
            # for the whole batch.
            return len(self.involved_clusters_of(item.transaction)) > 1
        return False

    # ------------------------------------------------------------------
    # ConsensusHost / cross-shard host interface
    # ------------------------------------------------------------------
    def multicast_cluster(self, message: object) -> None:
        """Send ``message`` to every other node of this cluster."""
        self.multicast([int(node) for node in self.cluster.node_ids], message)

    def multicast_nodes(self, nodes: list[int], message: object) -> None:
        """Send ``message`` to an explicit set of nodes (self excluded)."""
        self.multicast(nodes, message)

    def send_to(self, node_id: int, message: object) -> None:
        """Send ``message`` to one node."""
        self.send(int(node_id), message)

    # ------------------------------------------------------------------
    # authenticated cross-cluster view changes
    # ------------------------------------------------------------------
    def announce_new_view(self, view: int, certificate: tuple) -> None:
        """Tell every other cluster this replica now leads its cluster.

        Called by the view-change manager at view installation with the
        quorum certificate that elected this primary; view changes are
        rare, so the cluster-wide multicast is off the hot path.
        """
        others = self.nodes_of_clusters(
            remote.cluster_id
            for remote in self.config.clusters
            if remote.cluster_id != self.cluster_id
        )
        if not others:
            return
        self.multicast(
            others,
            NewViewAnnouncement(
                cluster=self.cluster_id,
                view=view,
                node=self.node_id,
                certificate=certificate,
            ),
        )

    def _on_new_view_announcement(self, message: NewViewAnnouncement, src: int) -> None:
        """Update the remote-primary table — certificate verified first.

        The claim must come from the node its view elects, carry a
        quorum of authentic signed view-change votes from *that*
        cluster's members, and advance (never rewind) the remote view.
        A forged-view adversary announcing a self-elected takeover fails
        the certificate check and changes nothing.
        """
        cluster_id = message.cluster
        if cluster_id == self.cluster_id:
            return
        try:
            remote = self.config.cluster(cluster_id)
        except Exception:
            return
        if src != int(remote.primary_for_view(message.view)):
            return
        if message.view <= self._remote_views.get(cluster_id, 0):
            return
        if not verify_new_view_certificate(message.certificate, message.view, remote):
            return
        self._remote_views[cluster_id] = message.view
        self._remote_primaries[cluster_id] = int(remote.primary_for_view(message.view))

    # ------------------------------------------------------------------
    # message dispatch (table-driven; see Process.on_message)
    # ------------------------------------------------------------------
    def _on_client_request(self, request: ClientRequest, src: int) -> None:
        if request.reply_to < 0:
            request = replace(request, reply_to=src)
        guard = self.request_guard
        if guard is not None:
            verdict = guard.screen(request)
            if verdict != ADMIT:
                if verdict == REFUSE:
                    # Authentic but invalid (e.g. ownership violation):
                    # answer with a failure so honest submitters do not
                    # retry forever; forged/replayed traffic is dropped.
                    self._send_reply(request, success=False, cross_shard=False)
                return
        transaction = request.transaction
        if self.chain.contains_tx(transaction.tx_id):
            # Duplicate of an already-committed transaction: reply directly.
            self._send_reply(request, success=True, cross_shard=False)
            return
        involved = self.involved_clusters_of(transaction)
        if len(involved) == 1:
            self._handle_intra_request(request, involved[0])
        else:
            self._handle_cross_request(request, involved)

    def _handle_intra_request(self, request: ClientRequest, target: ClusterId) -> None:
        if target != self.cluster_id:
            self._forward(request, self.primary_pid_of(target))
            return
        if not self.is_cluster_primary:
            self._monitor_forwarded_request(request)
            self._forward(request, self.primary_pid_of(self.cluster_id))
            return
        if self.log.slot_of(item_digest(request)) is not None:
            # Retry of a request already ordered (or in flight) here:
            # allocating a second slot would commit the transaction
            # twice.  Once the first slot applies, the duplicate check
            # in _on_client_request answers the client's next retry.
            return
        recorder = self.recorder
        if recorder is not None:
            recorder.phase(
                self.sim.now, request.transaction.tx_id, "enqueue", self.pid
            )
        if self.batcher is not None:
            # Batching armed: the pipeline dedups retries riding queued
            # or in-flight batches, accumulates, and proposes within the
            # in-flight window.
            self.batcher.submit_intra(request)
            return
        self.intra.submit(request)

    def _handle_cross_request(
        self, request: ClientRequest, involved: tuple[ClusterId, ...]
    ) -> None:
        initiator = sharding.initiator_cluster(
            request.transaction,
            self.mapper,
            use_super_primary=self.tuning.use_super_primary,
            fallback=self.cluster_id,
        )
        if initiator != self.cluster_id:
            self._forward(request, self.primary_pid_of(initiator))
            return
        if not self.is_cluster_primary:
            self._monitor_forwarded_request(request)
            self._forward(request, self.primary_pid_of(self.cluster_id))
            return
        recorder = self.recorder
        if recorder is not None:
            recorder.phase(
                self.sim.now, request.transaction.tx_id, "enqueue", self.pid
            )
        if self.batcher is not None:
            self.batcher.submit_cross(request, involved)
            return
        self.cross.start(request)

    def _forward(self, request: ClientRequest, destination: int) -> None:
        if destination == self.pid:
            return
        self.forwarded_requests += 1
        self.send(destination, request)

    def _monitor_forwarded_request(self, request: ClientRequest) -> None:
        """PBFT's request timer: relay to the primary, then watch it.

        A backup that hands a client request to its cluster primary
        starts a timer; if the transaction has not committed when it
        fires — and the view has not rotated in the meantime — the
        primary is suspected.  This is what makes a *silent* (muted, not
        crashed) primary lose its seat: a mute primary leaves no pending
        pre-prepares to monitor, so without a request-level timer the
        backups would never have a reason to suspect it.  Fault-free
        runs never take this path (clients route straight to primaries),
        so the fast path is untouched.
        """
        self.set_timer(
            self.view_change_timeout,
            self._check_forwarded_request,
            request.transaction.tx_id,
            self.intra.view,
        )

    def _check_forwarded_request(self, tx_id: str, view_at_forward: int) -> None:
        if self.chain.contains_tx(tx_id):
            return
        if self.intra.view != view_at_forward:
            # Already failed over; the client's retry re-arms monitoring.
            return
        self.intra.view_change.suspect_primary()

    # ------------------------------------------------------------------
    # applying decided slots
    # ------------------------------------------------------------------
    def after_decide(self) -> None:
        """Apply every decided slot that is next in line (in slot order)."""
        log = self.log
        interval = self._checkpoint_interval
        if interval:
            # Checkpoint exactly at interval boundaries, *inside* the
            # apply run: the chain head and store then reflect precisely
            # slots 1..seq, which is what makes the digest match across
            # the cluster.
            for entry in log.pop_applicable():
                self._apply(entry)
                if entry.slot % interval == 0:
                    self.checkpoints.take(entry.slot)
        else:
            for entry in log.pop_applicable():
                self._apply(entry)
        # Inlined blocked_decisions read and timer guard: this runs once
        # per decide, on the hottest protocol path in the repo, and the
        # gap timer is almost always already armed while pipelining.
        if log._blocked_decisions and self._gap_timer is None:
            self._monitor_gap()

    def replay_decided(self) -> None:
        """Apply state-transferred slots without re-sending client replies.

        The original commit already answered the client (possibly while
        this replica was down); replaying must reconstruct chain and
        store state bit-identically but stay silent on the client side.
        """
        self._replaying = True
        try:
            self.after_decide()
        finally:
            self._replaying = False

    def _monitor_gap(self) -> None:
        """Watch decided-but-blocked slots (withheld sequence numbers).

        A decided slot that cannot apply means some lower slot never
        arrived here — briefly normal while instances pipeline, but if
        the gap persists for a whole view-change timeout the primary is
        withholding sequence numbers (e.g. a muted primary whose
        pre-prepares were swallowed while cross-shard slots above them
        kept deciding) and must be suspected.  One rolling timer per
        replica; it re-arms while progress continues and fires a
        suspicion only when ``next_apply`` stalled for a full timeout.
        The handle is reset to ``None`` on firing and never cancelled
        elsewhere, so a plain ``is not None`` check suffices on this
        hot path (blocked decisions are routine while instances
        pipeline).
        """
        if self._gap_timer is not None:
            return
        self._gap_timer = self.set_timer(
            self.view_change_timeout,
            self._on_gap_timeout,
            self.log.next_apply,
            self.intra.view,
        )

    def _on_gap_timeout(self, next_apply_at_arm: int, view_at_arm: int) -> None:
        self._gap_timer = None
        if not self.log.blocked_decisions:
            return
        if self.log.next_apply == next_apply_at_arm and self.intra.view == view_at_arm:
            # The missing slot may simply have been decided while we
            # were unreachable — fetch it from peers before (also)
            # suspecting the primary of withholding it.
            self.state_transfer.request_catch_up()
            self.intra.view_change.suspect_primary()
        # Still blocked (progress, a view change in flight, or a fresh
        # stall): keep watching until the gap clears.
        self._monitor_gap()

    def _apply(self, entry) -> None:
        positions = entry.positions or {self.cluster_id: entry.slot}
        parents = {self.cluster_id: self.chain.head_hash}
        proposer = entry.proposer if entry.proposer is not None else self.cluster_id
        item = entry.item
        recorder = self.recorder
        if recorder is not None:
            recorder.slot_close(self.sim.now, self.pid, entry.slot)
        if self.batcher is not None:
            # Free the batcher's in-flight window entry for this slot
            # (a no-op on every replica but the proposing primary).
            self.batcher.item_applied(entry.digest)
        if isinstance(item, RequestBatch):
            self._apply_batch(item, positions, proposer, parents)
            return
        if isinstance(item, ClientRequest):
            transaction = item.transaction
            guard = self.request_guard
            if guard is not None and guard.is_duplicate_apply(transaction.tx_id):
                # At-most-once backstop: a duplicate of an already-
                # committed transaction was ordered past the door (e.g.
                # proposed directly by a Byzantine primary).  Executing
                # it would double-spend and the ledger append would
                # refuse it; fill the slot with a no-op instead — every
                # correct replica applies slots in the same order, so
                # the whole cluster fills identically and no fork arises.
                self.charge(self.cost_model.append_cost)
                self.chain.append(Block.noop(positions, proposer=proposer, parents=parents))
                return
            # involved_shards is memoised on the shared payload, so this
            # guard costs one cache probe per applied transaction.
            if len(positions) == 1 and len(transaction.involved_shards(self.mapper)) > 1:
                # Backstop for cross-shard atomicity: a cross-shard
                # transaction decided without its full position vector
                # (every known path is closed, but a half-execution
                # would silently mint or destroy money).  Fill the slot
                # with a no-op and send no reply — the client's retry
                # commits the transaction atomically elsewhere.
                if guard is not None:
                    guard.abandoned(transaction.tx_id)
                self.charge(self.cost_model.append_cost)
                self.chain.append(Block.noop(positions, proposer=proposer, parents=parents))
                return
            # One fused CPU charge for append + execution (charging is
            # associative, so this is exactly two consecutive charges).
            self.charge(self.cost_model.append_cost + self.cost_model.execution_cost)
            result = self.executor.execute(transaction)
            if not result.success:
                self.failed_executions += 1
            block = self._block_for(transaction, positions, proposer, parents)
            self.chain.append(block)
            self.committed_count += 1
            if recorder is not None:
                recorder.phase(self.sim.now, transaction.tx_id, "applied", self.pid)
            if guard is not None:
                guard.committed(item)
            cross = len(positions) > 1
            if cross:
                self.committed_cross_count += 1
            if self._should_reply(proposer):
                self._send_reply(item, success=result.success, cross_shard=cross)
        elif isinstance(item, Noop):
            self.charge(self.cost_model.append_cost)
            block = Block.noop(positions, proposer=proposer, parents=parents)
            self.chain.append(block)
        else:
            self.charge(self.cost_model.append_cost)
            self.on_marker_applied(entry, positions, parents, proposer)

    def _block_for(self, transaction, positions, proposer, parents) -> Block:
        """One :class:`Block` object shared by replicas building the same block.

        Every replica of a cluster decides the same ``(transaction,
        positions, proposer, parents)`` tuple for a slot — and block
        identity excludes parent hashes — so the first replica to apply
        it builds (and hashes) the block and the rest reuse the object
        via a memo on the shared transaction payload.  Parents are part
        of the memo key, so each cluster of a cross-shard transaction
        still materialises a block carrying its own parent reference.
        """
        key = (
            tuple(positions.items())
            if len(positions) == 1
            else tuple(sorted(positions.items())),
            proposer,
            tuple(parents.items()),
        )
        memo = transaction.__dict__.get("_block_memo")
        if memo is not None and memo[0] == key:
            return memo[1]
        block = Block.create(transaction, positions, proposer=proposer, parents=parents)
        object.__setattr__(transaction, "_block_memo", (key, block))
        return block

    def _apply_batch(self, batch: RequestBatch, positions, proposer, parents) -> None:
        """Apply one batched slot: per-member semantics, one block.

        This is where batching amortises the apply loop: one dispatch,
        one fused CPU charge, one ledger append for the whole batch —
        while every member keeps its individual transaction semantics
        (at-most-once execution, guard bookkeeping, its own client
        reply).  Members already committed elsewhere — a retry that beat
        this batch through a view-change hand-off — are skipped, exactly
        like the singleton duplicate-apply backstop; a batch whose
        members were *all* settled elsewhere degenerates to a no-op
        block, so the chain stays contiguous and fork-free.
        """
        guard = self.request_guard
        chain = self.chain
        cross = len(positions) > 1
        executed: list[tuple[ClientRequest, bool]] = []
        for request in batch.requests:
            transaction = request.transaction
            if guard is not None:
                if guard.is_duplicate_apply(transaction.tx_id):
                    continue
            elif chain.contains_tx(transaction.tx_id):
                continue
            if len(positions) == 1 and len(transaction.involved_shards(self.mapper)) > 1:
                # Cross-shard atomicity backstop, per member (see
                # _apply): never half-execute a cross-shard transaction
                # that lost its position vector.
                if guard is not None:
                    guard.abandoned(transaction.tx_id)
                continue
            result = self.executor.execute(transaction)
            if not result.success:
                self.failed_executions += 1
            executed.append((request, result.success))
            if guard is not None:
                guard.committed(request)
        # One fused charge: a single append plus one execution per
        # member actually executed (skipped members cost nothing).
        self.charge(
            self.cost_model.append_cost
            + self.cost_model.execution_cost * len(executed)
        )
        if not executed:
            chain.append(Block.noop(positions, proposer=proposer, parents=parents))
            return
        block = self._block_for_batch(
            batch, tuple(request.transaction for request, _ in executed),
            positions, proposer, parents,
        )
        chain.append(block)
        self.committed_count += len(executed)
        recorder = self.recorder
        if recorder is not None:
            now = self.sim.now
            for request, _success in executed:
                recorder.phase(now, request.transaction.tx_id, "applied", self.pid)
        if cross:
            self.committed_cross_count += len(executed)
        if self._should_reply(proposer):
            for request, success in executed:
                self._send_reply(request, success=success, cross_shard=cross)

    def _block_for_batch(
        self, batch: RequestBatch, transactions, positions, proposer, parents
    ) -> Block:
        """Batch variant of :meth:`_block_for`, memoised on the batch payload.

        The executed-member tuple joins the memo key: replicas of one
        cluster always skip the same members (the ledger index is
        cluster-consistent), but the clusters of a cross-shard batch may
        legitimately differ, and they already differ in ``parents``.
        """
        key = (
            tuple(positions.items())
            if len(positions) == 1
            else tuple(sorted(positions.items())),
            proposer,
            tuple(parents.items()),
            tuple(tx.tx_id for tx in transactions),
        )
        memo = batch.__dict__.get("_block_memo")
        if memo is not None and memo[0] == key:
            return memo[1]
        block = Block.create_batch(transactions, positions, proposer=proposer, parents=parents)
        object.__setattr__(batch, "_block_memo", (key, block))
        return block

    def on_marker_applied(self, entry, positions, parents, proposer) -> None:
        """Hook for subclasses that order protocol markers (e.g. AHL's 2PC).

        The base replica never orders markers; fill the slot with a no-op
        block so the chain stays contiguous if one ever appears.
        """
        self.chain.append(Block.noop(positions, proposer=proposer, parents=parents))

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def arm_request_guard(
        self, owner_of: "Callable[[AccountId], ClientId] | None" = None
    ) -> RequestGuard:
        """Create (idempotently) the Byzantine-client request guard.

        Armed by :meth:`repro.core.system.BaseSystem.arm_request_guards`
        the moment any adversary enters the run — every replica of every
        cluster arms in the same simulator event, so screening decisions
        are identical cluster- and system-wide.  Faultless runs never
        call this, keeping the fast path at one ``is None`` check.
        """
        if self.request_guard is None:
            self.request_guard = RequestGuard(self.chain, owner_of=owner_of)
        return self.request_guard

    def recover(self) -> None:
        """Restart after a crash and actively catch up on missed slots.

        State is retained (Section 2.1), but slots decided while the
        replica was down would otherwise leave it alive-but-deaf: it
        receives new traffic yet can never apply past the gap.  A
        state-transfer round fetches the latest stable checkpoint plus
        the decided suffix from the cluster peers, after which the
        replica serves requests and votes in quorums again.
        """
        was_crashed = self.crashed
        super().recover()
        if was_crashed:
            self.state_transfer.request_catch_up()

    # ------------------------------------------------------------------
    # client replies
    # ------------------------------------------------------------------
    def _should_reply(self, proposer: ClusterId) -> bool:
        if self._replaying:
            # State-transfer replay: the original commit already replied.
            return False
        if self.cluster.fault_model is FaultModel.BYZANTINE:
            return True
        # Crash model: only the primary of the initiating cluster replies.
        return self.is_cluster_primary and proposer == self.cluster_id

    def _send_reply(self, request: ClientRequest, success: bool, cross_shard: bool) -> None:
        if request.reply_to < 0:
            return
        reply = ClientReply(
            tx_id=request.transaction.tx_id,
            node=self.node_id,
            cluster=self.cluster_id,
            view=self.intra.view,
            success=success,
            cross_shard=cross_shard,
        )
        self.send(request.reply_to, reply)

    def on_cross_shard_abort(self, item: object) -> None:
        """Notify the client(s) that a cross-shard item was given up on.

        ``item`` is whatever the cross-shard engine ordered — a bare
        request, or a :class:`RequestBatch` whose members each get their
        own failure reply (and are released from the batcher's dedup
        index so client retries can re-enter the pipeline).
        """
        for request in member_requests(item):
            if request.reply_to < 0:
                continue
            reply = ClientReply(
                tx_id=request.transaction.tx_id,
                node=self.node_id,
                cluster=self.cluster_id,
                view=self.intra.view,
                success=False,
                cross_shard=True,
            )
            self.send(request.reply_to, reply)
        if self.batcher is not None:
            self.batcher.item_applied(item_digest(item))

    def on_intra_view_installed(self, view: int) -> None:
        """Hook called by the view-change manager on every view install.

        Resets the batching pipeline's window: in-flight batches were
        carried by the view change itself (they are ordinary log items),
        so only the replica-local accounting needs resetting — queued
        requests are re-pumped (new primary) or forwarded (everyone
        else).  See :meth:`repro.consensus.batching.BatchPipeline.on_view_installed`.
        """
        if self.batcher is not None:
            self.batcher.on_view_installed()
