"""The SharPer replica: one node of one cluster.

A replica glues together everything a node of the paper's system runs:

* the intra-shard consensus engine (Paxos for crash-only clusters, PBFT
  for Byzantine clusters — Section 3.1);
* the flattened cross-shard consensus engine (Algorithm 1 or 2);
* one :class:`~repro.consensus.log.OrderingLog`, shared by both engines,
  so intra- and cross-shard transactions of the cluster are totally
  ordered together;
* the cluster's view of the DAG ledger and the shard's account store,
  updated strictly in slot order;
* client reply handling (the primary replies in the crash model, every
  replica replies in the Byzantine model, where clients wait for ``f + 1``
  matching replies).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from ..common.config import ClusterConfig, SystemConfig
from ..common.types import ClusterId, FaultModel, NodeId
from ..consensus.log import Noop, OrderingLog, item_digest
from ..consensus.messages import ClientReply, ClientRequest
from ..consensus.paxos import PaxosEngine
from ..consensus.pbft import PBFTEngine
from ..ledger.block import Block
from ..ledger.view import ClusterView
from ..sim.costs import CostModel
from ..sim.network import Network
from ..sim.process import Process
from ..sim.simulator import Simulator
from ..txn.accounts import AccountStore, ShardMapper
from ..txn.execution import TransactionExecutor
from ..txn.transaction import Transaction
from . import sharding
from .cross_shard import ByzantineCrossShardEngine, CrashCrossShardEngine

__all__ = ["SharPerReplica"]


class SharPerReplica(Process):
    """One SharPer node: intra-shard + cross-shard consensus + ledger view."""

    def __init__(
        self,
        node_id: NodeId,
        cluster: ClusterConfig,
        config: SystemConfig,
        mapper: ShardMapper,
        store: AccountStore,
        sim: Simulator,
        network: Network,
        cost_model: CostModel,
    ) -> None:
        super().__init__(
            pid=int(node_id),
            sim=sim,
            network=network,
            cost_model=cost_model,
            name=f"replica-{node_id}@p{cluster.cluster_id}",
        )
        self.node_id = node_id
        self.cluster = cluster
        self.config = config
        self.mapper = mapper
        self.tuning = config.tuning
        self.log = OrderingLog(cluster.cluster_id)
        self.chain = ClusterView(cluster.cluster_id)
        self.store = store
        self.executor = TransactionExecutor(
            store, mapper, sharding.cluster_to_shard(cluster.cluster_id)
        )
        if cluster.fault_model is FaultModel.CRASH:
            self.intra = PaxosEngine(self)
            self.cross = CrashCrossShardEngine(self)
        else:
            self.intra = PBFTEngine(self)
            self.cross = ByzantineCrossShardEngine(self)
        self.committed_count = 0
        self.committed_cross_count = 0
        self.failed_executions = 0
        self.forwarded_requests = 0
        # Table-driven dispatch: merge the engines' handler tables into the
        # process-level table once, so delivery is a single dict lookup
        # (the message sets of the two engines are disjoint).
        self.register_handler(ClientRequest, self._on_client_request)
        self.register_handlers(self.cross.handlers())
        self.register_handlers(self.intra.handlers())

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    @property
    def cluster_id(self) -> ClusterId:
        """Identifier of the cluster (and shard) this replica belongs to."""
        return self.cluster.cluster_id

    @property
    def is_cluster_primary(self) -> bool:
        """Whether this replica is the primary of its cluster's current view."""
        return self.intra.is_primary

    @property
    def view_change_timeout(self) -> float:
        """Timeout used by the view-change manager (ConsensusHost interface)."""
        return self.tuning.view_change_timeout

    def primary_pid_of(self, cluster_id: ClusterId) -> int:
        """Process id of the primary of ``cluster_id``.

        For the local cluster the current view is used; remote clusters are
        assumed to be in their initial view (a remote view change is
        discovered through forwarding).
        """
        if cluster_id == self.cluster_id:
            return int(self.cluster.primary_for_view(self.intra.view))
        return int(self.config.cluster(cluster_id).primary)

    def nodes_of_clusters(self, clusters: Iterable[ClusterId]) -> list[int]:
        """Process ids of every node of the given clusters."""
        return [
            int(node)
            for cluster_id in clusters
            for node in self.config.cluster(cluster_id).node_ids
        ]

    def involved_clusters_of(self, transaction: Transaction) -> tuple[ClusterId, ...]:
        """Clusters whose shards ``transaction`` accesses."""
        return sharding.involved_clusters(transaction, self.mapper)

    # ------------------------------------------------------------------
    # ConsensusHost / cross-shard host interface
    # ------------------------------------------------------------------
    def multicast_cluster(self, message: object) -> None:
        """Send ``message`` to every other node of this cluster."""
        self.multicast([int(node) for node in self.cluster.node_ids], message)

    def multicast_nodes(self, nodes: list[int], message: object) -> None:
        """Send ``message`` to an explicit set of nodes (self excluded)."""
        self.multicast(nodes, message)

    def send_to(self, node_id: int, message: object) -> None:
        """Send ``message`` to one node."""
        self.send(int(node_id), message)

    # ------------------------------------------------------------------
    # message dispatch (table-driven; see Process.on_message)
    # ------------------------------------------------------------------
    def _on_client_request(self, request: ClientRequest, src: int) -> None:
        if request.reply_to < 0:
            request = replace(request, reply_to=src)
        transaction = request.transaction
        if self.chain.contains_tx(transaction.tx_id):
            # Duplicate of an already-committed transaction: reply directly.
            self._send_reply(request, success=True, cross_shard=False)
            return
        involved = self.involved_clusters_of(transaction)
        if len(involved) == 1:
            self._handle_intra_request(request, involved[0])
        else:
            self._handle_cross_request(request, involved)

    def _handle_intra_request(self, request: ClientRequest, target: ClusterId) -> None:
        if target != self.cluster_id:
            self._forward(request, self.primary_pid_of(target))
            return
        if not self.is_cluster_primary:
            self._forward(request, self.primary_pid_of(self.cluster_id))
            return
        self.intra.submit(request)

    def _handle_cross_request(
        self, request: ClientRequest, involved: tuple[ClusterId, ...]
    ) -> None:
        initiator = sharding.initiator_cluster(
            request.transaction,
            self.mapper,
            use_super_primary=self.tuning.use_super_primary,
            fallback=self.cluster_id,
        )
        if initiator != self.cluster_id:
            self._forward(request, self.primary_pid_of(initiator))
            return
        if not self.is_cluster_primary:
            self._forward(request, self.primary_pid_of(self.cluster_id))
            return
        self.cross.start(request)

    def _forward(self, request: ClientRequest, destination: int) -> None:
        if destination == self.pid:
            return
        self.forwarded_requests += 1
        self.send(destination, request)

    # ------------------------------------------------------------------
    # applying decided slots
    # ------------------------------------------------------------------
    def after_decide(self) -> None:
        """Apply every decided slot that is next in line (in slot order)."""
        for entry in self.log.pop_applicable():
            self._apply(entry)

    def _apply(self, entry) -> None:
        positions = entry.positions or {self.cluster_id: entry.slot}
        parents = {self.cluster_id: self.chain.head_hash}
        proposer = entry.proposer if entry.proposer is not None else self.cluster_id
        item = entry.item
        if isinstance(item, ClientRequest):
            transaction = item.transaction
            # One fused CPU charge for append + execution (charging is
            # associative, so this is exactly two consecutive charges).
            self.charge(self.cost_model.append_cost + self.cost_model.execution_cost)
            result = self.executor.execute(transaction)
            if not result.success:
                self.failed_executions += 1
            block = self._block_for(transaction, positions, proposer, parents)
            self.chain.append(block)
            self.committed_count += 1
            cross = len(positions) > 1
            if cross:
                self.committed_cross_count += 1
            if self._should_reply(proposer):
                self._send_reply(item, success=result.success, cross_shard=cross)
        elif isinstance(item, Noop):
            self.charge(self.cost_model.append_cost)
            block = Block.noop(positions, proposer=proposer, parents=parents)
            self.chain.append(block)
        else:
            self.charge(self.cost_model.append_cost)
            self.on_marker_applied(entry, positions, parents, proposer)

    def _block_for(self, transaction, positions, proposer, parents) -> Block:
        """One :class:`Block` object shared by replicas building the same block.

        Every replica of a cluster decides the same ``(transaction,
        positions, proposer, parents)`` tuple for a slot — and block
        identity excludes parent hashes — so the first replica to apply
        it builds (and hashes) the block and the rest reuse the object
        via a memo on the shared transaction payload.  Parents are part
        of the memo key, so each cluster of a cross-shard transaction
        still materialises a block carrying its own parent reference.
        """
        key = (
            tuple(positions.items())
            if len(positions) == 1
            else tuple(sorted(positions.items())),
            proposer,
            tuple(parents.items()),
        )
        memo = transaction.__dict__.get("_block_memo")
        if memo is not None and memo[0] == key:
            return memo[1]
        block = Block.create(transaction, positions, proposer=proposer, parents=parents)
        object.__setattr__(transaction, "_block_memo", (key, block))
        return block

    def on_marker_applied(self, entry, positions, parents, proposer) -> None:
        """Hook for subclasses that order protocol markers (e.g. AHL's 2PC).

        The base replica never orders markers; fill the slot with a no-op
        block so the chain stays contiguous if one ever appears.
        """
        self.chain.append(Block.noop(positions, proposer=proposer, parents=parents))

    # ------------------------------------------------------------------
    # client replies
    # ------------------------------------------------------------------
    def _should_reply(self, proposer: ClusterId) -> bool:
        if self.cluster.fault_model is FaultModel.BYZANTINE:
            return True
        # Crash model: only the primary of the initiating cluster replies.
        return self.is_cluster_primary and proposer == self.cluster_id

    def _send_reply(self, request: ClientRequest, success: bool, cross_shard: bool) -> None:
        if request.reply_to < 0:
            return
        reply = ClientReply(
            tx_id=request.transaction.tx_id,
            node=self.node_id,
            cluster=self.cluster_id,
            view=self.intra.view,
            success=success,
            cross_shard=cross_shard,
        )
        self.send(request.reply_to, reply)

    def on_cross_shard_abort(self, request: ClientRequest) -> None:
        """Notify the client that a cross-shard transaction was given up on."""
        if request.reply_to < 0:
            return
        reply = ClientReply(
            tx_id=request.transaction.tx_id,
            node=self.node_id,
            cluster=self.cluster_id,
            view=self.intra.view,
            success=False,
            cross_shard=True,
        )
        self.send(request.reply_to, reply)
