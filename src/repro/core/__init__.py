"""SharPer core: replicas, cross-shard consensus, clients, system builder."""

from .client import CLIENT_PID_BASE, ClosedLoopClient, OpenLoopClient
from .cross_shard import ByzantineCrossShardEngine, CrashCrossShardEngine
from .replica import SharPerReplica
from .sharding import (
    build_grouped_system,
    cluster_to_shard,
    initiator_cluster,
    involved_clusters,
    shard_to_cluster,
    super_primary_cluster,
)
from .system import BaseSystem, SharPerSystem

__all__ = [
    "BaseSystem",
    "ByzantineCrossShardEngine",
    "CLIENT_PID_BASE",
    "ClosedLoopClient",
    "CrashCrossShardEngine",
    "OpenLoopClient",
    "SharPerReplica",
    "SharPerSystem",
    "build_grouped_system",
    "cluster_to_shard",
    "initiator_cluster",
    "involved_clusters",
    "shard_to_cluster",
    "super_primary_cluster",
]
