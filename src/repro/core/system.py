"""System builders: wire replicas, network, and state into a runnable system.

:class:`BaseSystem` owns the simulation scaffolding every evaluated system
shares (simulator, network, cost model, account bootstrap, client
spawning); :class:`SharPerSystem` builds the paper's system — one cluster
per shard, each cluster running intra-shard consensus plus the flattened
cross-shard protocol.  The baselines in :mod:`repro.baselines` subclass
:class:`BaseSystem` the same way.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, Mapping

from ..adversary import (
    AdversaryBehavior,
    Coalition,
    SafetyAuditor,
    SafetyReport,
    make_behavior,
)
from ..api.registry import register_system
from ..common.config import SystemConfig
from ..common.errors import ConfigurationError
from ..common.metrics import MetricsCollector
from ..common.types import AccountId, ClientId, ClusterId, FaultModel
from ..ledger.validation import AuditReport, audit_views
from ..ledger.view import ClusterView
from ..sim.costs import CostModel
from ..sim.network import ClusteredLatencyModel, Network
from ..sim.process import Process
from ..sim.simulator import Simulator
from ..storage import SqliteArchive, make_store
from ..storage.base import StateStore
from ..txn.accounts import AccountStore, ShardMapper
from ..txn.transaction import Transaction
from ..txn.workload import WorkloadConfig, WorkloadGenerator
from . import sharding
from .client import CLIENT_PID_BASE, ClosedLoopClient, OpenLoopClient
from .replica import SharPerReplica

__all__ = ["BaseSystem", "SharPerSystem"]


class BaseSystem:
    """Scaffolding shared by SharPer and every baseline system."""

    #: human-readable name used by the benchmark reports.
    name = "base"

    def __init__(
        self,
        config: SystemConfig,
        workload_config: WorkloadConfig,
        seed: int | None = None,
    ) -> None:
        self.config = config
        self.workload_config = workload_config
        self.seed = config.seed if seed is None else seed
        self.sim = Simulator(seed=self.seed)
        cluster_of = {
            int(node): int(cluster.cluster_id)
            for cluster in config.clusters
            for node in cluster.node_ids
        }
        self.latency_model = ClusteredLatencyModel(
            config.performance, cluster_of, rng=self.sim.rng
        )
        self.network = Network(self.sim, self.latency_model)
        self.cost_model = CostModel(config.performance)
        #: mapper used by the workload (one shard per cluster).
        self.workload_mapper = ShardMapper(
            num_shards=config.num_clusters,
            accounts_per_shard=workload_config.accounts_per_shard,
            strategy=workload_config.partition_strategy,
        )
        #: state-store backend every replica uses ("dict" or "columnar").
        self.store_backend = config.storage.store_backend
        #: bootstrapped store per shard; replicas receive cheap clones.
        self._store_cache: dict[int, StateStore] = {}
        #: archival backend checkpoint GC spills pruned blocks into.
        self.archive: SqliteArchive | None = None
        if config.storage.archive_path is not None:
            self.archive = SqliteArchive(config.storage.archive_path)
            self.archive.record_bootstrap(
                {
                    "num_shards": config.num_clusters,
                    "accounts_per_shard": workload_config.accounts_per_shard,
                    "partition_strategy": workload_config.partition_strategy,
                    "initial_balance": workload_config.initial_balance,
                    "num_clients": workload_config.num_clients,
                }
            )
        self.clients: list[ClosedLoopClient | OpenLoopClient] = []
        #: process ids currently running an adversary behaviour; the
        #: safety auditor excludes these from its cross-replica checks.
        self.byzantine_nodes: set[int] = set()
        #: client process ids currently running a *client* behaviour
        #: (clients hold no chain, so the auditor needs no exclusion —
        #: the set exists for introspection and restore bookkeeping).
        self.byzantine_clients: set[int] = set()
        #: coalitions formed during the run (shared cross-cluster scripts).
        self.coalitions: list[Coalition] = []
        #: armed flight recorder (:mod:`repro.obs`); ``None`` when tracing
        #: is off, which keeps every hook at a single ``is None`` check.
        self.recorder = None

    # ------------------------------------------------------------------
    # account bootstrap
    # ------------------------------------------------------------------
    def owner_of(self, account_id: AccountId) -> ClientId:
        """Application client owning ``account_id`` (matches the workload)."""
        return ClientId(account_id % self.workload_config.num_clients)

    def _bootstrap_store(self, mapper: ShardMapper, shard: int) -> StateStore:
        """Store for one replica of ``shard`` with the configured backend.

        The shard is bootstrapped once and cached; each replica gets an
        independent :meth:`~repro.storage.base.StateStore.clone`, which
        for the columnar backend is an array memcpy instead of a
        million ``create_account`` calls per replica.
        """
        key = int(shard)
        cached = self._store_cache.get(key)
        if cached is None:
            cached = make_store(
                self.store_backend,
                shard=shard,
                mapper=mapper,
                initial_balance=self.workload_config.initial_balance,
                owner_of=self.owner_of,
            )
            self._store_cache[key] = cached
        return cached.clone()

    # ------------------------------------------------------------------
    # interface implemented by concrete systems
    # ------------------------------------------------------------------
    def route(self, transaction: Transaction) -> int:
        """Process id the client should submit ``transaction`` to."""
        raise NotImplementedError

    def fallback_route(self, transaction: Transaction, attempt: int) -> int:
        """Alternative submission target used when a request times out."""
        return self.route(transaction)

    @property
    def required_replies(self) -> int:
        """Matching replies a client must collect before accepting a result."""
        raise NotImplementedError

    def views(self) -> dict[ClusterId, ClusterView]:
        """One representative ledger view per cluster (for audits)."""
        raise NotImplementedError

    def stores(self) -> list[AccountStore]:
        """One representative account store per shard."""
        raise NotImplementedError

    def processes(self) -> list[Process]:
        """Every replica process of the system."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # workload and clients
    # ------------------------------------------------------------------
    def make_workload(self, seed_offset: int = 0) -> WorkloadGenerator:
        """Create a workload generator bound to this system's shard layout."""
        return WorkloadGenerator(
            self.workload_config,
            num_shards=self.config.num_clusters,
            seed=self.seed + 7919 * (seed_offset + 1),
        )

    def spawn_clients(
        self,
        count: int,
        metrics: MetricsCollector,
        retry_timeout: float = 2.0,
    ) -> list[ClosedLoopClient]:
        """Create ``count`` closed-loop clients attached to this system."""
        clients = []
        for index in range(count):
            client = ClosedLoopClient(
                pid=CLIENT_PID_BASE + len(self.clients),
                sim=self.sim,
                network=self.network,
                cost_model=self.cost_model,
                workload=self.make_workload(seed_offset=index),
                router=self.route,
                metrics=metrics,
                required_replies=self.required_replies,
                retry_timeout=retry_timeout,
                fallback_targets=self.fallback_route,
            )
            if self.recorder is not None:
                client.recorder = self.recorder
            self.clients.append(client)
            clients.append(client)
        return clients

    def start_clients(self, clients: Iterable[ClosedLoopClient], spread: float = 1e-3) -> None:
        """Start clients with small staggered offsets to avoid lock-step."""
        for index, client in enumerate(clients):
            client.start(initial_delay=spread * (index % 97) / 97.0)

    def drain(self, grace: float = 2.0) -> float:
        """Stop all clients and let in-flight transactions complete.

        Returns the simulated time at which the system went idle.  Call
        this before auditing so that every committed block has reached
        every involved cluster.
        """
        for client in self.clients:
            stop = getattr(client, "stop", None)
            if stop is not None:
                stop()
        return self.sim.run(until=self.sim.now + grace)

    # ------------------------------------------------------------------
    # fault injection (used directly and by repro.api.FaultSchedule)
    # ------------------------------------------------------------------
    def _process_by_pid(self, node_id: int) -> Process:
        for process in self.processes():
            if int(process.pid) == int(node_id):
                return process
        raise ConfigurationError(f"no replica process with id {node_id}")

    def crash_node(self, node_id: int) -> None:
        """Crash a replica."""
        self._process_by_pid(node_id).crash()

    def recover_node(self, node_id: int) -> None:
        """Restart a crashed replica (state retained, as in Section 2.1).

        SharPer replicas additionally run a state-transfer round on
        recovery (:mod:`repro.recovery`): slots decided — and possibly
        garbage-collected — while the node was down are fetched from its
        cluster peers, so the node catches up and rejoins consensus
        instead of staying alive-but-deaf behind an apply gap.
        """
        self._process_by_pid(node_id).recover()

    def crash_primary(self, cluster_id: ClusterId) -> None:
        """Crash the (initial) primary of a cluster."""
        self.crash_node(int(self.config.cluster(cluster_id).primary))

    def make_byzantine(
        self, node_id: int, behavior: "str | AdversaryBehavior" = "silent-primary"
    ) -> AdversaryBehavior:
        """Turn a replica Byzantine by attaching an adversary behaviour.

        ``behavior`` is a registry name (see
        :func:`repro.adversary.available_behaviors`) or a ready-made
        :class:`~repro.adversary.AdversaryBehavior` instance.  The node
        keeps running — unlike a crash it still receives, executes, and
        proposes — but its outbound traffic is filtered by the behaviour.
        Returns the attached instance for introspection.

        A passed-in instance is deep-copied before attaching: fault
        schedules (and the behaviours inside them) are shared across
        scenario variations and worker-pool pickles, so attaching a
        private copy keeps one run's adversary state (RNG draws,
        equivocation forks, counters) from leaking into the next —
        per-seed results stay bit-identical between serial and pooled
        execution.
        """
        process = self._process_by_pid(node_id)
        instance = copy.deepcopy(make_behavior(behavior, seed=self.seed + int(node_id)))
        process.byzantine = True
        process.set_interceptor(instance)
        self.byzantine_nodes.add(int(node_id))
        self.arm_request_guards()
        return instance

    def make_primary_byzantine(
        self, cluster_id: ClusterId, behavior: "str | AdversaryBehavior" = "silent-primary"
    ) -> AdversaryBehavior:
        """Attach an adversary behaviour to a cluster's initial primary."""
        return self.make_byzantine(int(self.config.cluster(cluster_id).primary), behavior)

    def make_client_byzantine(
        self, client_index: int, behavior: "str | AdversaryBehavior" = "duplicating-client"
    ) -> AdversaryBehavior:
        """Turn one spawned client Byzantine by attaching a client behaviour.

        ``client_index`` indexes :attr:`clients` in spawn order;
        ``behavior`` is a registry name (``duplicating-client``,
        ``forged-signature-client``, ``ownership-violator-client``, …) or
        a ready instance — the same contract as :meth:`make_byzantine`,
        including the defensive deep copy.  Every replica's
        :class:`~repro.core.guard.RequestGuard` is armed in the same
        simulator event, so the forged/duplicated/stolen traffic the
        client is about to emit is screened from its very first message.
        """
        try:
            client = self.clients[client_index]
        except IndexError:
            raise ConfigurationError(
                f"no spawned client with index {client_index} "
                f"({len(self.clients)} clients exist)"
            ) from None
        instance = copy.deepcopy(
            make_behavior(behavior, seed=self.seed + 733 * (client_index + 1))
        )
        client.byzantine = True
        client.set_interceptor(instance)
        self.byzantine_clients.add(int(client.pid))
        self.arm_request_guards()
        return instance

    def form_coalition(
        self, members: "Mapping[int, str | AdversaryBehavior]", seed: int = 0
    ) -> Coalition:
        """Bind Byzantine replicas in different clusters to one shared script.

        ``members`` maps replica node ids to the behaviour each member
        runs once a shared target is spotted (see
        :class:`~repro.adversary.Coalition`).  The coalition object — and
        therefore the target set the members coordinate through — is
        constructed here, at fault-event time, so schedules stay
        picklable and pool workers build their own private instance.
        """
        coalition = Coalition(seed=self.seed + 104729 * (seed + 1))
        for node_id, behavior in sorted(members.items()):
            process = self._process_by_pid(node_id)
            member = coalition.member(behavior)
            process.byzantine = True
            process.set_interceptor(member)
            self.byzantine_nodes.add(int(node_id))
        self.coalitions.append(coalition)
        self.arm_request_guards()
        return coalition

    def restore_node(self, node_id: int) -> None:
        """Restore a Byzantine replica or client to correct behaviour."""
        if int(node_id) in self.byzantine_clients:
            for client in self.clients:
                if int(client.pid) == int(node_id):
                    client.set_interceptor(None)
                    client.byzantine = False
            self.byzantine_clients.discard(int(node_id))
            return
        process = self._process_by_pid(node_id)
        process.set_interceptor(None)
        process.byzantine = False
        self.byzantine_nodes.discard(int(node_id))

    def arm_request_guards(self) -> None:
        """Arm the Byzantine-client request guard on every replica.

        Called whenever any adversary (replica, client, or coalition)
        enters the run; idempotent, and a single simulator event arms the
        whole deployment, so screening decisions are identical
        system-wide.  Faultless runs never arm, keeping the hot path at
        one ``is None`` check per client request.
        """
        for process in self.processes():
            arm = getattr(process, "arm_request_guard", None)
            if arm is not None:
                arm(owner_of=self.owner_of)

    def arm_recorder(self, recorder) -> None:
        """Arm the :mod:`repro.obs` flight recorder on the whole deployment.

        Same lazy-arming contract as :meth:`arm_request_guards` and the
        adversary interceptors: one attribute assignment per replica,
        client, and the network fabric.  Untraced runs never call this,
        so every instrumentation hook stays a single ``is None`` check
        and results are bit-identical with tracing off.  Clients spawned
        after arming inherit the recorder in :meth:`spawn_clients`.
        """
        self.recorder = recorder
        self.network.recorder = recorder
        for process in self.processes():
            process.recorder = recorder
        for client in self.clients:
            client.recorder = recorder

    # ------------------------------------------------------------------
    # correctness checks
    # ------------------------------------------------------------------
    def audit(self) -> AuditReport:
        """Run the ledger consistency audit over the representative views."""
        return audit_views(self.views())

    def safety_audit(self) -> SafetyReport:
        """Cross-replica safety audit (no fork, conservation, at-most-once).

        Complements :meth:`audit` — which checks one representative view
        per cluster — by comparing **every correct replica**, excluding
        the nodes currently marked Byzantine.  Run after :meth:`drain`.
        """
        return SafetyAuditor(self).audit()

    def total_balance(self) -> int:
        """Sum of balances across all shards (conservation invariant)."""
        return sum(store.total_balance() for store in self.stores())

    def expected_total_balance(self) -> int:
        """Total balance minted at bootstrap."""
        return (
            self.workload_config.initial_balance
            * self.workload_config.accounts_per_shard
            * self.config.num_clusters
        )


@register_system("sharper")
class SharPerSystem(BaseSystem):
    """The paper's system: sharded clusters + flattened cross-shard consensus."""

    name = "SharPer"

    def __init__(
        self,
        config: SystemConfig,
        workload_config: WorkloadConfig,
        seed: int | None = None,
    ) -> None:
        super().__init__(config, workload_config, seed)
        self.replicas: dict[int, SharPerReplica] = {}
        for cluster in config.clusters:
            shard = sharding.cluster_to_shard(cluster.cluster_id)
            for node in cluster.node_ids:
                store = self._bootstrap_store(self.workload_mapper, shard)
                replica = SharPerReplica(
                    node_id=node,
                    cluster=cluster,
                    config=config,
                    mapper=self.workload_mapper,
                    store=store,
                    sim=self.sim,
                    network=self.network,
                    cost_model=self.cost_model,
                )
                if self.archive is not None:
                    replica.chain.archive = self.archive
                self.replicas[int(node)] = replica

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, transaction: Transaction) -> int:
        """Send the request to the primary of the initiating cluster."""
        initiator = sharding.initiator_cluster(
            transaction,
            self.workload_mapper,
            use_super_primary=self.config.tuning.use_super_primary,
        )
        return int(self.config.cluster(initiator).primary)

    def fallback_route(self, transaction: Transaction, attempt: int) -> int:
        """On retry, try the next node of the initiating cluster (view change)."""
        initiator = sharding.initiator_cluster(
            transaction,
            self.workload_mapper,
            use_super_primary=self.config.tuning.use_super_primary,
        )
        nodes = self.config.cluster(initiator).node_ids
        return int(nodes[attempt % len(nodes)])

    @property
    def required_replies(self) -> int:
        """1 reply in the crash model, ``f + 1`` matching replies for Byzantine."""
        if self.config.fault_model is FaultModel.CRASH:
            return 1
        return self.config.clusters[0].f + 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def processes(self) -> list[Process]:
        return list(self.replicas.values())

    def replicas_of(self, cluster_id: ClusterId) -> list[SharPerReplica]:
        """All replicas of one cluster."""
        return [
            self.replicas[int(node)]
            for node in self.config.cluster(cluster_id).node_ids
        ]

    def primary_of(self, cluster_id: ClusterId) -> SharPerReplica:
        """The initial primary replica of a cluster."""
        return self.replicas[int(self.config.cluster(cluster_id).primary)]

    def representative_of(self, cluster_id: ClusterId) -> SharPerReplica:
        """The replica whose chain and store the audits report for a cluster.

        Correct (non-crashed, non-Byzantine) replicas are preferred; ties
        break toward the longest chain.  :meth:`views` and :meth:`stores`
        both use this rule so a post-fault audit compares a chain and
        store from the same replica.
        """
        replicas = self.replicas_of(cluster_id)
        candidates = [
            replica
            for replica in replicas
            if not replica.crashed and not replica.byzantine
        ] or [replica for replica in replicas if not replica.crashed] or replicas
        return max(candidates, key=lambda replica: replica.chain.height)

    def views(self) -> dict[ClusterId, ClusterView]:
        """Longest ledger view per cluster (non-crashed replicas preferred)."""
        return {
            cluster.cluster_id: self.representative_of(cluster.cluster_id).chain
            for cluster in self.config.clusters
        }

    def all_views(self) -> dict[ClusterId, list[ClusterView]]:
        """Every replica's view, grouped by cluster (for agreement checks)."""
        return {
            cluster.cluster_id: [
                replica.chain for replica in self.replicas_of(cluster.cluster_id)
            ]
            for cluster in self.config.clusters
        }

    def stores(self) -> list[AccountStore]:
        return [
            self.representative_of(cluster.cluster_id).store
            for cluster in self.config.clusters
        ]

    def committed_per_cluster(self) -> dict[ClusterId, int]:
        """Committed block count per cluster (from the representative views)."""
        return {cluster_id: view.height for cluster_id, view in self.views().items()}
