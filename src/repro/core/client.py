"""Simulated application clients.

The paper drives each system with "an increasing number of clients
running on a single VM, until the end-to-end throughput is saturated"
(Section 4).  :class:`ClosedLoopClient` reproduces that methodology: each
client keeps one request outstanding, waits for the required number of
matching replies (1 in the crash model, ``f + 1`` in the Byzantine
model), records the end-to-end latency, and immediately issues the next
request.  Offered load is therefore controlled by the number of clients.

:class:`OpenLoopClient` issues requests at a fixed rate regardless of
replies; it is used by a few tests and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..common.metrics import MetricsCollector
from ..consensus.messages import ClientReply, ClientRequest
from ..sim.costs import CostModel
from ..sim.network import Network
from ..sim.process import Process
from ..sim.simulator import Simulator
from ..txn.transaction import Transaction
from ..txn.workload import WorkloadGenerator

__all__ = ["ClosedLoopClient", "OpenLoopClient"]

#: Process ids at or above this value are client processes.
CLIENT_PID_BASE = 1_000_000


@dataclass
class _Outstanding:
    """Book-keeping for one in-flight request."""

    transaction: Transaction
    submitted_at: float
    cross_shard: bool
    target: int
    repliers: set[int] = field(default_factory=set)
    successes: int = 0
    resend_timer: object | None = None
    attempts: int = 0


class _BaseClient(Process):
    """Shared machinery for the closed- and open-loop clients."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        network: Network,
        cost_model: CostModel,
        workload: WorkloadGenerator,
        router: Callable[[Transaction], int],
        metrics: MetricsCollector,
        required_replies: int = 1,
        retry_timeout: float = 1.0,
        fallback_targets: Callable[[Transaction, int], int] | None = None,
    ) -> None:
        super().__init__(pid, sim, network, cost_model, name=f"client-{pid}")
        self.workload = workload
        self.router = router
        self.metrics = metrics
        self.required_replies = required_replies
        self.retry_timeout = retry_timeout
        self.fallback_targets = fallback_targets
        self._outstanding: dict[str, _Outstanding] = {}
        self.completed = 0
        self.failed = 0
        self.resubmissions = 0

    # ------------------------------------------------------------------
    # issuing requests
    # ------------------------------------------------------------------
    def _submit(self, transaction: Transaction) -> None:
        request = ClientRequest(
            transaction=transaction,
            client=transaction.client,
            timestamp=self.sim.now,
            reply_to=self.pid,
        )
        target = self.router(transaction)
        cross = len(transaction.involved_shards(self.workload.mapper)) > 1
        state = _Outstanding(
            transaction=transaction,
            submitted_at=self.sim.now,
            cross_shard=cross,
            target=target,
        )
        self._outstanding[transaction.tx_id] = state
        self.metrics.record_submission()
        self.send(target, request)
        state.resend_timer = self.set_timer(self.retry_timeout, self._resend, transaction.tx_id)

    def _resend(self, tx_id: str) -> None:
        state = self._outstanding.get(tx_id)
        if state is None:
            return
        state.attempts += 1
        self.resubmissions += 1
        if self.fallback_targets is not None:
            state.target = self.fallback_targets(state.transaction, state.attempts)
        request = ClientRequest(
            transaction=state.transaction,
            client=state.transaction.client,
            timestamp=state.submitted_at,
            reply_to=self.pid,
        )
        self.send(state.target, request)
        state.resend_timer = self.set_timer(self.retry_timeout, self._resend, tx_id)

    # ------------------------------------------------------------------
    # handling replies
    # ------------------------------------------------------------------
    def on_message(self, message: object, src: int) -> None:
        if not isinstance(message, ClientReply):
            return
        state = self._outstanding.get(message.tx_id)
        if state is None:
            return
        state.repliers.add(src)
        if message.success:
            state.successes += 1
        if len(state.repliers) < self.required_replies:
            return
        # Completed: enough distinct replicas confirmed execution.
        if state.resend_timer is not None:
            state.resend_timer.cancel()
        del self._outstanding[message.tx_id]
        self.completed += 1
        if state.successes == 0:
            self.failed += 1
        self.metrics.record_commit(
            tx_id=message.tx_id,
            submitted_at=state.submitted_at,
            committed_at=self.sim.now,
            cross_shard=state.cross_shard,
        )
        self.on_request_complete()

    def on_request_complete(self) -> None:
        """Hook invoked when a request finishes (closed loop issues the next)."""

    @property
    def outstanding(self) -> int:
        """Number of requests currently awaiting replies."""
        return len(self._outstanding)


class ClosedLoopClient(_BaseClient):
    """A client that always keeps exactly one request in flight."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stopped = False

    def start(self, initial_delay: float = 0.0) -> None:
        """Schedule the first request."""
        self.sim.schedule(initial_delay, self._issue_next)

    def stop(self) -> None:
        """Stop issuing new requests (the in-flight request still completes)."""
        self._stopped = True

    def _issue_next(self) -> None:
        if self.crashed or self._stopped:
            return
        self._submit(self.workload.next_transaction(timestamp=self.sim.now))

    def on_request_complete(self) -> None:
        self._issue_next()


class OpenLoopClient(_BaseClient):
    """A client that issues requests at a fixed rate (requests/second)."""

    def __init__(self, *args, rate: float = 100.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self._stopped = False

    def start(self, initial_delay: float = 0.0) -> None:
        """Start issuing requests at the configured rate."""
        self.sim.schedule(initial_delay, self._tick)

    def stop(self) -> None:
        """Stop issuing new requests (in-flight requests still complete)."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped or self.crashed:
            return
        self._submit(self.workload.next_transaction(timestamp=self.sim.now))
        self.sim.schedule(1.0 / self.rate, self._tick)
