"""Simulated application clients.

The paper drives each system with "an increasing number of clients
running on a single VM, until the end-to-end throughput is saturated"
(Section 4).  :class:`ClosedLoopClient` reproduces that methodology: each
client keeps one request outstanding, waits for the required number of
matching replies (1 in the crash model, ``f + 1`` in the Byzantine
model), records the end-to-end latency, and immediately issues the next
request.  Offered load is therefore controlled by the number of clients.

:class:`OpenLoopClient` issues requests at a fixed rate regardless of
replies; it is used by a few tests and the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..common.metrics import MetricsCollector
from ..consensus.messages import ClientReply, ClientRequest
from ..sim.costs import CostModel
from ..sim.network import Network
from ..sim.process import Process
from ..sim.simulator import Simulator
from ..txn.transaction import Transaction
from ..txn.workload import WorkloadGenerator

__all__ = ["ClosedLoopClient", "OpenLoopClient"]

#: Process ids at or above this value are client processes.
CLIENT_PID_BASE = 1_000_000


@dataclass(slots=True)
class _Outstanding:
    """Book-keeping for one in-flight request."""

    transaction: Transaction
    submitted_at: float
    cross_shard: bool
    target: int
    repliers: set[int] = field(default_factory=set)
    successes: int = 0
    #: current resend deadline; stale queue entries are skipped lazily.
    resend_deadline: float = 0.0
    attempts: int = 0


class _BaseClient(Process):
    """Shared machinery for the closed- and open-loop clients."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        network: Network,
        cost_model: CostModel,
        workload: WorkloadGenerator,
        router: Callable[[Transaction], int],
        metrics: MetricsCollector,
        required_replies: int = 1,
        retry_timeout: float = 1.0,
        fallback_targets: Callable[[Transaction, int], int] | None = None,
    ) -> None:
        super().__init__(pid, sim, network, cost_model, name=f"client-{pid}")
        self.workload = workload
        self.router = router
        self.metrics = metrics
        self.required_replies = required_replies
        self.retry_timeout = retry_timeout
        self.fallback_targets = fallback_targets
        self._outstanding: dict[str, _Outstanding] = {}
        self.completed = 0
        self.failed = 0
        self.resubmissions = 0
        self.register_handler(ClientReply, self._on_reply)
        # One rolling retry timer per client instead of one simulator
        # timer per request: deadlines are armed in monotonic order, so
        # the timer tracks the earliest pending deadline and lazily skips
        # entries whose request completed or was already resent.
        self._retry_deadlines: deque[tuple[float, str]] = deque()
        self._retry_timer = None

    # ------------------------------------------------------------------
    # issuing requests
    # ------------------------------------------------------------------
    def _submit(self, transaction: Transaction) -> None:
        request = ClientRequest(
            transaction=transaction,
            client=transaction.client,
            timestamp=self.sim.now,
            reply_to=self.pid,
        )
        target = self.router(transaction)
        cross = len(transaction.involved_shards(self.workload.mapper)) > 1
        state = _Outstanding(
            transaction=transaction,
            submitted_at=self.sim.now,
            cross_shard=cross,
            target=target,
        )
        self._outstanding[transaction.tx_id] = state
        self.metrics.record_submission()
        recorder = self.recorder
        if recorder is not None:
            recorder.submit(self.sim.now, transaction.tx_id, self.pid, cross)
        self.send(target, request)
        self._schedule_resend(state, transaction.tx_id)
        if recorder is not None:
            # The submit context must not leak into whatever runs next on
            # this client (timer callbacks, the next closed-loop submit
            # issued from a reply dispatch): only the request sent above
            # parents to the submit event.
            recorder.clear_context()

    def _schedule_resend(self, state: _Outstanding, tx_id: str) -> None:
        deadline = self.sim.now + self.retry_timeout
        state.resend_deadline = deadline
        self._retry_deadlines.append((deadline, tx_id))
        if self._retry_timer is None or not self._retry_timer.active:
            self._arm_retry_timer(deadline)

    def _arm_retry_timer(self, deadline: float) -> None:
        # Single live timer per client: cancel any pending one (e.g. armed
        # re-entrantly by a resend inside _on_retry_timer) before arming.
        if self._retry_timer is not None and self._retry_timer.active:
            self._retry_timer.cancel()
        delay = deadline - self.sim.now
        self._retry_timer = self.set_timer(delay if delay > 0.0 else 0.0, self._on_retry_timer)

    def _on_retry_timer(self) -> None:
        # The fired timer is spent; clear the handle so resends scheduled
        # inside the loop below may arm a fresh one (the final _arm call
        # cancels it again, keeping exactly one live timer).
        self._retry_timer = None
        now = self.sim.now
        deadlines = self._retry_deadlines
        outstanding = self._outstanding
        while deadlines:
            deadline, tx_id = deadlines[0]
            state = outstanding.get(tx_id)
            if state is None or deadline != state.resend_deadline:
                # Completed, or superseded by a later resend of the same tx.
                deadlines.popleft()
                continue
            if deadline > now:
                self._arm_retry_timer(deadline)
                return
            deadlines.popleft()
            self._resend(state, tx_id)
        # Deque drained; a timer armed re-entrantly (if any) stays owned.

    def _resend(self, state: _Outstanding, tx_id: str) -> None:
        state.attempts += 1
        self.resubmissions += 1
        if self.fallback_targets is not None:
            state.target = self.fallback_targets(state.transaction, state.attempts)
        request = ClientRequest(
            transaction=state.transaction,
            client=state.transaction.client,
            timestamp=state.submitted_at,
            reply_to=self.pid,
        )
        self.send(state.target, request)
        self._schedule_resend(state, tx_id)

    # ------------------------------------------------------------------
    # handling replies (table-driven; see Process.on_message)
    # ------------------------------------------------------------------
    def _on_reply(self, message: ClientReply, src: int) -> None:
        state = self._outstanding.get(message.tx_id)
        if state is None:
            return
        state.repliers.add(src)
        if message.success:
            state.successes += 1
        if len(state.repliers) < self.required_replies:
            return
        # Completed: enough distinct replicas confirmed execution.  The
        # rolling retry timer skips the stale deadline entry lazily.
        del self._outstanding[message.tx_id]
        self.completed += 1
        if state.successes == 0:
            self.failed += 1
        self.metrics.record_commit(
            tx_id=message.tx_id,
            submitted_at=state.submitted_at,
            committed_at=self.sim.now,
            cross_shard=state.cross_shard,
        )
        recorder = self.recorder
        if recorder is not None:
            recorder.phase(self.sim.now, message.tx_id, "reply", self.pid)
        self.on_request_complete()

    def on_request_complete(self) -> None:
        """Hook invoked when a request finishes (closed loop issues the next)."""

    @property
    def outstanding(self) -> int:
        """Number of requests currently awaiting replies."""
        return len(self._outstanding)


class ClosedLoopClient(_BaseClient):
    """A client that always keeps exactly one request in flight."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stopped = False

    def start(self, initial_delay: float = 0.0) -> None:
        """Schedule the first request."""
        self.sim.schedule(initial_delay, self._issue_next)

    def stop(self) -> None:
        """Stop issuing new requests (the in-flight request still completes)."""
        self._stopped = True

    def _issue_next(self) -> None:
        if self.crashed or self._stopped:
            return
        self._submit(self.workload.next_transaction(timestamp=self.sim.now))

    def on_request_complete(self) -> None:
        self._issue_next()


class OpenLoopClient(_BaseClient):
    """A client that issues requests at a fixed rate (requests/second)."""

    def __init__(self, *args, rate: float = 100.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self._stopped = False

    def start(self, initial_delay: float = 0.0) -> None:
        """Start issuing requests at the configured rate."""
        self.sim.schedule(initial_delay, self._tick)

    def stop(self) -> None:
        """Stop issuing new requests (in-flight requests still complete)."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped or self.crashed:
            return
        self._submit(self.workload.next_transaction(timestamp=self.sim.now))
        self.sim.schedule(1.0 / self.rate, self._tick)
