"""Shard/cluster topology helpers and the super-primary policy.

In SharPer data shard ``d_i`` is replicated over cluster ``p_i``
(Section 2.2), so shard and cluster identifiers coincide.  This module
provides the small amount of topology glue the rest of the core needs:

* mapping a transaction to the clusters that must participate in its
  consensus;
* the *super primary* rule (Section 3.2): among the clusters involved in
  a cross-shard transaction, the cluster with the smallest identifier
  initiates the consensus, which removes most conflicts between
  concurrent cross-shard transactions;
* the Section 3.4 optimisation for clustered networks is provided by
  :func:`repro.common.config.plan_clusters_grouped` and wrapped here in
  :func:`build_grouped_system` for convenience.
"""

from __future__ import annotations

from typing import Sequence

from ..common.config import (
    ClusterConfig,
    NodeGroup,
    PerformanceModel,
    ProtocolTuning,
    SystemConfig,
    plan_clusters_grouped,
)
from ..common.errors import ConfigurationError
from ..common.types import ClusterId, NodeId, ShardId
from ..txn.accounts import ShardMapper
from ..txn.transaction import Transaction

__all__ = [
    "shard_to_cluster",
    "cluster_to_shard",
    "involved_clusters",
    "super_primary_cluster",
    "initiator_cluster",
    "build_grouped_system",
]


def shard_to_cluster(shard: ShardId) -> ClusterId:
    """Cluster that maintains ``shard`` (identity mapping, ``d_i ↔ p_i``)."""
    return ClusterId(int(shard))


def cluster_to_shard(cluster: ClusterId) -> ShardId:
    """Shard maintained by ``cluster`` (identity mapping)."""
    return ShardId(int(cluster))


def involved_clusters(transaction: Transaction, mapper: ShardMapper) -> tuple[ClusterId, ...]:
    """Sorted tuple of clusters whose shards ``transaction`` accesses."""
    return tuple(
        sorted(shard_to_cluster(shard) for shard in transaction.involved_shards(mapper))
    )


def super_primary_cluster(involved: Sequence[ClusterId]) -> ClusterId:
    """Cluster whose primary initiates a cross-shard transaction.

    "any transaction that accesses every cluster in P = {p_i, p_j, p_k, ..}
    is initiated by cluster i where i = min(i, j, k, ...)" (Section 3.2).
    """
    if not involved:
        raise ConfigurationError("a transaction must involve at least one cluster")
    return min(involved)


def initiator_cluster(
    transaction: Transaction,
    mapper: ShardMapper,
    use_super_primary: bool = True,
    fallback: ClusterId | None = None,
) -> ClusterId:
    """Cluster that should initiate consensus for ``transaction``.

    Intra-shard transactions are initiated by their own cluster.  For
    cross-shard transactions the super-primary rule picks the minimum
    involved cluster; with the rule disabled, ``fallback`` (e.g. the
    cluster a client happens to be attached to) is used if it is involved,
    otherwise the minimum involved cluster.
    """
    involved = involved_clusters(transaction, mapper)
    if len(involved) == 1:
        return involved[0]
    if use_super_primary:
        return super_primary_cluster(involved)
    if fallback is not None and fallback in involved:
        return fallback
    return involved[0]


def build_grouped_system(
    groups: Sequence[NodeGroup],
    fault_model,
    performance: PerformanceModel | None = None,
    tuning: ProtocolTuning | None = None,
    seed: int = 0,
) -> SystemConfig:
    """Build a :class:`SystemConfig` using the Section 3.4 optimisation.

    Each group is clustered independently using its own ``f``; the
    resulting clusters are concatenated into one system.  Groups too small
    to form a cluster contribute no clusters (their nodes would be used as
    passive replicas in a real deployment).
    """
    plan = plan_clusters_grouped(groups, fault_model)
    clusters: list[ClusterConfig] = []
    next_node = 0
    next_cluster = 0
    for group in groups:
        cluster_count = plan[group.name]
        size = fault_model.min_cluster_size(group.f)
        for _ in range(cluster_count):
            node_ids = tuple(NodeId(next_node + offset) for offset in range(size))
            next_node += size
            clusters.append(
                ClusterConfig(
                    cluster_id=ClusterId(next_cluster),
                    node_ids=node_ids,
                    fault_model=fault_model,
                    f=group.f,
                )
            )
            next_cluster += 1
    if not clusters:
        raise ConfigurationError("no group is large enough to form a cluster")
    return SystemConfig(
        clusters=tuple(clusters),
        fault_model=fault_model,
        performance=performance or PerformanceModel(),
        tuning=tuning or ProtocolTuning(),
        seed=seed,
    )
