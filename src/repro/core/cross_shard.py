"""The flattened cross-shard consensus protocols (Algorithms 1 and 2).

Cross-shard transactions are ordered directly among all — and only — the
involved clusters, with no reference committee and no commit protocol
layered on top of intra-shard consensus.  Two variants exist:

* :class:`CrashCrossShardEngine` (Algorithm 1): the initiator primary
  multicasts a ``propose``; every node of every involved cluster replies
  with an ``accept``; the initiator collects ``f + 1`` matching accepts
  per involved cluster and multicasts a ``commit``.
* :class:`ByzantineCrossShardEngine` (Algorithm 2): same three phases, but
  accepts and commits are multicast all-to-all among the involved nodes
  and quorums are ``2f + 1`` per cluster.

Implementation interpretation (documented in DESIGN.md): consensus
instances are pipelined over per-cluster sequence numbers instead of
being chained on the literal hash of the previous block.  The position a
cluster reserves for a cross-shard transaction is assigned by that
cluster's primary and echoed by its backups; the accept/commit quorums of
the paper are unchanged.  Non-overlapping cross-shard transactions
therefore proceed fully in parallel, and transactions that share clusters
are serialised per cluster by the (single) slot assigner — the role the
super-primary plays in the paper.

With batching armed (``ProtocolTuning.batch_size > 1``) the ordered item
may be a :class:`~repro.consensus.messages.RequestBatch` instead of a
bare request: one propose/accept/commit exchange, one position vector,
and one signature then order many client transactions at once.  The
engines stay item-agnostic — only the duplicate checks and the
Byzantine-client screen iterate batch members (see
:mod:`repro.consensus.batching`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..common.errors import ConsensusError
from ..common.types import ClusterId, NodeId
from ..consensus.base import HandlerTable
from ..consensus.batching import member_requests, members_all_committed, screen_members
from ..consensus.log import Noop, item_digest
from ..consensus.messages import (
    ClientRequest,
    CrossAccept,
    CrossAcceptB,
    CrossCommit,
    CrossCommitB,
    CrossPropose,
    CrossProposeB,
)
from ..sim.simulator import Timer
from .guard import ADMIT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .replica import SharPerReplica

__all__ = ["CrashCrossShardEngine", "ByzantineCrossShardEngine"]


# ----------------------------------------------------------------------
# crash-only clusters — Algorithm 1
# ----------------------------------------------------------------------
@dataclass
class _CrashState:
    """Initiator-side bookkeeping for one cross-shard transaction."""

    request: ClientRequest
    digest: str
    involved: tuple[ClusterId, ...]
    attempt: int = 0
    votes: dict[ClusterId, set[NodeId]] = field(default_factory=dict)
    slots: dict[ClusterId, int] = field(default_factory=dict)
    decided: bool = False
    timer: Timer | None = None


def _compact_cross_state(states: dict, assigned_slots: dict[str, int], slot: int) -> None:
    """Garbage-collect decided per-instance state below a stable checkpoint.

    Shared by both cross-shard engines: decided instances whose local
    slot fell at or below the checkpoint can never be consulted again
    (stale proposals are answered through the ledger's transaction
    index), so their vote sets and slot assignments are dropped.
    Undecided instances stay — their retry timers are still live.
    """
    for digest in [d for d, s in assigned_slots.items() if s <= slot]:
        del assigned_slots[digest]
        state = states.get(digest)
        if state is not None and state.decided:
            del states[digest]


def _is_noop_filled(host, slot: int) -> bool:
    """Whether ``slot`` was resolved to a gap-filling no-op locally.

    Distinguishes the one tolerated decide conflict — a view change
    no-op-filled the slot before a late cross-shard commit arrived —
    from a genuine fork (two real decisions for one slot), which must
    keep raising loudly.
    """
    entry = host.log.entry(slot)
    return entry is not None and isinstance(entry.item, Noop)


class CrashCrossShardEngine(HandlerTable):
    """Algorithm 1: flattened cross-shard consensus for crash-only nodes."""

    HANDLERS = {
        CrossPropose: "_on_propose",
        CrossAccept: "_on_accept",
        CrossCommit: "_on_commit",
    }

    def __init__(self, host: "SharPerReplica") -> None:
        self.host = host
        self._build_handlers()
        self._states: dict[str, _CrashState] = {}
        self._assigned_slots: dict[str, int] = {}
        self.initiated = 0
        self.committed = 0
        self.retries = 0
        self.aborted = 0
        #: commits dropped because the local slot was resolved otherwise.
        self.late_commits = 0

    # ------------------------------------------------------------------
    # initiator side
    # ------------------------------------------------------------------
    def start(self, request: ClientRequest) -> None:
        """Initiate consensus on a cross-shard transaction (primary only)."""
        digest = item_digest(request)
        if self.host.log.decided_slot_of(digest) is not None:
            # Duplicate submission of an already-committed transaction.
            return
        if self._committed_before_checkpoint(request):
            return
        involved = self.host.involved_clusters_of(request.transaction)
        state = self._states.get(digest)
        if state is None:
            slot = self._reserve_local_slot(digest, request)
            state = _CrashState(request=request, digest=digest, involved=involved)
            state.slots[self.host.cluster_id] = slot
            state.votes[self.host.cluster_id] = {self.host.node_id}
            self._states[digest] = state
            self.initiated += 1
            recorder = self.host.recorder
            if recorder is not None:
                now = self.host.now
                pid = int(self.host.node_id)
                for member in member_requests(request):
                    recorder.phase(now, member.transaction.tx_id, "cross_start", pid)
                if recorder.causal_armed:
                    # The initiator's own vote (counted above) never fires
                    # the quorum by itself: every involved cluster needs a
                    # full cross_quorum, so decided is always False here.
                    recorder.quorum_vote(now, pid, "cross_accept", digest, pid, False)
        self._broadcast_propose(state)
        self._arm_retry_timer(state)

    def _reserve_local_slot(self, digest: str, request: ClientRequest) -> int:
        slot = self._assigned_slots.get(digest)
        if slot is None:
            slot = self.host.log.allocate()
            self._assigned_slots[digest] = slot
        self.host.log.record_pending(slot, digest, request, proposer=self.host.cluster_id)
        return slot

    def _broadcast_propose(self, state: _CrashState) -> None:
        message = CrossPropose(
            digest=state.digest,
            request=state.request,
            involved=state.involved,
            initiator_cluster=self.host.cluster_id,
            initiator_slot=state.slots[self.host.cluster_id],
            attempt=state.attempt,
        )
        self.host.multicast_nodes(self.host.nodes_of_clusters(state.involved), message)

    def _arm_retry_timer(self, state: _CrashState) -> None:
        if state.timer is not None:
            state.timer.cancel()
        state.timer = self.host.set_timer(
            self.host.tuning.conflict_retry_delay * (state.attempt + 1),
            self._on_retry_timeout,
            state.digest,
        )

    def _on_retry_timeout(self, digest: str) -> None:
        state = self._states.get(digest)
        if state is None or state.decided:
            return
        if state.attempt >= self.host.tuning.max_conflict_retries:
            self.aborted += 1
            self.host.on_cross_shard_abort(state.request)
            return
        state.attempt += 1
        self.retries += 1
        self._broadcast_propose(state)
        self._arm_retry_timer(state)

    # ------------------------------------------------------------------
    # message handling (table-driven; see HandlerTable.handle)
    # ------------------------------------------------------------------
    def _committed_before_checkpoint(self, request) -> int | None:
        """Chain position of an already-committed item, if any.

        The log's digest index is truncated below the low-water mark, so
        a (very) stale duplicate of a checkpointed transaction must be
        caught through the ledger's retained transaction index instead —
        re-running the instance would double-commit it.  A batch counts
        as committed only when *every* member did (a partially settled
        batch must stay orderable; apply-time skips handle the rest),
        and answers with the representative member's position.
        """
        chain = getattr(self.host, "chain", None)
        if chain is None:
            return None
        if not members_all_committed(chain, request):
            return None
        return chain.position_of_tx(request.transaction.tx_id)

    def _on_propose(self, message: CrossPropose, src: int) -> None:
        guard = self.host.request_guard
        if guard is not None and screen_members(guard, message.request) != ADMIT:
            # Byzantine-client defence at every involved cluster: a
            # forged/replayed/ownership-violating request must not
            # gather accept votes anywhere — not even at clusters that
            # never saw the original client submission.
            return
        digest = message.digest
        decided_slot = self.host.log.decided_slot_of(digest)
        if decided_slot is None:
            decided_slot = self._committed_before_checkpoint(message.request)
        if decided_slot is not None:
            # Already committed here: answer idempotently so a retrying
            # initiator can complete.
            reply = CrossAccept(
                digest=digest,
                cluster=self.host.cluster_id,
                node=self.host.node_id,
                slot=decided_slot,
                attempt=message.attempt,
            )
            self.host.send_to(src, reply)
            return
        slot: int | None
        if message.initiator_cluster == self.host.cluster_id:
            # Backup of the initiator cluster: the initiator already fixed
            # the local position.
            slot = message.initiator_slot
            self._try_record_pending(slot, digest, message.request)
        elif self.host.is_cluster_primary:
            slot = self._assigned_slots.get(digest)
            if slot is None:
                slot = self.host.log.allocate()
                self._assigned_slots[digest] = slot
            self._try_record_pending(slot, digest, message.request)
        else:
            # Backup of a remote involved cluster: it agrees with whatever
            # position its own primary reserves (learned at commit time).
            slot = None
        reply = CrossAccept(
            digest=digest,
            cluster=self.host.cluster_id,
            node=self.host.node_id,
            slot=slot,
            attempt=message.attempt,
        )
        self.host.send_to(src, reply)

    def _try_record_pending(self, slot: int, digest: str, request: object) -> None:
        try:
            self.host.log.record_pending(slot, digest, request, proposer=self.host.cluster_id)
        except ConsensusError:
            # The slot is already taken by a different digest; the commit
            # message will resolve the final assignment.
            pass

    def _on_accept(self, message: CrossAccept, src: int) -> None:
        state = self._states.get(message.digest)
        if state is None or state.decided:
            return
        votes = state.votes.setdefault(message.cluster, set())
        votes.add(NodeId(src))
        if message.slot is not None:
            state.slots.setdefault(message.cluster, message.slot)
        self._maybe_commit(state)
        recorder = self.host.recorder
        if recorder is not None and recorder.causal_armed:
            recorder.quorum_vote(
                self.host.now, int(self.host.node_id), "cross_accept",
                message.digest, int(src), state.decided,
            )

    def _maybe_commit(self, state: _CrashState) -> None:
        if state.decided:
            return
        for cluster in state.involved:
            quorum = self.host.config.cluster(cluster).cross_quorum
            if len(state.votes.get(cluster, ())) < quorum:
                return
            if cluster not in state.slots:
                return
        state.decided = True
        if state.timer is not None:
            state.timer.cancel()
        self.committed += 1
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for member in member_requests(state.request):
                recorder.phase(now, member.transaction.tx_id, "cross_prepared", pid)
        positions = dict(state.slots)
        commit = CrossCommit(
            digest=state.digest,
            request=state.request,
            positions=tuple(sorted(positions.items())),
            proposer=self.host.cluster_id,
            attempt=state.attempt,
        )
        self.host.multicast_nodes(self.host.nodes_of_clusters(state.involved), commit)
        try:
            self.host.log.decide(
                positions[self.host.cluster_id],
                state.digest,
                state.request,
                positions=positions,
                proposer=self.host.cluster_id,
            )
        except ConsensusError:
            if not _is_noop_filled(self.host, positions[self.host.cluster_id]):
                raise
            self.late_commits += 1
            return
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for member in member_requests(state.request):
                recorder.phase(now, member.transaction.tx_id, "decided", pid)
        self.host.after_decide()

    def _on_commit(self, message: CrossCommit, src: int) -> None:
        positions = dict(message.positions)
        my_slot = positions.get(self.host.cluster_id)
        if my_slot is None:
            return
        try:
            self.host.log.decide(
                my_slot,
                message.digest,
                message.request,
                positions=positions,
                proposer=message.proposer,
            )
        except ConsensusError:
            # The local slot was no-op filled by a view change that
            # outran this commit.  Drop the late commit instead of
            # crashing; the client's retry re-runs the instance at a
            # fresh position.  Anything else is a genuine fork and
            # keeps raising.
            if not _is_noop_filled(self.host, my_slot):
                raise
            self.late_commits += 1
            return
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for member in member_requests(message.request):
                recorder.phase(now, member.transaction.tx_id, "decided", pid)
        self.host.after_decide()

    # ------------------------------------------------------------------
    # checkpoint compaction (repro.recovery)
    # ------------------------------------------------------------------
    def compact_below(self, slot: int) -> None:
        """Drop bookkeeping for instances decided at or below ``slot``."""
        _compact_cross_state(self._states, self._assigned_slots, slot)


# ----------------------------------------------------------------------
# Byzantine clusters — Algorithm 2
# ----------------------------------------------------------------------
@dataclass
class _ByzState:
    """Per-node bookkeeping for one cross-shard transaction (Algorithm 2)."""

    digest: str
    request: ClientRequest | None = None
    involved: tuple[ClusterId, ...] = ()
    initiator_cluster: ClusterId | None = None
    attempt: int = 0
    #: accept votes: cluster → slot → voters.
    accept_votes: dict[ClusterId, dict[int, set[NodeId]]] = field(default_factory=dict)
    #: slot confirmed (2f+1 accepts) per cluster.
    confirmed_slots: dict[ClusterId, int] = field(default_factory=dict)
    #: slot announced by each cluster's primary (trusted provisionally).
    announced_slots: dict[ClusterId, int] = field(default_factory=dict)
    #: commit votes: cluster → voters.
    commit_votes: dict[ClusterId, set[NodeId]] = field(default_factory=dict)
    accept_sent: bool = False
    commit_sent: bool = False
    decided: bool = False
    timer: Timer | None = None


class ByzantineCrossShardEngine(HandlerTable):
    """Algorithm 2: flattened cross-shard consensus for Byzantine nodes."""

    HANDLERS = {
        CrossProposeB: "_on_propose",
        CrossAcceptB: "_on_accept",
        CrossCommitB: "_on_commit",
    }

    def __init__(self, host: "SharPerReplica") -> None:
        self.host = host
        self._build_handlers()
        self._states: dict[str, _ByzState] = {}
        self._assigned_slots: dict[str, int] = {}
        self.initiated = 0
        self.committed = 0
        self.retries = 0
        self.aborted = 0
        #: commits dropped because the local slot was resolved otherwise.
        self.late_commits = 0

    # ------------------------------------------------------------------
    # initiator side
    # ------------------------------------------------------------------
    def start(self, request: ClientRequest) -> None:
        """Initiate consensus on a cross-shard transaction (primary only)."""
        digest = item_digest(request)
        if self.host.log.decided_slot_of(digest) is not None:
            return
        chain = getattr(self.host, "chain", None)
        if chain is not None and members_all_committed(chain, request):
            # Committed below the checkpoint low-water mark; the digest
            # index no longer knows it, but the ledger index does.
            return
        involved = self.host.involved_clusters_of(request.transaction)
        state = self._state(digest)
        if state.request is None:
            slot = self._assigned_slots.get(digest)
            if slot is None:
                slot = self.host.log.allocate()
                self._assigned_slots[digest] = slot
            state.request = request
            state.involved = involved
            state.initiator_cluster = self.host.cluster_id
            state.announced_slots[self.host.cluster_id] = slot
            self._try_record_pending(slot, digest, request)
            self.initiated += 1
            recorder = self.host.recorder
            if recorder is not None:
                now = self.host.now
                pid = int(self.host.node_id)
                for member in member_requests(request):
                    recorder.phase(now, member.transaction.tx_id, "cross_start", pid)
        propose = CrossProposeB(
            digest=digest,
            request=request,
            involved=involved,
            initiator_cluster=self.host.cluster_id,
            initiator_slot=state.announced_slots[self.host.cluster_id],
            attempt=state.attempt,
        )
        self.host.multicast_nodes(self.host.nodes_of_clusters(involved), propose)
        self._send_accept(state)
        self._arm_retry_timer(state)

    def _state(self, digest: str) -> _ByzState:
        state = self._states.get(digest)
        if state is None:
            state = _ByzState(digest=digest)
            self._states[digest] = state
        return state

    def _try_record_pending(self, slot: int, digest: str, request: object) -> None:
        try:
            self.host.log.record_pending(slot, digest, request, proposer=self.host.cluster_id)
        except ConsensusError:
            pass

    def _arm_retry_timer(self, state: _ByzState) -> None:
        if state.timer is not None:
            state.timer.cancel()
        state.timer = self.host.set_timer(
            self.host.tuning.conflict_retry_delay * (state.attempt + 1),
            self._on_retry_timeout,
            state.digest,
        )

    def _on_retry_timeout(self, digest: str) -> None:
        state = self._states.get(digest)
        if state is None or state.decided or state.request is None:
            return
        if state.initiator_cluster != self.host.cluster_id or not self.host.is_cluster_primary:
            return
        if state.attempt >= self.host.tuning.max_conflict_retries:
            self.aborted += 1
            self.host.on_cross_shard_abort(state.request)
            return
        state.attempt += 1
        self.retries += 1
        self.start(state.request)

    # ------------------------------------------------------------------
    # message handling (table-driven; see HandlerTable.handle)
    # ------------------------------------------------------------------
    def _on_propose(self, message: CrossProposeB, src: int) -> None:
        expected = self.host.primary_pid_of(message.initiator_cluster)
        if src != expected:
            # Only the initiator cluster's primary may propose.
            return
        guard = self.host.request_guard
        if guard is not None and screen_members(guard, message.request) != ADMIT:
            # Same Byzantine-client screen the crash engine applies: no
            # correct node of any involved cluster accepts a forged,
            # replayed, or ownership-violating request (nor a batch
            # carrying one), so the quorum can never form.
            return
        state = self._state(message.digest)
        state.request = message.request
        state.involved = message.involved
        state.initiator_cluster = message.initiator_cluster
        state.attempt = max(state.attempt, message.attempt)
        state.announced_slots[message.initiator_cluster] = message.initiator_slot
        if self.host.log.decided_slot_of(message.digest) is not None:
            return
        chain = getattr(self.host, "chain", None)
        if chain is not None and members_all_committed(chain, message.request):
            # Committed below the checkpoint low-water mark already.
            return
        my_cluster = self.host.cluster_id
        if my_cluster == message.initiator_cluster:
            state.announced_slots[my_cluster] = message.initiator_slot
            self._try_record_pending(message.initiator_slot, message.digest, message.request)
        elif self.host.is_cluster_primary and my_cluster not in state.announced_slots:
            slot = self._assigned_slots.get(message.digest)
            if slot is None:
                slot = self.host.log.allocate()
                self._assigned_slots[message.digest] = slot
            state.announced_slots[my_cluster] = slot
            self._try_record_pending(slot, message.digest, message.request)
        self._send_accept(state)

    def _send_accept(self, state: _ByzState) -> None:
        """Multicast this node's accept once it knows its cluster's slot."""
        if state.accept_sent or state.request is None:
            return
        my_cluster = self.host.cluster_id
        slot = state.announced_slots.get(my_cluster)
        if slot is None:
            # Backups wait until their cluster primary announces the slot
            # (via its own accept message).
            return
        state.accept_sent = True
        self._try_record_pending(slot, state.digest, state.request)
        accept = CrossAcceptB(
            digest=state.digest,
            cluster=my_cluster,
            node=self.host.node_id,
            slot=slot,
            attempt=state.attempt,
        )
        self.host.multicast_nodes(self.host.nodes_of_clusters(state.involved), accept)
        self._register_accept(state, my_cluster, slot, self.host.node_id)

    def _on_accept(self, message: CrossAcceptB, src: int) -> None:
        state = self._state(message.digest)
        if message.slot is None:
            return
        # Backups learn their cluster's slot from their primary's accept.
        if (
            message.cluster == self.host.cluster_id
            and src == self.host.primary_pid_of(message.cluster)
        ):
            state.announced_slots.setdefault(message.cluster, message.slot)
            self._send_accept(state)
        self._register_accept(state, message.cluster, message.slot, NodeId(src))

    def _register_accept(
        self, state: _ByzState, cluster: ClusterId, slot: int, voter: NodeId
    ) -> None:
        per_cluster = state.accept_votes.setdefault(cluster, {})
        voters = per_cluster.setdefault(slot, set())
        voters.add(voter)
        quorum = self.host.config.cluster(cluster).cross_quorum
        if len(voters) >= quorum:
            state.confirmed_slots.setdefault(cluster, slot)
        self._maybe_send_commit(state)
        recorder = self.host.recorder
        if recorder is not None and recorder.causal_armed:
            recorder.quorum_vote(
                self.host.now, int(self.host.node_id), "cross_accept",
                state.digest, int(voter), state.commit_sent,
            )

    def _maybe_send_commit(self, state: _ByzState) -> None:
        if state.commit_sent or state.decided or state.request is None or not state.involved:
            return
        if any(cluster not in state.confirmed_slots for cluster in state.involved):
            return
        state.commit_sent = True
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for member in member_requests(state.request):
                recorder.phase(now, member.transaction.tx_id, "cross_prepared", pid)
        positions = {cluster: state.confirmed_slots[cluster] for cluster in state.involved}
        commit = CrossCommitB(
            digest=state.digest,
            cluster=self.host.cluster_id,
            node=self.host.node_id,
            positions=tuple(sorted(positions.items())),
            attempt=state.attempt,
        )
        self.host.multicast_nodes(self.host.nodes_of_clusters(state.involved), commit)
        self._register_commit(state, self.host.cluster_id, self.host.node_id)

    def _on_commit(self, message: CrossCommitB, src: int) -> None:
        state = self._state(message.digest)
        for cluster, slot in message.positions:
            state.confirmed_slots.setdefault(cluster, slot)
        if not state.involved:
            state.involved = tuple(cluster for cluster, _ in message.positions)
        self._register_commit(state, message.cluster, NodeId(src))

    def _register_commit(self, state: _ByzState, cluster: ClusterId, voter: NodeId) -> None:
        voters = state.commit_votes.setdefault(cluster, set())
        voters.add(voter)
        self._maybe_decide(state)
        recorder = self.host.recorder
        if recorder is not None and recorder.causal_armed:
            recorder.quorum_vote(
                self.host.now, int(self.host.node_id), "cross_commit",
                state.digest, int(voter), state.decided,
            )

    def _maybe_decide(self, state: _ByzState) -> None:
        if state.decided or state.request is None or not state.involved:
            return
        for cluster in state.involved:
            quorum = self.host.config.cluster(cluster).cross_quorum
            if len(state.commit_votes.get(cluster, ())) < quorum:
                return
            if cluster not in state.confirmed_slots:
                return
        state.decided = True
        if state.timer is not None:
            state.timer.cancel()
        self.committed += 1
        positions = {cluster: state.confirmed_slots[cluster] for cluster in state.involved}
        my_slot = positions.get(self.host.cluster_id)
        if my_slot is None:
            return
        proposer = (
            state.initiator_cluster
            if state.initiator_cluster is not None
            else self.host.cluster_id
        )
        try:
            self.host.log.decide(
                my_slot,
                state.digest,
                state.request,
                positions=positions,
                proposer=proposer,
            )
        except ConsensusError:
            # Local slot no-op filled by a view change that outran the
            # commit quorum; drop the late decision — the client's
            # retry re-runs the instance.  A conflicting *real*
            # decision is a genuine fork and keeps raising.
            if not _is_noop_filled(self.host, my_slot):
                raise
            self.late_commits += 1
            return
        recorder = self.host.recorder
        if recorder is not None:
            now = self.host.now
            pid = int(self.host.node_id)
            for member in member_requests(state.request):
                recorder.phase(now, member.transaction.tx_id, "decided", pid)
        self.host.after_decide()

    # ------------------------------------------------------------------
    # checkpoint compaction (repro.recovery)
    # ------------------------------------------------------------------
    def compact_below(self, slot: int) -> None:
        """Drop bookkeeping for instances decided at or below ``slot``."""
        _compact_cross_state(self._states, self._assigned_slots, slot)
