"""repro — a reproduction of SharPer (SIGMOD 2021).

SharPer shards a permissioned blockchain over network clusters: nodes are
partitioned into clusters of ``2f+1`` (crash) or ``3f+1`` (Byzantine)
nodes, each cluster maintains one data shard and one view of a DAG
ledger, intra-shard transactions are ordered by Paxos/PBFT inside one
cluster, and cross-shard transactions are ordered by a flattened protocol
run directly among the involved clusters.

Public entry points
-------------------
* :mod:`repro.api` — the unified experiment surface: declarative
  :class:`~repro.api.Scenario`, timed :class:`~repro.api.FaultSchedule`,
  and the pluggable system registry (:func:`~repro.api.register_system`).
* :mod:`repro.adversary` — scripted Byzantine behaviours (equivocation,
  silence, delays, tampering), the outbound message-interception hook,
  and the cross-replica :class:`~repro.adversary.SafetyAuditor`.
* :mod:`repro.recovery` — checkpointing + log compaction (bounded
  memory for arbitrarily long runs), state-transfer catch-up for
  recovered/lagging replicas, and checkpoint-anchored termination of
  in-flight cross-shard instances at view changes.
* :class:`repro.core.SharPerSystem` — build and run the paper's system.
* :mod:`repro.baselines` — APR, Fast Paxos, FaB, and AHL comparison systems.
* :mod:`repro.bench` — the harness regenerating every figure of the paper.
"""

from .adversary import (
    AdversaryBehavior,
    SafetyAuditor,
    SafetyReport,
    available_behaviors,
    get_behavior,
    make_behavior,
    register_behavior,
)
from .common import FaultModel, PerformanceModel, ProtocolTuning, SystemConfig
from .core import SharPerSystem
from .txn import Transaction, Transfer, WorkloadConfig, WorkloadGenerator
from .api import (
    DeploymentSpec,
    FaultSchedule,
    Scenario,
    ScenarioResult,
    available_systems,
    get_system,
    register_system,
)

__version__ = "1.2.0"

__all__ = [
    "AdversaryBehavior",
    "DeploymentSpec",
    "FaultModel",
    "FaultSchedule",
    "SafetyAuditor",
    "SafetyReport",
    "PerformanceModel",
    "ProtocolTuning",
    "Scenario",
    "ScenarioResult",
    "SharPerSystem",
    "SystemConfig",
    "Transaction",
    "Transfer",
    "WorkloadConfig",
    "WorkloadGenerator",
    "available_behaviors",
    "available_systems",
    "get_behavior",
    "get_system",
    "make_behavior",
    "register_behavior",
    "register_system",
    "__version__",
]
