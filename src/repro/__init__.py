"""repro — a reproduction of SharPer (SIGMOD 2021).

SharPer shards a permissioned blockchain over network clusters: nodes are
partitioned into clusters of ``2f+1`` (crash) or ``3f+1`` (Byzantine)
nodes, each cluster maintains one data shard and one view of a DAG
ledger, intra-shard transactions are ordered by Paxos/PBFT inside one
cluster, and cross-shard transactions are ordered by a flattened protocol
run directly among the involved clusters.

Public entry points
-------------------
* :class:`repro.core.SharPerSystem` — build and run the paper's system.
* :mod:`repro.baselines` — APR, Fast Paxos, FaB, and AHL comparison systems.
* :mod:`repro.bench` — the harness regenerating every figure of the paper.
"""

from .common import FaultModel, PerformanceModel, ProtocolTuning, SystemConfig
from .core import SharPerSystem
from .txn import Transaction, Transfer, WorkloadConfig, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "FaultModel",
    "PerformanceModel",
    "ProtocolTuning",
    "SharPerSystem",
    "SystemConfig",
    "Transaction",
    "Transfer",
    "WorkloadConfig",
    "WorkloadGenerator",
    "__version__",
]
