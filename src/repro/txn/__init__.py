"""Account-based transaction model, state store, execution, workloads."""

from .accounts import Account, AccountStore, ShardMapper
from .execution import ExecutionResult, TransactionExecutor
from .transaction import Transaction, Transfer, new_tx_id
from .workload import WorkloadConfig, WorkloadGenerator

__all__ = [
    "Account",
    "AccountStore",
    "ExecutionResult",
    "ShardMapper",
    "Transaction",
    "TransactionExecutor",
    "Transfer",
    "WorkloadConfig",
    "WorkloadGenerator",
    "new_tx_id",
]
