"""Synthetic workload generation for the accounting application.

The paper's experiments control two knobs (Section 4):

* the percentage of cross-shard transactions (0%, 10%, 20%, 80%, 100%);
* the number of shards each cross-shard transaction touches (two,
  randomly chosen, in Figures 6 and 7; cross-shard transactions also
  touch two clusters in the scalability experiment of Figure 8).

:class:`WorkloadGenerator` reproduces that: it draws intra-shard
transactions uniformly over the shards and, with the configured
probability, emits a cross-shard transfer between accounts of distinct,
randomly chosen shards.  Account popularity within a shard is uniform by
default, optionally skewed by a *two-level hot-spot model*: a
``hot_account_fraction`` of each shard's accounts (the "hot set", the
lowest-numbered accounts) absorbs a ``hot_access_fraction`` of the
accesses, and the remaining accesses are uniform over the whole shard.
This is a flat hot/cold split, not a Zipf (power-law) distribution —
e.g. ``hot_account_fraction=0.1, hot_access_fraction=0.9`` gives the
classic "90% of traffic on 10% of accounts" contention profile.
Generation is seeded and fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from ..common.errors import ConfigurationError
from ..common.types import AccountId, ClientId, ShardId, TxType
from .accounts import ShardMapper
from .transaction import Transaction, Transfer

__all__ = ["WorkloadConfig", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic workload."""

    #: fraction of transactions that are cross-shard (0.0 – 1.0).
    cross_shard_fraction: float = 0.0
    #: number of distinct shards each cross-shard transaction touches.
    shards_per_cross_tx: int = 2
    #: number of accounts stored in each shard.
    accounts_per_shard: int = 1024
    #: initial balance of every account.
    initial_balance: int = 1_000_000
    #: transferred amount range (inclusive).
    min_amount: int = 1
    max_amount: int = 10
    #: number of distinct application clients issuing requests.
    num_clients: int = 64
    #: two-level hot-spot skew: fraction of each shard's accounts forming
    #: the hot set (0 = no hot set, uniform selection).  At least one
    #: account is hot whenever this is non-zero.
    hot_account_fraction: float = 0.0
    #: probability that an access targets the hot set (the remaining
    #: accesses draw uniformly over the whole shard, hot accounts
    #: included).  Only meaningful with ``hot_account_fraction > 0``.
    hot_access_fraction: float = 0.0
    #: how account ids map to shards: ``"range"`` (contiguous ranges,
    #: the default) or ``"modulo"`` (round-robin striping).  See
    #: :class:`repro.txn.accounts.ShardMapper`.
    partition_strategy: str = "range"

    def __post_init__(self) -> None:
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ConfigurationError("cross_shard_fraction must be within [0, 1]")
        if self.shards_per_cross_tx < 2:
            raise ConfigurationError("a cross-shard transaction touches at least 2 shards")
        if self.accounts_per_shard < 2:
            raise ConfigurationError("need at least 2 accounts per shard")
        if self.min_amount <= 0 or self.max_amount < self.min_amount:
            raise ConfigurationError("invalid transfer amount range")
        if self.num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if not 0.0 <= self.hot_account_fraction <= 1.0:
            raise ConfigurationError("hot_account_fraction must be within [0, 1]")
        if not 0.0 <= self.hot_access_fraction <= 1.0:
            raise ConfigurationError("hot_access_fraction must be within [0, 1]")
        if self.partition_strategy not in ShardMapper.STRATEGIES:
            raise ConfigurationError(
                f"unknown partition strategy {self.partition_strategy!r}; "
                f"expected one of {ShardMapper.STRATEGIES}"
            )


class WorkloadGenerator:
    """Deterministic stream of transactions matching a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig, num_shards: int, seed: int = 0) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if config.cross_shard_fraction > 0 and num_shards < config.shards_per_cross_tx:
            raise ConfigurationError(
                f"cannot generate {config.shards_per_cross_tx}-shard transactions "
                f"with only {num_shards} shards"
            )
        self.config = config
        self.num_shards = num_shards
        self.mapper = ShardMapper(
            num_shards, config.accounts_per_shard, strategy=config.partition_strategy
        )
        self.rng = random.Random(seed)
        self.seed = seed
        self.generated = 0
        self.generated_cross = 0

    def _next_tx_id(self, client: ClientId) -> str:
        """Deterministic per-generator transaction id.

        Unlike the process-global :func:`repro.txn.new_tx_id` counter,
        ids derived from the generator's seed and its own sequence are
        identical no matter how many runs preceded this one in the same
        process — which is what makes a scenario's results bit-identical
        between serial execution and a ``--jobs`` worker pool.  Generators
        of one simulation get distinct seeds, so ids never collide.
        """
        return f"tx-{client}-s{self.seed}-{self.generated}"

    # ------------------------------------------------------------------
    # account selection
    # ------------------------------------------------------------------
    def _pick_account(self, shard: ShardId, exclude: AccountId | None = None) -> AccountId:
        """Pick an account of ``shard`` under the two-level hot-spot model.

        With probability ``hot_access_fraction`` the account is drawn
        uniformly from the shard's hot set (its first
        ``hot_account_fraction`` of accounts); otherwise uniformly from
        the whole shard.
        """
        accounts = self.mapper.accounts_in_shard(shard)
        config = self.config
        hot_count = max(1, int(len(accounts) * config.hot_account_fraction)) if config.hot_account_fraction else 0
        # The range strategy keeps the historical draw over raw ids so
        # seeded workloads stay bit-identical; striped (modulo) shards
        # draw an index into the progression instead.
        contiguous = accounts.step == 1
        for _ in range(16):
            if hot_count and self.rng.random() < config.hot_access_fraction:
                candidate = AccountId(accounts[self.rng.randrange(hot_count)])
            elif contiguous:
                candidate = AccountId(self.rng.randrange(accounts.start, accounts.stop))
            else:
                candidate = AccountId(accounts[self.rng.randrange(len(accounts))])
            if candidate != exclude:
                return candidate
        # Extremely small shards can collide repeatedly; fall back linearly.
        for raw in accounts:
            if raw != exclude:
                return AccountId(raw)
        raise ConfigurationError(f"shard {shard} has no alternative account")

    def owner_of(self, account_id: AccountId) -> ClientId:
        """Application client that owns ``account_id``.

        Ownership follows a fixed modulo assignment so that the generator
        can always produce transactions whose signer owns the source
        account (the validity condition of the accounting application).
        The system builder bootstraps the account stores with the same
        assignment.
        """
        return ClientId(account_id % self.config.num_clients)

    def _pick_amount(self) -> int:
        return self.rng.randint(self.config.min_amount, self.config.max_amount)

    # ------------------------------------------------------------------
    # transaction generation
    # ------------------------------------------------------------------
    def next_intra_shard(self, timestamp: float = 0.0, shard: ShardId | None = None) -> Transaction:
        """Generate an intra-shard transfer within ``shard`` (random if None)."""
        if shard is None:
            shard = ShardId(self.rng.randrange(self.num_shards))
        source = self._pick_account(shard)
        destination = self._pick_account(shard, exclude=source)
        client = self.owner_of(source)
        transaction = Transaction.multi_transfer(
            client=client,
            transfers=[Transfer(source=source, destination=destination, amount=self._pick_amount())],
            timestamp=timestamp,
            tx_id=self._next_tx_id(client),
        )
        self.generated += 1
        return transaction

    def next_cross_shard(self, timestamp: float = 0.0) -> Transaction:
        """Generate a cross-shard transaction over ``shards_per_cross_tx`` shards.

        All transfers share one source account (owned by the issuing
        client) and move funds to one account in each of the other chosen
        shards, so the transaction touches exactly the chosen shards.
        """
        shard_ids = self.rng.sample(range(self.num_shards), self.config.shards_per_cross_tx)
        shards = [ShardId(shard) for shard in shard_ids]
        source = self._pick_account(shards[0])
        transfers = []
        for shard in shards[1:]:
            destination = self._pick_account(shard)
            transfers.append(
                Transfer(source=source, destination=destination, amount=self._pick_amount())
            )
        client = self.owner_of(source)
        transaction = Transaction.multi_transfer(
            client=client,
            transfers=transfers,
            timestamp=timestamp,
            tx_id=self._next_tx_id(client),
        )
        self.generated += 1
        self.generated_cross += 1
        return transaction

    def next_transaction(self, timestamp: float = 0.0) -> Transaction:
        """Generate the next transaction of the configured mix."""
        if self.config.cross_shard_fraction and self.rng.random() < self.config.cross_shard_fraction:
            return self.next_cross_shard(timestamp)
        return self.next_intra_shard(timestamp)

    def stream(self, count: int, timestamp: float = 0.0) -> Iterator[Transaction]:
        """Yield ``count`` transactions."""
        for _ in range(count):
            yield self.next_transaction(timestamp)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def observed_cross_fraction(self) -> float:
        """Fraction of generated transactions that were cross-shard."""
        if not self.generated:
            return 0.0
        return self.generated_cross / self.generated

    def classify(self, transaction: Transaction) -> TxType:
        """Classify a transaction under this workload's shard mapping."""
        return transaction.tx_type(self.mapper)
