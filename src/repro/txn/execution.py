"""Transaction validation and execution against a shard's account store.

Each cluster replicates one shard.  An intra-shard transaction touches
only local accounts and is validated/executed entirely by the cluster.
A cross-shard transaction touches accounts from several shards; each
involved cluster validates and applies only the operations that touch its
own shard (the global consensus protocol guarantees every involved
cluster applies the transaction at the same position, which is what makes
this safe — Section 3.2/3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ValidationError
from ..common.types import ShardId
from .accounts import AccountStore, ShardMapper
from .transaction import Transaction, Transfer

__all__ = ["ExecutionResult", "TransactionExecutor"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one transaction on one shard."""

    tx_id: str
    success: bool
    applied_transfers: int
    error: str | None = None


class TransactionExecutor:
    """Validates and applies transactions to a single shard's state."""

    def __init__(
        self,
        store: AccountStore,
        mapper: ShardMapper,
        shard: ShardId,
        enforce_ownership: bool = True,
    ) -> None:
        self.store = store
        self.mapper = mapper
        self.shard = shard
        self.enforce_ownership = enforce_ownership
        self.executed = 0
        self.failed = 0

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _classify_local(
        self, transaction: Transaction
    ) -> list[tuple[Transfer, bool, bool]]:
        """Transfers touching this shard, with per-endpoint locality flags.

        Classified once per execution; validation and application both
        consume the same list, so each endpoint's shard is looked up
        exactly once.
        """
        shard = self.shard
        shard_of = self.mapper.shard_of
        local: list[tuple[Transfer, bool, bool]] = []
        for transfer in transaction.transfers:
            source_local = shard_of(transfer.source) == shard
            destination_local = shard_of(transfer.destination) == shard
            if source_local or destination_local:
                local.append((transfer, source_local, destination_local))
        return local

    def _local_transfers(self, transaction: Transaction) -> list[Transfer]:
        """Transfers with at least one endpoint in this shard."""
        return [transfer for transfer, _, _ in self._classify_local(transaction)]

    def validate(
        self,
        transaction: Transaction,
        classified: list[tuple[Transfer, bool, bool]] | None = None,
    ) -> None:
        """Raise :class:`ValidationError` if the local part is invalid.

        Checks ownership of source accounts stored locally and that each
        locally-stored source holds sufficient balance for the sum of its
        outgoing transfers in this transaction.
        """
        if classified is None:
            classified = self._classify_local(transaction)
        outgoing: dict[int, int] = {}
        for transfer, source_local, _ in classified:
            if not source_local:
                continue
            account = self.store.account(transfer.source)
            if self.enforce_ownership and account.owner != transaction.client:
                raise ValidationError(
                    f"client {transaction.client} does not own account {transfer.source}"
                )
            outgoing[transfer.source] = outgoing.get(transfer.source, 0) + transfer.amount
        for account_id, total in outgoing.items():
            balance = self.store.balance(account_id)
            if balance < total:
                raise ValidationError(
                    f"account {account_id} holds {balance} < {total} required by {transaction.tx_id}"
                )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, transaction: Transaction) -> ExecutionResult:
        """Validate then apply the local part of ``transaction``.

        Execution is all-or-nothing for the local part: if validation
        fails nothing is applied and a failed result is returned.
        """
        classified = self._classify_local(transaction)
        try:
            self.validate(transaction, classified)
        except ValidationError as exc:
            self.failed += 1
            return ExecutionResult(
                tx_id=transaction.tx_id,
                success=False,
                applied_transfers=0,
                error=str(exc),
            )
        applied = 0
        requester = transaction.client if self.enforce_ownership else None
        for transfer, source_local, destination_local in classified:
            if source_local:
                self.store.withdraw(transfer.source, transfer.amount, requester=requester)
                applied += 1
            if destination_local:
                self.store.deposit(transfer.destination, transfer.amount)
                applied += 1
        self.executed += 1
        return ExecutionResult(
            tx_id=transaction.tx_id,
            success=True,
            applied_transfers=applied,
        )
