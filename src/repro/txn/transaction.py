"""Transaction types for the accounting application.

A transaction is a signed client request containing one or more asset
transfers (the paper: "Clients of the application can initiate
transactions to transfer assets from one or more of their accounts to
other accounts"; "A transaction might read and write several records").

Whether a transaction is *intra-shard* or *cross-shard* is not intrinsic
to the transaction — it depends on how accounts are mapped to shards — so
the classification helpers take a :class:`~repro.txn.accounts.ShardMapper`.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Iterable

from ..common.crypto import KeyPair, Signature, digest
from ..common.errors import ValidationError
from ..common.types import AccountId, ClientId, ShardId, TxType
from .accounts import ShardMapper

__all__ = ["Transfer", "Transaction", "new_tx_id"]

_tx_counter = itertools.count()


def new_tx_id(client: ClientId) -> str:
    """Generate a unique, human-readable transaction identifier."""
    return f"tx-{client}-{next(_tx_counter)}"


@dataclass(frozen=True, slots=True)
class Transfer:
    """Move ``amount`` units from ``source`` to ``destination``."""

    source: AccountId
    destination: AccountId
    amount: int

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValidationError("transfer amount must be positive")
        if self.source == self.destination:
            raise ValidationError("transfer source and destination must differ")

    @property
    def accounts(self) -> tuple[AccountId, AccountId]:
        """Accounts read/written by this transfer."""
        return (self.source, self.destination)


@dataclass(frozen=True)
class Transaction:
    """A client request: an ordered list of transfers plus metadata.

    ``timestamp`` is the client-assigned request timestamp ``τ_c`` used in
    the paper's ``⟨REQUEST, tx, τ_c, c⟩σ_c`` message.
    """

    tx_id: str
    client: ClientId
    transfers: tuple[Transfer, ...]
    timestamp: float = 0.0
    signature: Signature | None = None

    def __post_init__(self) -> None:
        if not self.transfers:
            raise ValidationError("a transaction must contain at least one transfer")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def accounts(self) -> frozenset[AccountId]:
        """All accounts read or written by the transaction (memoised)."""
        cached = self.__dict__.get("_accounts")
        if cached is None:
            cached = frozenset(
                account for transfer in self.transfers for account in transfer.accounts
            )
            object.__setattr__(self, "_accounts", cached)
        return cached

    @property
    def read_set(self) -> frozenset[AccountId]:
        """Accounts whose balance is read (sources, for the owner check)."""
        return frozenset(transfer.source for transfer in self.transfers)

    @property
    def write_set(self) -> frozenset[AccountId]:
        """Accounts whose balance is written (sources and destinations)."""
        return self.accounts

    def payload_digest(self) -> str:
        """Digest ``D(m)`` over the transaction body (excludes signature).

        SHA-256 over a flat, unambiguous encoding of the body fields,
        memoised on the (frozen) instance — every replica that orders or
        executes the transaction reuses the cached value.
        """
        cached = self.__dict__.get("_payload_digest")
        if cached is not None:
            return cached
        transfers = ";".join(
            f"{int(t.source)}>{int(t.destination)}:{t.amount}" for t in self.transfers
        )
        value = hashlib.sha256(
            f"TX|{self.tx_id}|{int(self.client)}|{transfers}|{self.timestamp!r}".encode()
        ).hexdigest()
        # Cache on the instance; the dataclass is frozen so use object.__setattr__.
        object.__setattr__(self, "_payload_digest", value)
        return value

    # ------------------------------------------------------------------
    # sharding classification
    # ------------------------------------------------------------------
    def involved_shards(self, mapper: ShardMapper) -> frozenset[ShardId]:
        """Shards whose records this transaction accesses.

        Memoised per mapper instance: a request is classified by its
        client, by the routing layer, and by every replica that orders it
        — all against the same shard mapper — so the set is computed once
        and the cached value is shared wherever the payload travels.
        """
        cached = self.__dict__.get("_involved_shards")
        if cached is not None and cached[0] is mapper:
            return cached[1]
        shards = mapper.shards_of(self.accounts)
        object.__setattr__(self, "_involved_shards", (mapper, shards))
        return shards

    def tx_type(self, mapper: ShardMapper) -> TxType:
        """Whether the transaction is intra- or cross-shard under ``mapper``."""
        return TxType.INTRA_SHARD if len(self.involved_shards(mapper)) == 1 else TxType.CROSS_SHARD

    def is_cross_shard(self, mapper: ShardMapper) -> bool:
        """Convenience predicate for :meth:`tx_type`."""
        return self.tx_type(mapper) is TxType.CROSS_SHARD

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def transfer(
        cls,
        client: ClientId,
        source: AccountId,
        destination: AccountId,
        amount: int,
        timestamp: float = 0.0,
        keypair: KeyPair | None = None,
        tx_id: str | None = None,
    ) -> "Transaction":
        """Build a single-transfer transaction, optionally signed."""
        return cls.multi_transfer(
            client,
            [Transfer(source=source, destination=destination, amount=amount)],
            timestamp=timestamp,
            keypair=keypair,
            tx_id=tx_id,
        )

    @classmethod
    def multi_transfer(
        cls,
        client: ClientId,
        transfers: Iterable[Transfer],
        timestamp: float = 0.0,
        keypair: KeyPair | None = None,
        tx_id: str | None = None,
    ) -> "Transaction":
        """Build a multi-transfer transaction, optionally signed."""
        transfers = tuple(transfers)
        tx_id = tx_id or new_tx_id(client)
        unsigned = cls(
            tx_id=tx_id,
            client=client,
            transfers=transfers,
            timestamp=timestamp,
            signature=None,
        )
        if keypair is None:
            return unsigned
        signature = keypair.sign(unsigned.payload_digest())
        return cls(
            tx_id=tx_id,
            client=client,
            transfers=transfers,
            timestamp=timestamp,
            signature=signature,
        )

    def verify_signature(self) -> bool:
        """Check the client signature, if present."""
        if self.signature is None:
            return False
        if self.signature.forged:
            return False
        if self.signature.signer != self.client:
            return False
        return self.signature.payload_digest == digest(self.payload_digest())
