"""Account-based state store for the blockchain accounting application.

The paper's evaluation implements "a simple blockchain-based accounting
application where the data records are client accounts" (Section 4) and
adopts the account-based transaction model (Section 2.4): the system
tracks the balance of every account and a transfer is valid only if the
source account is owned by the requesting client and holds enough funds.

:class:`AccountStore` is the per-shard key-value state each cluster
replicates.  :class:`ShardMapper` maps accounts to data shards; a
workload-aware mapper would minimise cross-shard transactions, but the
evaluation controls the cross-shard fraction directly, so the default is
a simple modulo/range partitioning.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..common.errors import (
    ConfigurationError,
    InsufficientBalanceError,
    UnknownAccountError,
    ValidationError,
)
from ..common.types import AccountId, ClientId, ShardId

__all__ = ["Account", "AccountStore", "ShardMapper"]


@dataclass
class Account:
    """One client account: a balance and the public key of its owner.

    The paper models an account as the pair ``(amount, PK)``.  We store
    the owner's client id in place of the public key; ownership checks
    compare it against the transaction's signer.
    """

    account_id: AccountId
    owner: ClientId
    balance: int

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise ValidationError(f"account {self.account_id} cannot start with negative balance")


class ShardMapper:
    """Maps account ids to data shards ``d_1 .. d_|P|``.

    The default strategy partitions the account id space into ``|P|``
    contiguous ranges, which keeps "account i lives in shard i // span"
    easy to reason about in tests, and mirrors how a workload-aware
    partitioner would co-locate related accounts.
    """

    def __init__(self, num_shards: int, accounts_per_shard: int) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if accounts_per_shard <= 0:
            raise ConfigurationError("accounts_per_shard must be positive")
        self.num_shards = num_shards
        self.accounts_per_shard = accounts_per_shard
        self._total_accounts = num_shards * accounts_per_shard

    @property
    def total_accounts(self) -> int:
        """Total number of accounts across all shards."""
        return self._total_accounts

    def shard_of(self, account_id: AccountId) -> ShardId:
        """Shard that stores ``account_id``."""
        if not 0 <= account_id < self._total_accounts:
            raise UnknownAccountError(f"account {account_id} is outside the keyspace")
        return ShardId(account_id // self.accounts_per_shard)

    def accounts_in_shard(self, shard: ShardId) -> range:
        """The contiguous range of account ids stored in ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(f"unknown shard {shard}")
        start = shard * self.accounts_per_shard
        return range(start, start + self.accounts_per_shard)

    def shards_of(self, account_ids: Iterable[AccountId]) -> frozenset[ShardId]:
        """Set of shards touched by a group of accounts."""
        return frozenset(self.shard_of(account_id) for account_id in account_ids)


class AccountStore:
    """Mutable balance table for (a shard of) the accounting application."""

    def __init__(self, shard: ShardId | None = None) -> None:
        self.shard = shard
        self._accounts: dict[AccountId, Account] = {}
        self.version = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def create_account(self, account_id: AccountId, owner: ClientId, balance: int) -> Account:
        """Create a new account; fails if the id already exists."""
        if account_id in self._accounts:
            raise ValidationError(f"account {account_id} already exists")
        account = Account(account_id=account_id, owner=owner, balance=balance)
        self._accounts[account_id] = account
        return account

    @classmethod
    def bootstrap(
        cls,
        shard: ShardId,
        mapper: ShardMapper,
        initial_balance: int,
        owner_of: Mapping[AccountId, ClientId] | None = None,
    ) -> "AccountStore":
        """Create a store pre-populated with every account of ``shard``."""
        store = cls(shard=shard)
        for raw_id in mapper.accounts_in_shard(shard):
            account_id = AccountId(raw_id)
            owner = owner_of[account_id] if owner_of else ClientId(raw_id)
            store.create_account(account_id, owner, initial_balance)
        return store

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __contains__(self, account_id: AccountId) -> bool:
        return account_id in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    def __iter__(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def account(self, account_id: AccountId) -> Account:
        """Return the account record or raise :class:`UnknownAccountError`."""
        try:
            return self._accounts[account_id]
        except KeyError:
            raise UnknownAccountError(f"unknown account {account_id}") from None

    def balance(self, account_id: AccountId) -> int:
        """Current balance of ``account_id``."""
        return self.account(account_id).balance

    def total_balance(self) -> int:
        """Sum of all balances in this store (conservation invariant)."""
        return sum(account.balance for account in self._accounts.values())

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def deposit(self, account_id: AccountId, amount: int) -> None:
        """Credit ``amount`` to the account."""
        if amount < 0:
            raise ValidationError("deposit amount must be non-negative")
        self.account(account_id).balance += amount
        self.version += 1

    def withdraw(self, account_id: AccountId, amount: int, requester: ClientId | None = None) -> None:
        """Debit ``amount`` from the account.

        If ``requester`` is given it must match the account owner,
        implementing the paper's "valid signature of its owner" check.
        """
        if amount < 0:
            raise ValidationError("withdrawal amount must be non-negative")
        account = self.account(account_id)
        if requester is not None and account.owner != requester:
            raise ValidationError(
                f"client {requester} does not own account {account_id}"
            )
        if account.balance < amount:
            raise InsufficientBalanceError(
                f"account {account_id} holds {account.balance} < {amount}"
            )
        account.balance -= amount
        self.version += 1

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    @staticmethod
    def digest_entries(entries: "Iterable[tuple[AccountId, ClientId, int]]") -> str:
        """Digest of ``(account_id, owner, balance)`` triples, in given order.

        The single definition of the store digest format — shared by
        :meth:`state_digest` (live store) and :meth:`snapshot_digest`
        (shipped snapshot), which must agree byte for byte for
        state-transfer verification to work.
        """
        hasher = hashlib.sha256()
        for account_id, owner, balance in entries:
            hasher.update(f"{int(account_id)}:{int(owner)}:{balance};".encode())
        return hasher.hexdigest()

    def state_digest(self) -> str:
        """Deterministic digest of the full balance table.

        Iterates accounts in sorted id order, so every replica that
        applied the same transaction prefix — regardless of how its
        store was built (bootstrap or :meth:`restore`) — produces the
        same digest.  This is the store half of a checkpoint digest
        (:func:`repro.recovery.checkpoint_digest`).
        """
        accounts = self._accounts
        return self.digest_entries(
            (account_id, accounts[account_id].owner, accounts[account_id].balance)
            for account_id in sorted(accounts)
        )

    @classmethod
    def snapshot_digest(cls, snapshot: "Mapping[AccountId, tuple[ClientId, int]]") -> str:
        """:meth:`state_digest` recomputed from a :meth:`snapshot` mapping."""
        return cls.digest_entries(
            (account_id, *snapshot[account_id]) for account_id in sorted(snapshot)
        )

    def snapshot(self) -> dict[AccountId, tuple[ClientId, int]]:
        """Cheap copy of the full state, used by tests and state transfer."""
        return {
            account_id: (account.owner, account.balance)
            for account_id, account in self._accounts.items()
        }

    def restore(self, snapshot: Mapping[AccountId, tuple[ClientId, int]]) -> None:
        """Replace the store contents with ``snapshot``."""
        self._accounts = {
            account_id: Account(account_id=account_id, owner=owner, balance=balance)
            for account_id, (owner, balance) in snapshot.items()
        }
        self.version += 1
