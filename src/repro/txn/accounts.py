"""Account sharding for the blockchain accounting application.

The paper's evaluation implements "a simple blockchain-based accounting
application where the data records are client accounts" (Section 4) and
adopts the account-based transaction model (Section 2.4): the system
tracks the balance of every account and a transfer is valid only if the
source account is owned by the requesting client and holds enough funds.

:class:`ShardMapper` maps accounts to data shards.  A workload-aware
mapper would minimise cross-shard transactions, but the evaluation
controls the cross-shard fraction directly, so two simple strategies
suffice: ``"range"`` partitions the id space into contiguous ranges
(the default), ``"modulo"`` stripes ids round-robin (``id % |P|``).

The per-shard state itself lives in :mod:`repro.storage`:
:class:`~repro.storage.dict_store.AccountStore` (the original dict
backend) and :class:`~repro.storage.base.Account` are re-exported here
for compatibility — existing imports of ``repro.txn.accounts`` keep
working unchanged.
"""

from __future__ import annotations

from typing import Iterable

from ..common.errors import ConfigurationError, UnknownAccountError
from ..common.types import AccountId, ShardId
from ..storage.base import Account
from ..storage.dict_store import AccountStore

__all__ = ["Account", "AccountStore", "ShardMapper"]


class ShardMapper:
    """Maps account ids to data shards ``d_1 .. d_|P|``.

    Two partitioning strategies are supported.  ``"range"`` (the
    default) assigns contiguous id ranges, which keeps "account i lives
    in shard i // span" easy to reason about in tests and mirrors how a
    workload-aware partitioner would co-locate related accounts.
    ``"modulo"`` stripes ids round-robin — ``shard_of(i) = i % |P|`` —
    the other classic hash-free scheme; it spreads hot contiguous id
    ranges across every shard.  Either way each shard's population is an
    arithmetic progression, which the columnar store maps to flat array
    slots without a hash table.
    """

    STRATEGIES = ("range", "modulo")

    def __init__(
        self, num_shards: int, accounts_per_shard: int, strategy: str = "range"
    ) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if accounts_per_shard <= 0:
            raise ConfigurationError("accounts_per_shard must be positive")
        if strategy not in self.STRATEGIES:
            raise ConfigurationError(
                f"unknown partition strategy {strategy!r}; expected one of "
                f"{self.STRATEGIES}"
            )
        self.num_shards = num_shards
        self.accounts_per_shard = accounts_per_shard
        self.strategy = strategy
        self._total_accounts = num_shards * accounts_per_shard

    @property
    def total_accounts(self) -> int:
        """Total number of accounts across all shards."""
        return self._total_accounts

    def shard_of(self, account_id: AccountId) -> ShardId:
        """Shard that stores ``account_id``."""
        if not 0 <= account_id < self._total_accounts:
            raise UnknownAccountError(f"account {account_id} is outside the keyspace")
        if self.strategy == "modulo":
            return ShardId(account_id % self.num_shards)
        return ShardId(account_id // self.accounts_per_shard)

    def accounts_in_shard(self, shard: ShardId) -> range:
        """The account ids stored in ``shard`` (an arithmetic progression)."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(f"unknown shard {shard}")
        if self.strategy == "modulo":
            return range(shard, self._total_accounts, self.num_shards)
        start = shard * self.accounts_per_shard
        return range(start, start + self.accounts_per_shard)

    def shards_of(self, account_ids: Iterable[AccountId]) -> frozenset[ShardId]:
        """Set of shards touched by a group of accounts."""
        return frozenset(self.shard_of(account_id) for account_id in account_ids)
