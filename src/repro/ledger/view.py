"""Per-cluster view of the blockchain ledger.

"The entire blockchain ledger is not maintained by any cluster and each
cluster only maintains its own view of the blockchain ledger including
the transactions that access the data shard of the cluster" (Section
2.3).  A :class:`ClusterView` is exactly that: a totally ordered chain of
blocks (intra-shard blocks of the cluster plus the cross-shard blocks the
cluster participates in), rooted at the genesis block ``λ``.

Appending enforces the two properties the paper relies on:

* **total order per shard** — block ``k`` must occupy position ``k`` and
  every position is filled exactly once (no forks, no gaps);
* **hash-chain integrity** — block ``k``'s parent reference for this
  cluster must equal the hash of block ``k-1``.

Stable checkpoints (:mod:`repro.recovery`) *prune* the view: block
objects at positions at or below the checkpoint are removed (bounding
memory for arbitrarily long runs), keeping the checkpointed block as the
chain *anchor* — the hash-chain base for subsequent appends — and the
full transaction index, which keeps answering the at-most-once duplicate
checks for compacted history.  With an archival backend attached
(:attr:`ClusterView.archive`, see :mod:`repro.storage.archive`), the
pruned block objects are *spilled* into the archive before being
discarded, so the full history stays queryable offline; without one they
are simply dropped.  :attr:`ClusterView.height` keeps counting from
genesis, so heights and positions are stable across pruning.
"""

from __future__ import annotations

from typing import Iterator

from ..common.errors import ForkError, HashChainError, LedgerError, UnknownBlockError
from ..common.types import ClusterId
from .block import Block

__all__ = ["ClusterView"]


class ClusterView:
    """The chain of blocks maintained by every node of one cluster."""

    def __init__(self, cluster_id: ClusterId, genesis: Block | None = None) -> None:
        self.cluster_id = cluster_id
        self._genesis = genesis or Block.genesis()
        if not self._genesis.is_genesis:
            raise LedgerError("a ClusterView must be rooted at a genesis block")
        self._blocks: list[Block] = [self._genesis]
        self._by_hash: dict[str, Block] = {self._genesis.block_hash: self._genesis}
        self._tx_index: dict[str, int] = {}
        #: position of ``_blocks[0]`` (0 = genesis; > 0 after pruning,
        #: where ``_blocks[0]`` is the checkpointed anchor block).
        self._base = 0
        #: optional :class:`repro.storage.archive.ArchivalBackend` that
        #: :meth:`prune` spills dropped blocks into.
        self.archive = None
        #: largest number of block objects this view ever retained.
        self.peak_retained = 1

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def genesis(self) -> Block:
        """The genesis block ``λ``."""
        return self._genesis

    @property
    def height(self) -> int:
        """Number of committed blocks, pruned history included."""
        return self._base + len(self._blocks) - 1

    @property
    def next_index(self) -> int:
        """Position the next appended block must occupy."""
        return self._base + len(self._blocks)

    @property
    def pruned_height(self) -> int:
        """Highest position whose block object may have been pruned away.

        0 for an unpruned view; audits tolerate blocks missing from this
        view when their position here is at or below this mark.
        """
        return self._base

    @property
    def retained_from(self) -> int:
        """Lowest position :meth:`blocks` still returns a block for."""
        return self._base + 1

    @property
    def head(self) -> Block:
        """Most recently appended block (the genesis block if empty)."""
        return self._blocks[-1]

    @property
    def head_hash(self) -> str:
        """Hash of the head block — the ``h_i`` carried in protocol messages."""
        return self.head.block_hash

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._by_hash

    def blocks(self, include_genesis: bool = False) -> list[Block]:
        """The retained chain as a list, oldest first.

        Blocks strictly above the prune anchor; ``include_genesis`` also
        includes the anchor itself (the genesis block when unpruned).
        """
        return list(self._blocks) if include_genesis else list(self._blocks[1:])

    def block_at(self, index: int) -> Block:
        """Block occupying position ``index`` (position 0 is the genesis)."""
        offset = index - self._base
        if not 0 <= offset < len(self._blocks):
            raise UnknownBlockError(f"view of cluster {self.cluster_id} has no block at {index}")
        return self._blocks[offset]

    def block_by_hash(self, block_hash: str) -> Block:
        """Block identified by ``block_hash``."""
        try:
            return self._by_hash[block_hash]
        except KeyError:
            raise UnknownBlockError(
                f"block {block_hash[:8]} not in view of cluster {self.cluster_id}"
            ) from None

    def contains_tx(self, tx_id: str) -> bool:
        """Whether a transaction has been committed in this view."""
        return tx_id in self._tx_index

    def position_of_tx(self, tx_id: str) -> int:
        """Chain position of the block containing ``tx_id``."""
        try:
            return self._tx_index[tx_id]
        except KeyError:
            raise UnknownBlockError(f"transaction {tx_id} not in view of cluster {self.cluster_id}") from None

    def cross_shard_blocks(self) -> list[Block]:
        """All cross-shard blocks of the view, oldest first."""
        return [block for block in self._blocks[1:] if block.is_cross_shard]

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------
    def append(self, block: Block) -> None:
        """Append a committed block, enforcing order and hash chaining.

        Runs once per decided slot per replica, so the position and parent
        references for this cluster are extracted in one pass each instead
        of going through the generic (raising) block accessors.
        """
        if block.is_genesis:
            raise LedgerError("cannot append a second genesis block")
        cluster_id = self.cluster_id
        position = None
        for cluster, index in block.positions:
            if cluster == cluster_id:
                position = index
                break
        if position is None:
            raise LedgerError(
                f"block {block.label()} does not involve cluster {cluster_id}"
            )
        if position != self._base + len(self._blocks):
            raise ForkError(
                f"cluster {cluster_id}: block {block.label()} targets position "
                f"{position} but the next free position is {self.next_index}"
            )
        parent = None
        for cluster, parent_hash in block.parents:
            if cluster == cluster_id:
                parent = parent_hash
                break
        if parent != self._blocks[-1].block_hash:
            reference = "none" if parent is None else parent[:8]
            raise HashChainError(
                f"cluster {cluster_id}: block {block.label()} references parent "
                f"{reference} but the head is {self.head_hash[:8]}"
            )
        tx_index = self._tx_index
        for transaction in block.transactions:
            if transaction.tx_id in tx_index:
                raise ForkError(
                    f"cluster {cluster_id}: transaction {transaction.tx_id} "
                    "is already committed"
                )
        self._blocks.append(block)
        self._by_hash[block.block_hash] = block
        for transaction in block.transactions:
            tx_index[transaction.tx_id] = position
        if len(self._blocks) > self.peak_retained:
            self.peak_retained = len(self._blocks)

    # ------------------------------------------------------------------
    # checkpointing support (repro.recovery)
    # ------------------------------------------------------------------
    def prune(self, upto: int) -> int:
        """Drop block objects at positions ``<= upto`` (stable-checkpoint GC).

        The block at position ``upto`` is retained as the new chain
        anchor (its hash is the parent reference of position ``upto+1``
        and the base for state-transfer verification); the transaction
        index is kept in full so duplicate detection survives pruning.
        With :attr:`archive` attached, the dropped blocks (minus the
        genesis block) are spilled into the archive first.  Returns the
        number of block objects dropped.
        """
        upto = min(upto, self.height)
        if upto <= self._base:
            return 0
        keep_from = upto - self._base
        dropped = self._blocks[:keep_from]
        if self.archive is not None:
            self.archive.archive_blocks(
                self.cluster_id,
                [block for block in dropped if not block.is_genesis],
            )
        self._blocks = self._blocks[keep_from:]
        for block in dropped:
            self._by_hash.pop(block.block_hash, None)
        self._base = upto
        return len(dropped)

    def install_anchor(self, anchor: Block, tx_index: dict[str, int]) -> None:
        """Reset the view onto a state-transferred checkpoint anchor.

        The view becomes a fully pruned chain whose only retained block
        is ``anchor`` (the block at the checkpoint position of this
        cluster's chain); ``tx_index`` supplies the at-most-once index
        for the compacted history.  Subsequent appends chain off the
        anchor exactly as they would on the helper replica.
        """
        position = 0 if anchor.is_genesis else anchor.position_for(self.cluster_id)
        self._blocks = [anchor]
        self._by_hash = {anchor.block_hash: anchor}
        self._tx_index = dict(tx_index)
        self._base = position

    def tx_index_upto(self, position: int) -> tuple[tuple[str, int], ...]:
        """The ``(tx_id, position)`` pairs committed at or below ``position``.

        Shipped with state-transfer snapshots so a joiner's duplicate
        detection covers the history its pruned chain cannot re-derive.
        """
        return tuple(
            (tx_id, index) for tx_id, index in self._tx_index.items() if index <= position
        )

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Re-walk the retained chain and raise if any invariant is violated.

        A pruned view is verified from its anchor: the anchor itself is
        certified by the stable-checkpoint quorum, and every retained
        block above it must chain correctly.
        """
        previous = self._blocks[0]
        if self._base == 0 and not previous.is_genesis:
            raise LedgerError("view does not start at the genesis block")
        for index, block in enumerate(self._blocks[1:], start=self._base + 1):
            if block.position_for(self.cluster_id) != index:
                raise ForkError(
                    f"cluster {self.cluster_id}: block at chain offset {index} claims "
                    f"position {block.position_for(self.cluster_id)}"
                )
            if block.parent_for(self.cluster_id) != previous.block_hash:
                raise HashChainError(
                    f"cluster {self.cluster_id}: hash chain broken at position {index}"
                )
            previous = block
