"""DAG ledger: blocks, per-cluster views, global DAG, consistency audits."""

from .block import GENESIS_BLOCK_ID, Block
from .dag import BlockDAG
from .validation import AuditReport, audit_views, check_pairwise_cross_order
from .view import ClusterView

__all__ = [
    "AuditReport",
    "Block",
    "BlockDAG",
    "ClusterView",
    "GENESIS_BLOCK_ID",
    "audit_views",
    "check_pairwise_cross_order",
]
