"""Transaction blocks of the SharPer DAG ledger.

In SharPer each block contains a single transaction (Section 2.3 — the
paper argues batching hurts in permissioned settings; the block-size
ablation benchmark revisits that choice).  A block records, for every
involved cluster:

* the *position* the block occupies in that cluster's chain (the ``o_i``
  subscripts of Figure 2, e.g. ``t_{1_2, 2_2}`` sits at position 2 of
  clusters 1 and 2), and
* the *parent hash* — the cryptographic hash of the previous block the
  cluster was involved in — which is what chains the block into every
  involved cluster's view and makes the global ledger a DAG.

Intra-shard blocks involve exactly one cluster; cross-shard blocks involve
two or more.

Implementation note (see DESIGN.md): consensus agrees on the *position
vector*, so the block identity (:attr:`Block.block_hash`) covers the
transactions, positions and proposer.  Parent hashes are attached by each
appending cluster for its own chain (a cluster cannot know another
cluster's head hash while instances are pipelined) and are validated by
:class:`~repro.ledger.view.ClusterView`; the global DAG derives its edges
from the position vectors, which encode the same predecessor relation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping

from ..common.crypto import GENESIS_HASH, chain_hash
from ..common.errors import LedgerError
from ..common.types import ClusterId, SequenceNumber
from ..txn.transaction import Transaction

__all__ = ["Block", "GENESIS_BLOCK_ID"]

#: Identifier of the unique genesis block ``λ``.
GENESIS_BLOCK_ID = "genesis"


@dataclass(frozen=True)
class Block:
    """One vertex of the blockchain DAG."""

    #: transactions contained in the block (exactly one by default).
    transactions: tuple[Transaction, ...]
    #: per-cluster position of this block in the cluster's chain.
    positions: tuple[tuple[ClusterId, int], ...]
    #: per-cluster hash of the previous block of that cluster (chain
    #: metadata filled by the appending cluster; may cover a subset of the
    #: involved clusters and is not part of the block identity).
    parents: tuple[tuple[ClusterId, str], ...]
    #: cluster whose primary initiated consensus for this block.
    proposer: ClusterId
    #: marks the unique genesis block ``λ``.
    is_genesis: bool = False
    #: marks a gap-filling block that carries no transaction (e.g. a slot
    #: resolved to a no-op during a view change).
    is_noop: bool = False

    def __post_init__(self) -> None:
        if self.is_genesis:
            return
        if not self.transactions and not self.is_noop:
            raise LedgerError("a non-genesis block must contain at least one transaction")
        positions = self.positions
        if len(positions) == 1:
            # Fast path: the vast majority of blocks are intra-shard, so
            # skip the set machinery the general invariants need.
            (cluster, index), = positions
            if index < 1:
                raise LedgerError("block positions start at 1 (position 0 is the genesis)")
            for parent_cluster, _ in self.parents:
                if parent_cluster != cluster:
                    raise LedgerError(
                        "a block may only carry parent hashes for clusters it is positioned in"
                    )
            return
        position_clusters = {cluster for cluster, _ in positions}
        parent_clusters = {cluster for cluster, _ in self.parents}
        if not parent_clusters.issubset(position_clusters):
            raise LedgerError(
                "a block may only carry parent hashes for clusters it is positioned in"
            )
        if not position_clusters:
            raise LedgerError("a block must involve at least one cluster")
        if len(position_clusters) != len(positions):
            raise LedgerError("duplicate cluster in block positions")
        for _, index in positions:
            if index < 1:
                raise LedgerError("block positions start at 1 (position 0 is the genesis)")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def genesis(cls) -> "Block":
        """The unique initialization block ``λ`` shared by every cluster."""
        return cls(
            transactions=(),
            positions=(),
            parents=(),
            proposer=ClusterId(-1),
            is_genesis=True,
        )

    @staticmethod
    def _sorted_items(mapping: Mapping | None) -> tuple:
        """Deterministically ordered ``(key, value)`` tuple of a mapping.

        Mappings of one entry — the overwhelmingly common intra-shard case
        — skip the sort.
        """
        if not mapping:
            return ()
        items = tuple(mapping.items())
        return items if len(items) == 1 else tuple(sorted(items))

    @classmethod
    def create(
        cls,
        transaction: Transaction,
        positions: Mapping[ClusterId, int],
        proposer: ClusterId,
        parents: Mapping[ClusterId, str] | None = None,
    ) -> "Block":
        """Build a single-transaction block from mapping-style arguments."""
        return cls(
            transactions=(transaction,),
            positions=cls._sorted_items(positions),
            parents=cls._sorted_items(parents),
            proposer=proposer,
        )

    @classmethod
    def noop(
        cls,
        positions: Mapping[ClusterId, int],
        proposer: ClusterId,
        parents: Mapping[ClusterId, str] | None = None,
    ) -> "Block":
        """Build an empty gap-filling block."""
        return cls(
            transactions=(),
            positions=cls._sorted_items(positions),
            parents=cls._sorted_items(parents),
            proposer=proposer,
            is_noop=True,
        )

    @classmethod
    def create_batch(
        cls,
        transactions: tuple[Transaction, ...],
        positions: Mapping[ClusterId, int],
        proposer: ClusterId,
        parents: Mapping[ClusterId, str] | None = None,
    ) -> "Block":
        """Build a batched block (used only by the block-size ablation)."""
        return cls(
            transactions=tuple(transactions),
            positions=tuple(sorted(positions.items())),
            parents=tuple(sorted((parents or {}).items())),
            proposer=proposer,
        )

    # ------------------------------------------------------------------
    # derived properties
    # ------------------------------------------------------------------
    @cached_property
    def block_hash(self) -> str:
        """Cryptographic hash identifying the block (``H(t)`` in the paper).

        SHA-256 over an unambiguous flat encoding of the identity fields
        (transaction payload digests, position vector, proposer, no-op
        flag).  Every replica builds its own :class:`Block` object for a
        decided slot, so this runs once per block per replica — the
        encoding is built by hand instead of the generic canonical encoder
        because it sits on the apply hot path.
        """
        if self.is_genesis:
            return chain_hash(GENESIS_BLOCK_ID, GENESIS_HASH)
        transactions = self.transactions
        if len(transactions) == 1:  # the common, unbatched case
            tx_part = transactions[0].payload_digest()
        else:
            tx_part = ",".join(tx.payload_digest() for tx in transactions)
        positions = self.positions
        if len(positions) == 1:  # the common, intra-shard case
            cluster, index = positions[0]
            pos_part = f"{int(cluster)}:{index}"
        else:
            pos_part = ",".join(f"{int(cluster)}:{index}" for cluster, index in positions)
        return hashlib.sha256(
            f"B|{tx_part}|{pos_part}|{int(self.proposer)}|{int(self.is_noop)}".encode()
        ).hexdigest()

    @property
    def transaction(self) -> Transaction:
        """The single transaction of an unbatched block."""
        if len(self.transactions) != 1:
            raise LedgerError(
                f"block {self.block_hash[:8]} holds {len(self.transactions)} transactions"
            )
        return self.transactions[0]

    @property
    def is_empty(self) -> bool:
        """Whether the block carries no transaction (genesis or no-op)."""
        return not self.transactions

    @property
    def tx_ids(self) -> tuple[str, ...]:
        """Identifiers of the contained transactions."""
        return tuple(tx.tx_id for tx in self.transactions)

    @property
    def involved_clusters(self) -> frozenset[ClusterId]:
        """Clusters that participate in (and store) this block."""
        return frozenset(cluster for cluster, _ in self.positions)

    @property
    def is_cross_shard(self) -> bool:
        """True when more than one cluster is involved."""
        return len(self.involved_clusters) > 1

    def position_for(self, cluster: ClusterId) -> int:
        """Position of this block in ``cluster``'s chain."""
        for candidate, index in self.positions:
            if candidate == cluster:
                return index
        raise LedgerError(f"block {self.block_hash[:8]} does not involve cluster {cluster}")

    def with_parent(self, cluster: ClusterId, parent_hash: str) -> "Block":
        """Return a copy carrying ``cluster``'s parent hash (chain metadata).

        Positions, transactions and therefore :attr:`block_hash` are
        unchanged; only the per-cluster chain reference is added.
        """
        if not self.involves(cluster):
            raise LedgerError(f"block {self.label()} does not involve cluster {cluster}")
        parents = dict(self.parents)
        parents[cluster] = parent_hash
        return Block(
            transactions=self.transactions,
            positions=self.positions,
            parents=tuple(sorted(parents.items())),
            proposer=self.proposer,
            is_genesis=self.is_genesis,
            is_noop=self.is_noop,
        )

    def parent_for(self, cluster: ClusterId) -> str:
        """Hash of the previous block of ``cluster`` referenced by this block."""
        for candidate, parent_hash in self.parents:
            if candidate == cluster:
                return parent_hash
        raise LedgerError(f"block {self.block_hash[:8]} does not involve cluster {cluster}")

    def sequence_numbers(self) -> tuple[SequenceNumber, ...]:
        """The block's slots as :class:`SequenceNumber` objects."""
        return tuple(SequenceNumber(cluster, index) for cluster, index in self.positions)

    def involves(self, cluster: ClusterId) -> bool:
        """Whether ``cluster`` stores this block in its view."""
        return any(candidate == cluster for candidate, _ in self.positions)

    def label(self) -> str:
        """Human-readable label matching the paper's ``t_{o_1,..,o_k}`` notation."""
        if self.is_genesis:
            return "λ"
        subscripts = ",".join(f"{cluster + 1}_{index}" for cluster, index in self.positions)
        return f"t[{subscripts}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.label()} hash={self.block_hash[:8]}>"
