"""The global DAG ledger: the union of all cluster views.

"The blockchain ledger is indeed the union of all these physical views"
(Section 2.3).  No node materialises the full DAG at run time; this module
exists so that tests, audits, and examples can assemble the union of the
per-cluster views, check that it is a well-formed DAG, and query global
orderings — exactly what Figure 2(a) depicts.

Edges of the DAG follow the predecessor relation encoded by each block's
position vector: the parent of a block at position ``s`` of cluster ``p``
is the block at position ``s - 1`` of ``p`` (the genesis block ``λ`` for
``s = 1``).  This matches the hash references each cluster records in its
own view.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping

from ..common.errors import ForkError, LedgerError, UnknownBlockError
from ..common.types import ClusterId
from .block import Block
from .view import ClusterView

__all__ = ["BlockDAG"]


class BlockDAG:
    """A directed acyclic graph of blocks, edges pointing parent → child."""

    def __init__(self, genesis: Block | None = None) -> None:
        self.genesis = genesis or Block.genesis()
        self._blocks: dict[str, Block] = {self.genesis.block_hash: self.genesis}
        self._slot_index: dict[tuple[ClusterId, int], str] = {}
        #: per-cluster position at or below which the owning view pruned
        #: its chain (stable checkpoints, :mod:`repro.recovery`); the
        #: contiguity invariant is only checkable above this floor.
        self.contiguity_floor: dict[ClusterId, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _predecessor_hash(self, cluster: ClusterId, position: int) -> str | None:
        """Hash of the block preceding ``(cluster, position)``, if known."""
        if position <= 1:
            return self.genesis.block_hash
        return self._slot_index.get((cluster, position - 1))

    def add_block(self, block: Block) -> None:
        """Insert a block; rejects forks (two blocks claiming one slot)."""
        if block.is_genesis:
            return
        if block.block_hash in self._blocks:
            existing = self._blocks[block.block_hash]
            if existing.tx_ids != block.tx_ids:
                raise LedgerError("hash collision between two distinct blocks")
            return
        for cluster, position in block.positions:
            occupant = self._slot_index.get((cluster, position))
            if occupant is not None and occupant != block.block_hash:
                raise ForkError(
                    f"two blocks claim position {position} of cluster {cluster}"
                )
        self._blocks[block.block_hash] = block
        for cluster, position in block.positions:
            self._slot_index[(cluster, position)] = block.block_hash

    @classmethod
    def from_views(cls, views: Iterable[ClusterView]) -> "BlockDAG":
        """Assemble the global DAG as the union of the given cluster views."""
        views = list(views)
        dag = cls(genesis=views[0].genesis if views else None)
        for view in views:
            view.verify()
            dag.contiguity_floor[view.cluster_id] = view.pruned_height
            for block in view.blocks():
                dag.add_block(block)
        return dag

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks) - 1  # exclude genesis

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def block(self, block_hash: str) -> Block:
        """Look up a block by hash."""
        try:
            return self._blocks[block_hash]
        except KeyError:
            raise UnknownBlockError(f"block {block_hash[:8]} is not in the DAG") from None

    def block_at(self, cluster: ClusterId, position: int) -> Block:
        """Block occupying ``position`` of ``cluster``'s chain."""
        try:
            return self._blocks[self._slot_index[(cluster, position)]]
        except KeyError:
            raise UnknownBlockError(
                f"no block at position {position} of cluster {cluster}"
            ) from None

    def blocks(self) -> Iterator[Block]:
        """All non-genesis blocks, in insertion order."""
        return (block for block in self._blocks.values() if not block.is_genesis)

    def children(self, block_hash: str) -> frozenset[str]:
        """Hashes of the blocks that directly follow ``block_hash``."""
        block = self.block(block_hash)
        result: set[str] = set()
        if block.is_genesis:
            slots = [(cluster, 1) for cluster in self.clusters()]
        else:
            slots = [(cluster, position + 1) for cluster, position in block.positions]
        for cluster, position in slots:
            successor = self._slot_index.get((cluster, position))
            if successor is not None:
                result.add(successor)
        return frozenset(result)

    def parents(self, block_hash: str) -> frozenset[str]:
        """Hashes of the blocks that directly precede ``block_hash``."""
        block = self.block(block_hash)
        if block.is_genesis:
            return frozenset()
        result = set()
        for cluster, position in block.positions:
            predecessor = self._predecessor_hash(cluster, position)
            if predecessor is not None:
                result.add(predecessor)
        return frozenset(result)

    def cross_shard_blocks(self) -> list[Block]:
        """All cross-shard blocks in the DAG."""
        return [block for block in self.blocks() if block.is_cross_shard]

    def chain_of(self, cluster: ClusterId) -> list[Block]:
        """The totally ordered chain of ``cluster`` extracted from the DAG."""
        chain = [block for block in self.blocks() if block.involves(cluster)]
        chain.sort(key=lambda block: block.position_for(cluster))
        return chain

    def clusters(self) -> frozenset[ClusterId]:
        """All clusters that appear in at least one block."""
        result: set[ClusterId] = set()
        for block in self.blocks():
            result.update(block.involved_clusters)
        return frozenset(result)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def topological_order(self) -> list[Block]:
        """Kahn topological sort; raises :class:`LedgerError` on a cycle."""
        in_degree: dict[str, int] = {block_hash: 0 for block_hash in self._blocks}
        children: dict[str, frozenset[str]] = {}
        for block_hash in self._blocks:
            children[block_hash] = self.children(block_hash)
            if block_hash != self.genesis.block_hash:
                in_degree[block_hash] = len(self.parents(block_hash))
        queue = deque(sorted(h for h, degree in in_degree.items() if degree == 0))
        order: list[Block] = []
        while queue:
            block_hash = queue.popleft()
            order.append(self._blocks[block_hash])
            for child in sorted(children[block_hash]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._blocks):
            raise LedgerError("the block graph contains a cycle")
        return [block for block in order if not block.is_genesis]

    def has_commit_order_cycle(self) -> bool:
        """Whether the per-cluster orders induce a cross-cluster cycle.

        The pipelined cross-shard implementation guarantees a total order
        per shard and pairwise-consistent ordering of blocks shared by two
        clusters, but (unlike the paper's strict accept-and-block rule)
        does not rule out a cycle spanning three or more clusters.  The
        audit reports this as a statistic rather than a failure; see
        DESIGN.md.
        """
        try:
            self.topological_order()
        except LedgerError:
            return True
        return False

    def check_contiguity(self) -> None:
        """Check that every cluster's positions form a contiguous range.

        Unpruned views contribute the full range ``1..k``.  Views pruned
        by stable checkpoints (:mod:`repro.recovery`) are only checkable
        above their :attr:`contiguity_floor`: the compacted prefix is
        certified by the checkpoint quorum, and *other* clusters' views
        may still retain scattered old cross-shard blocks positioned
        inside it, which must not be mistaken for gaps.
        """
        for cluster in self.clusters():
            floor = self.contiguity_floor.get(cluster, 0)
            chain = [
                block
                for block in self.chain_of(cluster)
                if block.position_for(cluster) > floor
            ]
            # An unpruned cluster (floor 0) must cover 1..k exactly —
            # a chain starting above 1 is a real gap, not compaction.
            for expected_index, block in enumerate(chain, start=floor + 1):
                actual_index = block.position_for(cluster)
                if actual_index != expected_index:
                    raise LedgerError(
                        f"cluster {cluster}: positions are not contiguous "
                        f"(expected {expected_index}, found {actual_index})"
                    )

    def verify(self) -> None:
        """Check the global invariants of the DAG.

        * per-cluster total order: positions form the contiguous range
          ``1..k`` with exactly one block per position;
        * acyclicity (via topological sort).
        """
        self.check_contiguity()
        self.topological_order()

    def equals_union_of(self, views: Mapping[ClusterId, ClusterView]) -> bool:
        """Check the paper's union property against a set of views."""
        union_hashes = {
            block.block_hash for view in views.values() for block in view.blocks()
        }
        dag_hashes = {block.block_hash for block in self.blocks()}
        return union_hashes == dag_hashes
