"""Cross-view consistency audits.

These checks encode the safety properties the consensus protocols are
supposed to guarantee; the integration tests and examples run them after
every simulated experiment:

* every cluster view is a valid hash chain (total order per shard);
* every cross-shard block appears in the view of **all and only** its
  involved clusters, and is byte-identical (same hash) everywhere;
* for any two clusters, the cross-shard blocks they share appear in the
  same relative order in both views (the paper's overlapping-cluster
  safety argument, Section 3.2);
* the union of the views is a well-formed DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..common.errors import LedgerError
from ..common.types import ClusterId
from .dag import BlockDAG
from .view import ClusterView

__all__ = ["AuditReport", "audit_views", "check_pairwise_cross_order"]


@dataclass
class AuditReport:
    """Result of a full ledger audit."""

    num_clusters: int
    total_blocks: int
    cross_shard_blocks: int
    intra_shard_blocks: int
    problems: list[str] = field(default_factory=list)
    #: True when the union graph contains a commit-order cycle spanning
    #: three or more clusters.  This is a known relaxation of the paper's
    #: accept-and-block rule (see DESIGN.md), reported separately from the
    #: hard safety problems.
    ordering_cycle: bool = False

    @property
    def ok(self) -> bool:
        """True when no consistency problem was found."""
        return not self.problems

    def raise_if_failed(self) -> None:
        """Raise :class:`LedgerError` summarising any problems."""
        if self.problems:
            raise LedgerError("; ".join(self.problems))


def check_pairwise_cross_order(
    view_a: ClusterView, view_b: ClusterView
) -> list[str]:
    """Check that blocks shared by two views appear in the same order.

    Views pruned by stable checkpoints (:mod:`repro.recovery`) may have
    dropped old cross-shard blocks the other view still retains; a block
    is only reported missing when its position in the other view lies
    *above* that view's pruned prefix (for compacted positions the
    retained transaction index already vouched for it at append time).

    Returns a list of human-readable problems (empty when consistent).
    """
    problems: list[str] = []
    shared_a = {
        block.block_hash: block
        for block in view_a.blocks()
        if block.involves(view_b.cluster_id)
    }
    shared_b = {
        block.block_hash: block
        for block in view_b.blocks()
        if block.involves(view_a.cluster_id)
    }
    hashes_a = list(shared_a)
    hashes_b = list(shared_b)
    if set(hashes_a) != set(hashes_b):
        only_a = {
            block_hash
            for block_hash, block in shared_a.items()
            if block_hash not in shared_b
            and block.position_for(view_b.cluster_id) > view_b.pruned_height
        }
        only_b = {
            block_hash
            for block_hash, block in shared_b.items()
            if block_hash not in shared_a
            and block.position_for(view_a.cluster_id) > view_a.pruned_height
        }
        if only_a:
            problems.append(
                f"blocks {sorted(h[:8] for h in only_a)} involve cluster {view_b.cluster_id} "
                f"but are missing from its view"
            )
        if only_b:
            problems.append(
                f"blocks {sorted(h[:8] for h in only_b)} involve cluster {view_a.cluster_id} "
                f"but are missing from its view"
            )
    shared = [h for h in hashes_a if h in set(hashes_b)]
    shared_in_b = [h for h in hashes_b if h in set(hashes_a)]
    if shared != shared_in_b:
        problems.append(
            f"clusters {view_a.cluster_id} and {view_b.cluster_id} order their shared "
            f"cross-shard blocks differently"
        )
    return problems


def audit_views(views: Mapping[ClusterId, ClusterView]) -> AuditReport:
    """Run the full consistency audit over a set of cluster views."""
    problems: list[str] = []
    cross_hashes: set[str] = set()
    intra_count = 0

    # Per-view chain validity.
    for cluster_id, view in views.items():
        try:
            view.verify()
        except LedgerError as exc:
            problems.append(f"cluster {cluster_id}: {exc}")
        for block in view.blocks():
            if block.is_cross_shard:
                cross_hashes.add(block.block_hash)
            else:
                intra_count += 1

    # Cross-shard blocks must appear in all and only their involved clusters.
    for cluster_id, view in views.items():
        for block in view.cross_shard_blocks():
            for involved in block.involved_clusters:
                if involved not in views:
                    continue
                if not views[involved].contains_tx(block.tx_ids[0]):
                    problems.append(
                        f"cross-shard block {block.label()} missing from cluster {involved}"
                    )
            if not block.involves(cluster_id):
                problems.append(
                    f"cluster {cluster_id} stores block {block.label()} it is not involved in"
                )

    # Pairwise ordering of shared blocks.
    cluster_ids: Sequence[ClusterId] = sorted(views)
    for index, first in enumerate(cluster_ids):
        for second in cluster_ids[index + 1 :]:
            problems.extend(check_pairwise_cross_order(views[first], views[second]))

    # The union must form a well-formed graph (no forks, contiguous
    # per-cluster positions, equal to the union of the views).
    ordering_cycle = False
    try:
        dag = BlockDAG.from_views(views.values())
        dag.check_contiguity()
        if not dag.equals_union_of(dict(views)):
            problems.append("the DAG is not the union of the cluster views")
        ordering_cycle = dag.has_commit_order_cycle()
        total_blocks = len(dag)
    except LedgerError as exc:
        problems.append(f"union DAG: {exc}")
        total_blocks = sum(view.height for view in views.values())

    return AuditReport(
        num_clusters=len(views),
        total_blocks=total_blocks,
        cross_shard_blocks=len(cross_hashes),
        intra_shard_blocks=intra_count,
        problems=problems,
        ordering_cycle=ordering_cycle,
    )
