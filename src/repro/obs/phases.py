"""Phase taxonomy and per-phase latency attribution.

A traced request leaves a stream of ``(time, tx_id, phase, pid)``
events.  This module reduces that stream to a per-phase latency
breakdown: for every committed transaction the gap between consecutive
milestone events is labelled with the *next* milestone's phase, so the
per-phase gaps of one transaction sum exactly to its end-to-end latency
(first ``submit`` to first ``reply``) — attribution is complete by
construction, which is what lets ``ScenarioResult`` claim that >= 95%
of measured latency lands in named phases.

Milestones are taken as the *first* occurrence of each phase across all
replicas (the recorder appends in simulation-time order, so the first
occurrence is the earliest): ``prepared`` means "the first replica
reached its prepare quorum", ``applied`` means "the first replica
executed it", and so on.  Intra-shard and cross-shard transactions use
different canonical phase orders (the cross-shard lane has no intra
prepare round; the Byzantine cross protocol adds ``cross_prepared``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "PHASES_INTRA",
    "PHASES_CROSS",
    "KNOWN_PHASES",
    "PhaseStats",
    "PhaseBreakdown",
    "attribute_phases",
    "render_phase_table",
    "phase_columns",
]

#: Canonical milestone order for intra-shard transactions.
PHASES_INTRA = (
    "submit",
    "enqueue",
    "seal",
    "propose",
    "prepared",
    "decided",
    "applied",
    "reply",
)

#: Canonical milestone order for cross-shard transactions.
PHASES_CROSS = (
    "submit",
    "enqueue",
    "seal",
    "cross_start",
    "cross_prepared",
    "decided",
    "applied",
    "reply",
)

#: Every phase name the recorder may emit (exporters and the trace
#: validator check emitted events against this set).
KNOWN_PHASES = frozenset(PHASES_INTRA) | frozenset(PHASES_CROSS)


@dataclass(frozen=True)
class PhaseStats:
    """Latency attributed to one phase across one transaction scope."""

    phase: str
    count: int
    total_ms: float
    avg_ms: float
    p50_ms: float
    p95_ms: float
    #: Fraction of the scope's summed end-to-end latency spent here.
    share: float


@dataclass(frozen=True)
class PhaseBreakdown:
    """The full per-phase attribution for one traced run."""

    intra: tuple[PhaseStats, ...]
    cross: tuple[PhaseStats, ...]
    #: Transactions with both a submit and a reply event.
    txs: int
    #: Attributed latency / summed end-to-end latency (1.0 by design).
    attributed_fraction: float


def _percentile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _stats_for(
    gaps: Mapping[str, list[float]], order: Sequence[str], scope_e2e: float
) -> tuple[PhaseStats, ...]:
    out = []
    for phase in order:
        values = gaps.get(phase)
        if not values:
            continue
        values = sorted(values)
        total = sum(values)
        out.append(
            PhaseStats(
                phase=phase,
                count=len(values),
                total_ms=total * 1e3,
                avg_ms=total / len(values) * 1e3,
                p50_ms=_percentile(values, 0.50) * 1e3,
                p95_ms=_percentile(values, 0.95) * 1e3,
                share=(total / scope_e2e) if scope_e2e > 0 else 0.0,
            )
        )
    return tuple(out)


def attribute_phases(
    events: Iterable[tuple[float, str, str, int]],
    cross_txs: frozenset[str] | set[str],
) -> PhaseBreakdown:
    """Reduce raw phase events to a :class:`PhaseBreakdown`.

    ``events`` are ``(time, tx_id, phase, pid)`` tuples; ``cross_txs``
    is the set of tx ids the recorder saw submitted as cross-shard.
    Transactions without both a ``submit`` and a ``reply`` (aborted or
    still in flight at the horizon) are excluded.
    """
    first_seen: dict[str, dict[str, float]] = {}
    for time, tx, phase, _pid in events:
        phases = first_seen.setdefault(tx, {})
        if phase not in phases or time < phases[phase]:
            phases[phase] = time

    intra_gaps: dict[str, list[float]] = {}
    cross_gaps: dict[str, list[float]] = {}
    intra_e2e = cross_e2e = attributed = 0.0
    txs = 0
    for tx, first in first_seen.items():
        if "submit" not in first or "reply" not in first:
            continue
        start, end = first["submit"], first["reply"]
        if end < start:
            continue
        txs += 1
        is_cross = tx in cross_txs
        order = PHASES_CROSS if is_cross else PHASES_INTRA
        gaps = cross_gaps if is_cross else intra_gaps
        if is_cross:
            cross_e2e += end - start
        else:
            intra_e2e += end - start
        milestones = sorted(
            (first[phase], phase)
            for phase in order
            if phase in first and start <= first[phase] <= end
        )
        previous = start
        for time, phase in milestones:
            if phase == "submit":
                continue
            gaps.setdefault(phase, []).append(time - previous)
            attributed += time - previous
            previous = time

    total_e2e = intra_e2e + cross_e2e
    return PhaseBreakdown(
        intra=_stats_for(intra_gaps, PHASES_INTRA, intra_e2e),
        cross=_stats_for(cross_gaps, PHASES_CROSS, cross_e2e),
        txs=txs,
        attributed_fraction=(attributed / total_e2e) if total_e2e > 0 else 1.0,
    )


def render_phase_table(breakdown: PhaseBreakdown) -> str:
    """Render the breakdown as the aligned text table the report CLI prints."""
    header = f"{'scope':7s} {'phase':14s} {'count':>7s} {'avg ms':>9s} {'p50 ms':>9s} {'p95 ms':>9s} {'share':>7s}"
    lines = [header, "-" * len(header)]
    for scope, stats in (("intra", breakdown.intra), ("cross", breakdown.cross)):
        for entry in stats:
            lines.append(
                f"{scope:7s} {entry.phase:14s} {entry.count:>7d} "
                f"{entry.avg_ms:>9.3f} {entry.p50_ms:>9.3f} {entry.p95_ms:>9.3f} "
                f"{entry.share:>6.1%}"
            )
    lines.append(
        f"{breakdown.txs} transactions; "
        f"{breakdown.attributed_fraction:.1%} of end-to-end latency attributed"
    )
    return "\n".join(lines)


def phase_columns(breakdown: PhaseBreakdown) -> dict[str, float]:
    """Flatten the breakdown into additive CSV columns.

    Keys are ``phase_<scope>_<phase>_avg_ms``; used by the bench
    reporting layer, which appends them after the legacy columns so
    existing ``BENCH_*`` consumers keep their header prefix.
    """
    columns: dict[str, float] = {}
    for scope, stats in (("intra", breakdown.intra), ("cross", breakdown.cross)):
        for entry in stats:
            columns[f"phase_{scope}_{entry.phase}_avg_ms"] = round(entry.avg_ms, 4)
    return columns
