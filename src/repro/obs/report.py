"""Offline trace summariser: ``python -m repro.obs.report TRACE``.

Reads a trace file written by :mod:`repro.obs.export` — either Chrome
trace-event JSON or the JSONL event dump, detected from the content —
re-runs the phase attribution over the recorded phase events, and
prints the per-phase latency table plus span and gauge counts.  Pure
reading: nothing here runs a simulation.
"""

from __future__ import annotations

import argparse
import json
from typing import Any

from .phases import attribute_phases, render_phase_table

__all__ = ["load_phase_events", "main"]


def _rows_from_chrome(payload: dict[str, Any]) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    spans = 0
    for event in payload.get("traceEvents", []):
        if event.get("ph") == "i" and event.get("cat") == "phase":
            args = event.get("args", {})
            rows.append(
                {
                    "type": "phase",
                    "t": event["ts"] / 1e6,
                    "tx": args.get("tx", ""),
                    "phase": event["name"],
                    "pid": event.get("tid", 0),
                    "cross": bool(args.get("cross")),
                }
            )
        elif event.get("ph") == "b":
            spans += 1
            rows.append({"type": "span", "cat": event.get("cat")})
    return rows


def load_phase_events(path: str) -> list[dict[str, Any]]:
    """Load a trace file into normalised rows (format auto-detected)."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        return _rows_from_chrome(json.loads(text))
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print the phase-latency table for a trace file."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a flight-recorder trace (Chrome JSON or JSONL).",
    )
    parser.add_argument("trace", help="trace file written via --trace-out")
    args = parser.parse_args(argv)

    rows = load_phase_events(args.trace)
    phase_events = [
        (row["t"], row["tx"], row["phase"], row.get("pid", 0))
        for row in rows
        if row.get("type") == "phase"
    ]
    cross_txs = {
        row["tx"] for row in rows if row.get("type") == "phase" and row.get("cross")
    }
    if not phase_events:
        print(f"{args.trace}: no phase events found")
        return 1

    breakdown = attribute_phases(phase_events, cross_txs)
    print(render_phase_table(breakdown))

    slots = sum(1 for row in rows if row.get("type") == "slot")
    slots += sum(1 for row in rows if row.get("type") == "span" and row.get("cat") == "slot")
    vcs = sum(1 for row in rows if row.get("type") == "view_change")
    vcs += sum(
        1 for row in rows if row.get("type") == "span" and row.get("cat") == "view_change"
    )
    gauges = sum(1 for row in rows if row.get("type") == "gauge")
    print(
        f"{len(phase_events)} phase events, {slots} slot spans, "
        f"{vcs} view-change spans, {gauges} gauge samples"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
