"""Offline trace summariser: ``python -m repro.obs.report TRACE``.

Reads a trace file written by :mod:`repro.obs.export` — either Chrome
trace-event JSON or the JSONL event dump, detected from the content —
re-runs the phase attribution over the recorded phase events, and
prints the per-phase latency table plus span and gauge counts.  When
the trace carries causal data, the critical-path breakdown and the
deciding-vote straggler table follow: JSONL traces hold the full
event/causal graph, so critical paths are rebuilt from scratch with
:func:`repro.obs.causal.critical_paths`; Chrome traces hold the
already-walked paths as flow events, which are re-aggregated directly.
Pure reading: nothing here runs a simulation.

``--format csv`` emits one flat machine-readable table instead (phase,
critpath, and straggler rows tagged by a ``section`` column) so traced
sweeps can be diffed as CI artifacts.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import Any

from .causal import (
    critical_paths,
    render_critical_table,
    render_straggler_table,
    straggler_summary,
    summarize_edge_records,
    summarize_paths,
)
from .phases import attribute_phases, render_phase_table

__all__ = ["load_phase_events", "main"]

#: Columns of the ``--format csv`` output (one schema for every section).
CSV_FIELDS = ["section", "scope", "name", "count", "avg_ms", "p50_ms", "p95_ms", "share"]


def _rows_from_chrome(payload: dict[str, Any]) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for event in payload.get("traceEvents", []):
        ph = event.get("ph")
        cat = event.get("cat")
        if ph == "i" and cat == "phase":
            args = event.get("args", {})
            rows.append(
                {
                    "type": "phase",
                    "t": event["ts"] / 1e6,
                    "tx": args.get("tx", ""),
                    "phase": event["name"],
                    "pid": event.get("tid", 0),
                    "cross": bool(args.get("cross")),
                }
            )
        elif ph == "f" and cat == "flow":
            args = event.get("args", {})
            rows.append(
                {
                    "type": "flow",
                    "tx": args.get("tx", ""),
                    "cross": bool(args.get("cross")),
                    "kind": args.get("kind", ""),
                    "label": args.get("label", ""),
                    "dur": args.get("dur_ms", 0.0) / 1e3,
                }
            )
        elif ph == "i" and cat == "deciding":
            args = event.get("args", {})
            rows.append(
                {
                    "type": "deciding",
                    "pid": event.get("tid", 0),
                    "kind": event.get("name", "deciding:?").split(":", 1)[-1],
                    "key": args.get("key", ""),
                    "voter": args.get("voter", -1),
                    "t": event["ts"] / 1e6,
                    "lag": args.get("lag_ms", 0.0) / 1e3,
                }
            )
        elif ph == "b":
            rows.append({"type": "span", "cat": cat})
    return rows


def load_phase_events(path: str) -> list[dict[str, Any]]:
    """Load a trace file into normalised rows (format auto-detected)."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        return _rows_from_chrome(json.loads(text))
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def _critical_summary(rows: list[dict[str, Any]]):
    """Rebuild the critical-path summary from normalised rows, if any.

    JSONL rows carry the full causal graph (phase rows with
    ``eid``/``parent`` plus ``causal`` message nodes): re-walk it.
    Chrome rows carry the walked paths as ``flow`` edges: re-aggregate
    them (a tx is complete when no ``wait`` edge survived the walk).
    """
    causal_rows = [row for row in rows if row.get("type") == "causal"]
    phase_rows = [row for row in rows if row.get("type") == "phase"]
    if causal_rows and phase_rows and "eid" in phase_rows[0]:
        events = [
            (row["t"], row["tx"], row["phase"], row.get("pid", 0))
            for row in phase_rows
        ]
        meta = [(row["eid"], row.get("parent", 0)) for row in phase_rows]
        causal = [
            (row["eid"], row.get("parent", 0), row["t"], row["kind"],
             row.get("pid", 0), row.get("label", ""))
            for row in causal_rows
        ]
        cross_txs = {row["tx"] for row in phase_rows if row.get("cross")}
        return summarize_paths(critical_paths(events, meta, causal, cross_txs))
    flow_rows = [row for row in rows if row.get("type") == "flow"]
    if not flow_rows:
        return None
    records = [
        (row["tx"], row["cross"], row["kind"],
         f"{row['kind']}:{row['label']}", row["dur"])
        for row in flow_rows
    ]
    txs = {row["tx"] for row in flow_rows}
    clipped = {row["tx"] for row in flow_rows if row["kind"] == "wait"}
    return summarize_edge_records(records, txs=len(txs), complete=len(txs - clipped))


def _deciding_rows(rows: list[dict[str, Any]]):
    return tuple(
        (row.get("pid", 0), row.get("kind", ""), row.get("key", ""),
         row.get("voter", -1), row.get("t", 0.0), row.get("lag", 0.0))
        for row in rows
        if row.get("type") == "deciding"
    )


def _write_csv(breakdown, critical, stragglers) -> None:
    writer = csv.DictWriter(sys.stdout, fieldnames=CSV_FIELDS, restval="")
    writer.writeheader()
    for scope, stats in (("intra", breakdown.intra), ("cross", breakdown.cross)):
        for entry in stats:
            writer.writerow(
                {
                    "section": "phase",
                    "scope": scope,
                    "name": entry.phase,
                    "count": entry.count,
                    "avg_ms": f"{entry.avg_ms:.4f}",
                    "p50_ms": f"{entry.p50_ms:.4f}",
                    "p95_ms": f"{entry.p95_ms:.4f}",
                    "share": f"{entry.share:.6f}",
                }
            )
    if critical is not None:
        for scope, stats in (("intra", critical.intra), ("cross", critical.cross)):
            for entry in stats:
                writer.writerow(
                    {
                        "section": "critpath",
                        "scope": scope,
                        "name": entry.label,
                        "count": entry.count,
                        "avg_ms": f"{entry.avg_ms:.4f}",
                        "share": f"{entry.share:.6f}",
                    }
                )
    for entry in stragglers:
        writer.writerow(
            {
                "section": "straggler",
                "scope": entry.kind,
                "name": entry.pid,
                "count": entry.count,
                "avg_ms": f"{entry.avg_lag_ms:.4f}",
                "p95_ms": f"{entry.max_lag_ms:.4f}",
            }
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print the summary tables for a trace file."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a flight-recorder trace (Chrome JSON or JSONL).",
    )
    parser.add_argument("trace", help="trace file written via --trace-out")
    parser.add_argument(
        "--format",
        choices=("table", "csv"),
        default="table",
        help="text tables (default) or one flat CSV on stdout",
    )
    args = parser.parse_args(argv)

    rows = load_phase_events(args.trace)
    phase_events = [
        (row["t"], row["tx"], row["phase"], row.get("pid", 0))
        for row in rows
        if row.get("type") == "phase"
    ]
    cross_txs = {
        row["tx"] for row in rows if row.get("type") == "phase" and row.get("cross")
    }
    if not phase_events:
        print(f"{args.trace}: no phase events found")
        return 1

    breakdown = attribute_phases(phase_events, cross_txs)
    critical = _critical_summary(rows)
    stragglers = straggler_summary(_deciding_rows(rows))

    if args.format == "csv":
        _write_csv(breakdown, critical, stragglers)
        return 0

    print(render_phase_table(breakdown))
    if critical is not None:
        print()
        print(render_critical_table(critical))
    if stragglers:
        print()
        print(render_straggler_table(stragglers))

    slots = sum(1 for row in rows if row.get("type") == "slot")
    slots += sum(1 for row in rows if row.get("type") == "span" and row.get("cat") == "slot")
    vcs = sum(1 for row in rows if row.get("type") == "view_change")
    vcs += sum(
        1 for row in rows if row.get("type") == "span" and row.get("cat") == "view_change"
    )
    gauges = sum(1 for row in rows if row.get("type") == "gauge")
    print(
        f"{len(phase_events)} phase events, {slots} slot spans, "
        f"{vcs} view-change spans, {gauges} gauge samples"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
