"""The flight recorder: lazily armed tracing with zero cost when off.

Arming model (the same contract as the adversary interceptor and the
``RequestGuard``): every ``Process``, client, and the ``Network`` carry
a ``recorder`` attribute that is ``None`` by default, and every
instrumentation hook is guarded by one ``recorder is None`` check —
the untraced hot path is untouched and runs stay bit-identical to the
pre-observability tree.  ``BaseSystem.arm_recorder`` sets the attribute
everywhere in one sweep; ``Scenario.run`` arms it when
``DeploymentSpec.trace`` is set.

Recording is append-only on the hot path (tuples into flat lists, no
allocation beyond the tuple); all reduction — phase attribution, span
pairing, report assembly — happens once in :meth:`FlightRecorder.finalize`.
Gauge sampling is the only part of the recorder that schedules
simulator events (a repeating timer); it only *reads* replica and
network state, so a gauge-sampled run produces identical protocol
behaviour and its event count exceeds the untraced run by exactly
``gauge_ticks``.  With ``gauge_interval=0`` (spans-only) even the event
count is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .phases import PhaseBreakdown, attribute_phases, phase_columns, render_phase_table

__all__ = ["TraceSpec", "FlightRecorder", "TraceReport", "normalize_trace"]


@dataclass(frozen=True)
class TraceSpec:
    """What to record when a scenario is traced.

    ``gauge_interval`` is in simulated seconds; ``0`` (or
    ``gauges=False``) disables the sampling timer entirely, leaving a
    spans-only trace whose simulator event count matches the untraced
    run bit for bit.
    """

    #: Sample live gauges on a rolling simulator timer.
    gauges: bool = True
    #: Gauge sampling period in simulated seconds (0 disables).
    gauge_interval: float = 0.01


def normalize_trace(trace: "TraceSpec | bool | None") -> TraceSpec | None:
    """Coerce ``DeploymentSpec.trace`` to a spec (``True`` -> defaults)."""
    if trace is None or trace is False:
        return None
    if trace is True:
        return TraceSpec()
    return trace


class FlightRecorder:
    """Collects phase events, spans, and gauges for one scenario run."""

    def __init__(self, spec: TraceSpec | None = None) -> None:
        self.spec = spec or TraceSpec()
        #: ``(time, tx_id, phase, pid)`` in simulation-time order.
        self.events: list[tuple[float, str, str, int]] = []
        #: tx ids whose submit was cross-shard.
        self.cross_txs: set[str] = set()
        self._slot_open: dict[tuple[int, int], tuple[float, int]] = {}
        #: Completed ``(pid, cluster, slot, t_open, t_close)`` slot spans.
        self.slot_spans: list[tuple[int, int, int, float, float]] = []
        self._vc_open: dict[int, tuple[float, int, int]] = {}
        #: Completed ``(pid, cluster, view, t_open, t_close)`` view-change spans.
        self.vc_spans: list[tuple[int, int, int, float, float]] = []
        #: Cumulative outbound message count per message type name.
        self.sent_by_type: dict[str, int] = {}
        #: One sample dict per gauge tick.
        self.gauge_samples: list[dict[str, Any]] = []
        self.gauge_ticks = 0
        self._system: Any = None
        self._gauge_timer: Any = None

    # -- hot-path hooks (every caller guards ``recorder is not None``) --

    def phase(self, time: float, tx_id: str, phase: str, pid: int) -> None:
        """Record one lifecycle milestone for ``tx_id``."""
        self.events.append((time, tx_id, phase, pid))

    def submit(self, time: float, tx_id: str, pid: int, cross: bool) -> None:
        """Record a client submit (and classify the tx's lane)."""
        if cross:
            self.cross_txs.add(tx_id)
        self.events.append((time, tx_id, "submit", pid))

    def slot_open(self, time: float, pid: int, cluster: int, slot: int) -> None:
        """Open a consensus-slot span (first open per replica wins)."""
        key = (pid, slot)
        if key not in self._slot_open:
            self._slot_open[key] = (time, cluster)

    def slot_close(self, time: float, pid: int, slot: int) -> None:
        """Close a slot span at apply time (no-op if never opened here)."""
        opened = self._slot_open.pop((pid, slot), None)
        if opened is not None:
            self.slot_spans.append((pid, opened[1], slot, opened[0], time))

    def vc_open(self, time: float, pid: int, cluster: int, view: int) -> None:
        """Open a view-change span when a replica starts suspecting."""
        if pid not in self._vc_open:
            self._vc_open[pid] = (time, cluster, view)

    def vc_close(self, time: float, pid: int, view: int) -> None:
        """Close the replica's open view-change span on view install."""
        opened = self._vc_open.pop(pid, None)
        if opened is not None:
            self.vc_spans.append((pid, opened[1], view, opened[0], time))

    def count_send(self, type_name: str, count: int) -> None:
        """Bump the per-message-type outbound counter (Network hook)."""
        counters = self.sent_by_type
        counters[type_name] = counters.get(type_name, 0) + count

    # -- gauges ---------------------------------------------------------

    def start_gauges(self, system: Any) -> None:
        """Arm the rolling sampling timer on the system's simulator."""
        self._system = system
        if self.spec.gauges and self.spec.gauge_interval > 0:
            self._gauge_timer = system.sim.every(
                self.spec.gauge_interval, self._sample_gauges
            )

    def _sample_gauges(self) -> None:
        system = self._system
        network = system.network
        replicas: dict[int, dict[str, int]] = {}
        for process in system.processes():
            log = getattr(process, "log", None)
            if log is None:
                continue
            batcher = getattr(process, "batcher", None)
            if batcher is not None:
                window = batcher._intra_in_flight + batcher._cross_in_flight
                queue = len(batcher._intra_queue) + sum(
                    len(lane) for lane in batcher._cross_queues.values()
                )
            else:
                window = queue = 0
            cross = getattr(process, "cross", None)
            pending_cross = 0
            if cross is not None:
                pending_cross = sum(
                    1
                    for state in cross._states.values()
                    if not getattr(state, "decided", False)
                )
            replicas[int(process.pid)] = {
                "window": window,
                "queue": queue,
                "log": log.entry_count,
                "cross_pending": pending_cross,
            }
        self.gauge_samples.append(
            {
                "t": system.sim.now,
                "in_transit": network.messages_sent
                - network.messages_delivered
                - network.messages_dropped,
                "sent_total": network.messages_sent,
                "replicas": replicas,
                "sent_by_type": dict(self.sent_by_type),
            }
        )
        self.gauge_ticks += 1

    # -- reduction ------------------------------------------------------

    def finalize(self, system: Any, end_time: float) -> "TraceReport":
        """Stop sampling and reduce everything into a picklable report."""
        if self._gauge_timer is not None:
            self._gauge_timer.cancel()
            self._gauge_timer = None
        pid_clusters: dict[int, int] = {}
        for process in system.processes():
            cluster = getattr(process, "cluster", None)
            if cluster is not None:
                pid_clusters[int(process.pid)] = int(cluster.cluster_id)
        breakdown = attribute_phases(self.events, self.cross_txs)
        return TraceReport(
            events=tuple(self.events),
            cross_txs=frozenset(self.cross_txs),
            slot_spans=tuple(self.slot_spans),
            open_slots=tuple(
                (pid, cluster, slot, opened)
                for (pid, slot), (opened, cluster) in sorted(self._slot_open.items())
            ),
            vc_spans=tuple(self.vc_spans),
            open_vcs=tuple(
                (pid, cluster, view, opened)
                for pid, (opened, cluster, view) in sorted(self._vc_open.items())
            ),
            gauges=tuple(self.gauge_samples),
            sent_by_type=dict(self.sent_by_type),
            gauge_ticks=self.gauge_ticks,
            gauge_interval=self.spec.gauge_interval if self.spec.gauges else 0.0,
            breakdown=breakdown,
            pid_clusters=pid_clusters,
            end_time=end_time,
        )


@dataclass(frozen=True)
class TraceReport:
    """The reduced, picklable trace attached to ``ScenarioResult.trace``.

    Holds only tuples, dicts, and frozen dataclasses so it survives
    ``ScenarioResult.detach()`` and the pooled-runner process boundary
    unchanged (serial-vs-pooled bit-identity is asserted with tracing
    enabled).
    """

    events: tuple[tuple[float, str, str, int], ...]
    cross_txs: frozenset[str]
    slot_spans: tuple[tuple[int, int, int, float, float], ...]
    open_slots: tuple[tuple[int, int, int, float], ...]
    vc_spans: tuple[tuple[int, int, int, float, float], ...]
    open_vcs: tuple[tuple[int, int, int, float], ...]
    gauges: tuple[dict[str, Any], ...]
    sent_by_type: dict[str, int]
    gauge_ticks: int
    gauge_interval: float
    breakdown: PhaseBreakdown
    pid_clusters: dict[int, int] = field(default_factory=dict)
    end_time: float = 0.0

    def summary(self) -> str:
        """One status line for ``ScenarioResult.summary()``."""
        return (
            f"{len(self.events)} phase events over {self.breakdown.txs} txs, "
            f"{len(self.slot_spans)} slot spans, "
            f"{len(self.vc_spans)} view-change spans "
            f"({len(self.open_vcs)} open), {self.gauge_ticks} gauge ticks, "
            f"{self.breakdown.attributed_fraction:.1%} latency attributed"
        )

    def as_dict(self) -> dict[str, Any]:
        """Additive flat columns for ``ScenarioResult.as_dict()``."""
        return {
            "trace_events": len(self.events),
            "trace_txs": self.breakdown.txs,
            "trace_slot_spans": len(self.slot_spans),
            "trace_vc_spans": len(self.vc_spans),
            "trace_gauge_ticks": self.gauge_ticks,
            "trace_attributed": round(self.breakdown.attributed_fraction, 6),
        }

    def phase_table(self) -> str:
        """The per-phase latency breakdown as an aligned text table."""
        return render_phase_table(self.breakdown)

    def phase_columns(self) -> dict[str, float]:
        """Additive per-phase CSV columns (see bench reporting)."""
        return phase_columns(self.breakdown)
