"""The flight recorder: lazily armed tracing with zero cost when off.

Arming model (the same contract as the adversary interceptor and the
``RequestGuard``): every ``Process``, client, and the ``Network`` carry
a ``recorder`` attribute that is ``None`` by default, and every
instrumentation hook is guarded by one ``recorder is None`` check —
the untraced hot path is untouched and runs stay bit-identical to the
pre-observability tree.  ``BaseSystem.arm_recorder`` sets the attribute
everywhere in one sweep; ``Scenario.run`` arms it when
``DeploymentSpec.trace`` is set.

Recording is append-only on the hot path (tuples into flat lists, no
allocation beyond the tuple); all reduction — phase attribution, span
pairing, report assembly — happens once in :meth:`FlightRecorder.finalize`.
Gauge sampling is the only part of the recorder that schedules
simulator events (a repeating timer); it only *reads* replica and
network state, so a gauge-sampled run produces identical protocol
behaviour and its event count exceeds the untraced run by exactly
``gauge_ticks``.  With ``gauge_interval=0`` (spans-only) even the event
count is bit-identical.

The causal layer (``TraceSpec.causal``, on by default when tracing)
additionally tags every message with a parent event id at send, matches
it back at dispatch, and records quorum deciding votes — all pure
appends with no simulator events or RNG draws, reduced by
:mod:`repro.obs.causal` into per-transaction critical paths whose span
equals measured end-to-end latency exactly.
"""

from __future__ import annotations

from statistics import median
from dataclasses import dataclass, field
from typing import Any

from .causal import (
    CriticalSummary,
    critical_paths as compute_critical_paths,
    critpath_columns,
    render_critical_table,
    render_straggler_table,
    straggler_summary,
    summarize_paths,
)
from .phases import PhaseBreakdown, attribute_phases, phase_columns, render_phase_table

__all__ = ["TraceSpec", "FlightRecorder", "TraceReport", "normalize_trace"]


@dataclass(frozen=True)
class TraceSpec:
    """What to record when a scenario is traced.

    ``gauge_interval`` is in simulated seconds; ``0`` (or
    ``gauges=False``) disables the sampling timer entirely, leaving a
    spans-only trace whose simulator event count matches the untraced
    run bit for bit.  ``causal`` adds message-level parent tagging and
    quorum deciding-vote records (:mod:`repro.obs.causal`) — pure
    recording, no simulator events, no RNG draws, so it never changes
    protocol outcome either.  ``sample=N`` keeps phase/causal chain
    events for every Nth submitted transaction only, bounding trace
    size on long high-load runs; message nodes, spans, and gauges are
    shared infrastructure and are always kept.
    """

    #: Sample live gauges on a rolling simulator timer.
    gauges: bool = True
    #: Gauge sampling period in simulated seconds (0 disables).
    gauge_interval: float = 0.01
    #: Record causal parents per message and quorum deciding votes.
    causal: bool = True
    #: Record phase events for every Nth transaction (1 = all).
    sample: int = 1


def normalize_trace(trace: "TraceSpec | bool | None") -> TraceSpec | None:
    """Coerce ``DeploymentSpec.trace`` to a spec (``True`` -> defaults)."""
    if trace is None or trace is False:
        return None
    if trace is True:
        return TraceSpec()
    return trace


class FlightRecorder:
    """Collects phase events, spans, and gauges for one scenario run."""

    def __init__(self, spec: TraceSpec | None = None) -> None:
        self.spec = spec or TraceSpec()
        #: ``(time, tx_id, phase, pid)`` in simulation-time order.
        self.events: list[tuple[float, str, str, int]] = []
        #: tx ids whose submit was cross-shard.
        self.cross_txs: set[str] = set()
        self._slot_open: dict[tuple[int, int], tuple[float, int]] = {}
        #: Completed ``(pid, cluster, slot, t_open, t_close)`` slot spans.
        self.slot_spans: list[tuple[int, int, int, float, float]] = []
        self._vc_open: dict[int, tuple[float, int, int]] = {}
        #: Completed ``(pid, cluster, view, t_open, t_close)`` view-change spans.
        self.vc_spans: list[tuple[int, int, int, float, float]] = []
        #: Cumulative outbound message count per message type name.
        self.sent_by_type: dict[str, int] = {}
        #: One sample dict per gauge tick.
        self.gauge_samples: list[dict[str, Any]] = []
        self.gauge_ticks = 0
        self._system: Any = None
        self._gauge_timer: Any = None
        #: causal layer armed (checked by Process/Network hot paths).
        self.causal_armed = bool(self.spec.causal)
        #: last assigned event id (strictly increasing; 0 = "no event").
        self._eid = 0
        #: current dispatch context: the recv/submit eid new events
        #: parent to.  Set only by begin_dispatch/submit, cleared by
        #: clear_context — timer callbacks always run with context 0.
        self._ctx = 0
        #: ``(eid, parent)`` per phase event, aligned with :attr:`events`.
        self.event_meta: list[tuple[int, int]] = []
        #: message nodes ``(eid, parent, t, kind, pid, label)``;
        #: kind is "send" (NIC departure) or "recv" (dispatch time).
        self.causal: list[tuple[int, int, float, str, int, str]] = []
        #: per-link send nodes awaiting their recv, keyed ``src<<21|dst``
        #: as ``(send_eid, id(payload))`` — multicast shares one payload
        #: object, so identity matching pairs each delivery with its
        #: (single) send node; FIFO links let unmatched earlier entries
        #: (delivered to a crashed node) be discarded on match.
        self._links: dict[int, list[tuple[int, int]]] = {}
        self._sample = max(1, self.spec.sample)
        self._submit_seq = 0
        #: tx ids whose chain is recorded (None: sampling off, keep all).
        self._sampled: set[str] | None = set() if self._sample > 1 else None
        #: quorum votes per (observer pid, kind, key): (t, voter) rows.
        self._quorum_votes: dict[tuple, list[tuple[float, int]]] = {}
        #: quorum keys whose deciding vote already arrived.
        self._quorum_done: set[tuple] = set()

    # -- hot-path hooks (every caller guards ``recorder is not None``) --

    def phase(self, time: float, tx_id: str, phase: str, pid: int) -> None:
        """Record one lifecycle milestone for ``tx_id``."""
        sampled = self._sampled
        if sampled is not None and tx_id not in sampled:
            return
        self.events.append((time, tx_id, phase, pid))
        if self.causal_armed:
            self._eid += 1
            self.event_meta.append((self._eid, self._ctx))

    def submit(self, time: float, tx_id: str, pid: int, cross: bool) -> None:
        """Record a client submit (and classify the tx's lane).

        Opens the transaction's causal chain: the submit event becomes
        the dispatch context, so the request's wire send parents to it.
        The client clears the context again right after the send.
        """
        sampled = self._sampled
        if sampled is not None:
            seq = self._submit_seq
            self._submit_seq = seq + 1
            if seq % self._sample:
                return
            sampled.add(tx_id)
        if cross:
            self.cross_txs.add(tx_id)
        self.events.append((time, tx_id, "submit", pid))
        if self.causal_armed:
            self._eid += 1
            self.event_meta.append((self._eid, self._ctx))
            self._ctx = self._eid

    def slot_open(self, time: float, pid: int, cluster: int, slot: int) -> None:
        """Open a consensus-slot span (first open per replica wins)."""
        key = (pid, slot)
        if key not in self._slot_open:
            self._slot_open[key] = (time, cluster)

    def slot_close(self, time: float, pid: int, slot: int) -> None:
        """Close a slot span at apply time (no-op if never opened here)."""
        opened = self._slot_open.pop((pid, slot), None)
        if opened is not None:
            self.slot_spans.append((pid, opened[1], slot, opened[0], time))

    def vc_open(self, time: float, pid: int, cluster: int, view: int) -> None:
        """Open a view-change span when a replica starts suspecting."""
        if pid not in self._vc_open:
            self._vc_open[pid] = (time, cluster, view)

    def vc_close(self, time: float, pid: int, view: int) -> None:
        """Close the replica's open view-change span on view install."""
        opened = self._vc_open.pop(pid, None)
        if opened is not None:
            self.vc_spans.append((pid, opened[1], view, opened[0], time))

    def count_send(self, type_name: str, count: int) -> None:
        """Bump the per-message-type outbound counter (Network hook)."""
        counters = self.sent_by_type
        counters[type_name] = counters.get(type_name, 0) + count

    # -- causal hooks (callers additionally guard ``causal_armed``) -----

    def wire_send(self, time: float, src: int, dst: int, message: Any) -> None:
        """Record a unicast send node at its NIC departure time."""
        self._eid += 1
        eid = self._eid
        self.causal.append((eid, self._ctx, time, "send", src, message.__class__.__name__))
        link = (src << 21) | dst
        queue = self._links.get(link)
        if queue is None:
            queue = self._links[link] = []
        queue.append((eid, id(message)))

    def wire_multicast(self, time: float, src: int, dsts: list, message: Any) -> None:
        """Record one send node, fanned out to every destination link."""
        self._eid += 1
        eid = self._eid
        self.causal.append((eid, self._ctx, time, "send", src, message.__class__.__name__))
        links = self._links
        entry = (eid, id(message))
        for dst in dsts:
            link = (src << 21) | dst
            queue = links.get(link)
            if queue is None:
                queue = links[link] = []
            queue.append(entry)

    def begin_dispatch(self, time: float, message: Any, src: int, pid: int) -> None:
        """Open a recv context: events the handler records parent here.

        The recv node's parent is the matching send node, found by
        payload identity on the (FIFO) link queue; earlier unmatched
        entries were delivered to a crashed process (or the link is
        non-FIFO) and are discarded — their chains clip cleanly.
        """
        queue = self._links.get((src << 21) | pid)
        parent = 0
        if queue:
            ident = id(message)
            for index, (send_eid, send_ident) in enumerate(queue):
                if send_ident == ident:
                    parent = send_eid
                    del queue[: index + 1]
                    break
        self._eid += 1
        eid = self._eid
        self.causal.append((eid, parent, time, "recv", pid, message.__class__.__name__))
        self._ctx = eid

    def clear_context(self) -> None:
        """Close the current dispatch context (try/finally on dispatch)."""
        self._ctx = 0

    def quorum_vote(
        self, time: float, pid: int, kind: str, key: Any, voter: int, decided: bool
    ) -> None:
        """Record one quorum vote arrival at observer ``pid``.

        The vote that flips ``decided`` is the *deciding vote* and
        closes the key — later votes are dropped, so engines may pass
        their current (post-flip) decided state; duplicate voters are
        dropped too, keeping the median over distinct voters.
        """
        track = (pid, kind, key)
        if track in self._quorum_done:
            return
        votes = self._quorum_votes.get(track)
        if votes is None:
            votes = self._quorum_votes[track] = []
        else:
            for _, seen in votes:
                if seen == voter:
                    return
        votes.append((time, voter))
        if decided:
            self._quorum_done.add(track)

    # -- gauges ---------------------------------------------------------

    def start_gauges(self, system: Any) -> None:
        """Arm the rolling sampling timer on the system's simulator."""
        self._system = system
        if self.spec.gauges and self.spec.gauge_interval > 0:
            self._gauge_timer = system.sim.every(
                self.spec.gauge_interval, self._sample_gauges
            )

    def _sample_gauges(self) -> None:
        system = self._system
        network = system.network
        replicas: dict[int, dict[str, int]] = {}
        for process in system.processes():
            log = getattr(process, "log", None)
            if log is None:
                continue
            batcher = getattr(process, "batcher", None)
            if batcher is not None:
                window = batcher._intra_in_flight + batcher._cross_in_flight
                queue = len(batcher._intra_queue) + sum(
                    len(lane) for lane in batcher._cross_queues.values()
                )
            else:
                window = queue = 0
            cross = getattr(process, "cross", None)
            pending_cross = 0
            if cross is not None:
                pending_cross = sum(
                    1
                    for state in cross._states.values()
                    if not getattr(state, "decided", False)
                )
            replicas[int(process.pid)] = {
                "window": window,
                "queue": queue,
                "log": log.entry_count,
                "cross_pending": pending_cross,
            }
        self.gauge_samples.append(
            {
                "t": system.sim.now,
                "in_transit": network.messages_sent
                - network.messages_delivered
                - network.messages_dropped,
                "sent_total": network.messages_sent,
                "replicas": replicas,
                "sent_by_type": dict(self.sent_by_type),
            }
        )
        self.gauge_ticks += 1

    # -- reduction ------------------------------------------------------

    def finalize(self, system: Any, end_time: float) -> "TraceReport":
        """Stop sampling and reduce everything into a picklable report."""
        if self._gauge_timer is not None:
            self._gauge_timer.cancel()
            self._gauge_timer = None
        pid_clusters: dict[int, int] = {}
        for process in system.processes():
            cluster = getattr(process, "cluster", None)
            if cluster is not None:
                pid_clusters[int(process.pid)] = int(cluster.cluster_id)
        breakdown = attribute_phases(self.events, self.cross_txs)
        deciding: list[tuple[int, str, Any, int, float, float]] = []
        for track, votes in self._quorum_votes.items():
            if track not in self._quorum_done:
                continue
            pid, kind, key = track
            t_decided, voter = votes[-1]
            lag = t_decided - median(t for t, _ in votes)
            deciding.append((pid, kind, key, voter, t_decided, lag))
        deciding.sort(key=lambda row: (row[4], row[0], row[1], str(row[2])))
        critical = None
        if self.causal_armed:
            critical = summarize_paths(
                compute_critical_paths(
                    self.events, self.event_meta, self.causal, self.cross_txs
                )
            )
        return TraceReport(
            events=tuple(self.events),
            cross_txs=frozenset(self.cross_txs),
            slot_spans=tuple(self.slot_spans),
            open_slots=tuple(
                (pid, cluster, slot, opened)
                for (pid, slot), (opened, cluster) in sorted(self._slot_open.items())
            ),
            vc_spans=tuple(self.vc_spans),
            open_vcs=tuple(
                (pid, cluster, view, opened)
                for pid, (opened, cluster, view) in sorted(self._vc_open.items())
            ),
            gauges=tuple(self.gauge_samples),
            sent_by_type=dict(self.sent_by_type),
            gauge_ticks=self.gauge_ticks,
            gauge_interval=self.spec.gauge_interval if self.spec.gauges else 0.0,
            breakdown=breakdown,
            pid_clusters=pid_clusters,
            end_time=end_time,
            event_meta=tuple(self.event_meta),
            causal=tuple(self.causal),
            deciding=tuple(deciding),
            critical=critical,
        )


@dataclass(frozen=True)
class TraceReport:
    """The reduced, picklable trace attached to ``ScenarioResult.trace``.

    Holds only tuples, dicts, and frozen dataclasses so it survives
    ``ScenarioResult.detach()`` and the pooled-runner process boundary
    unchanged (serial-vs-pooled bit-identity is asserted with tracing
    enabled).
    """

    events: tuple[tuple[float, str, str, int], ...]
    cross_txs: frozenset[str]
    slot_spans: tuple[tuple[int, int, int, float, float], ...]
    open_slots: tuple[tuple[int, int, int, float], ...]
    vc_spans: tuple[tuple[int, int, int, float, float], ...]
    open_vcs: tuple[tuple[int, int, int, float], ...]
    gauges: tuple[dict[str, Any], ...]
    sent_by_type: dict[str, int]
    gauge_ticks: int
    gauge_interval: float
    breakdown: PhaseBreakdown
    pid_clusters: dict[int, int] = field(default_factory=dict)
    end_time: float = 0.0
    #: ``(eid, parent)`` per phase event, aligned with :attr:`events`.
    event_meta: tuple[tuple[int, int], ...] = ()
    #: message send/recv nodes ``(eid, parent, t, kind, pid, label)``.
    causal: tuple[tuple[int, int, float, str, int, str], ...] = ()
    #: deciding-vote rows ``(pid, kind, key, voter, t, lag)``.
    deciding: tuple[tuple[int, str, Any, int, float, float], ...] = ()
    #: aggregated critical-path stats (None when causal was off).
    critical: CriticalSummary | None = None

    def summary(self) -> str:
        """One status line for ``ScenarioResult.summary()``."""
        line = (
            f"{len(self.events)} phase events over {self.breakdown.txs} txs, "
            f"{len(self.slot_spans)} slot spans, "
            f"{len(self.vc_spans)} view-change spans "
            f"({len(self.open_vcs)} open), {self.gauge_ticks} gauge ticks, "
            f"{self.breakdown.attributed_fraction:.1%} latency attributed"
        )
        if self.critical is not None and self.critical.txs:
            line += (
                f"; {self.critical.txs} critical paths "
                f"({self.critical.complete} complete, "
                f"wire {self.critical.wire_share:.0%})"
            )
        return line

    def as_dict(self) -> dict[str, Any]:
        """Additive flat columns for ``ScenarioResult.as_dict()``."""
        row = {
            "trace_events": len(self.events),
            "trace_txs": self.breakdown.txs,
            "trace_slot_spans": len(self.slot_spans),
            "trace_vc_spans": len(self.vc_spans),
            "trace_gauge_ticks": self.gauge_ticks,
            "trace_attributed": round(self.breakdown.attributed_fraction, 6),
        }
        row.update(self.critpath_columns())
        return row

    def phase_table(self) -> str:
        """The per-phase latency breakdown as an aligned text table."""
        return render_phase_table(self.breakdown)

    def phase_columns(self) -> dict[str, float]:
        """Additive per-phase CSV columns (see bench reporting).

        ``critpath_*`` columns ride along when causal data is present,
        so traced bench sweeps surface critical-path stats without the
        harness knowing about them.
        """
        columns = phase_columns(self.breakdown)
        columns.update(self.critpath_columns())
        return columns

    def critpath_columns(self) -> dict[str, float]:
        """Additive ``critpath_*`` CSV columns (empty when causal off)."""
        if self.critical is None:
            return {}
        return critpath_columns(self.critical)

    def critical_paths(self):
        """Recompute the per-transaction critical paths on demand."""
        return compute_critical_paths(
            self.events, self.event_meta, self.causal, self.cross_txs
        )

    def critical_table(self) -> str:
        """The critical-path breakdown as an aligned text table."""
        if self.critical is None:
            return "(no causal data recorded)"
        return render_critical_table(self.critical)

    def straggler_table(self) -> str:
        """Deciding-vote straggler statistics as an aligned text table."""
        return render_straggler_table(straggler_summary(self.deciding))
