"""Causal commit graphs: critical-path and quorum-straggler analytics.

The recorder (when ``TraceSpec.causal`` is on) tags every traced event
with a monotonically increasing event id and a *causal parent*:

* a ``send`` node's parent is the context in which the send happened —
  the ``recv`` node of the message being dispatched, or the ``submit``
  event when a client issues a fresh request;
* a ``recv`` node's parent is the matching ``send`` node (matched per
  FIFO link by payload identity, so one multicast payload fans out to
  one send node with many recv children);
* a phase event's parent is the enclosing dispatch context.  Phase
  events are *leaves* of the DAG — they never become anyone's parent —
  except ``submit``, which opens the chain.

Because the handler that completes a quorum runs inside the dispatch of
the quorum-completing message, walking parents backwards from a
transaction's ``reply`` event threads exactly through the deciding-vote
arrival of every quorum on the way: the chain *is* the latency-dominant
causal path.  :func:`critical_paths` reconstructs it per transaction;
edge timestamps are the recorded node times, so consecutive edges are
contiguous by construction and the path total ``replied - submitted``
is the identical float expression the metrics layer computes for
end-to-end latency — exact, not approximate (the same sums-exactly
discipline as :func:`repro.obs.phases.attribute_phases`).

Chains that pass through a wait the graph cannot see — a batch queued
behind the pipeline window, a client retry fired from a timer (timers
run with no context by design) — clip at the transaction's ``submit``
and the gap is surfaced as a synthetic ``wait`` edge, so paths stay
contiguous and exact even then.  Parent ids are strictly smaller than
child ids, so the walk terminates and the graph is acyclic by
construction (the trace validator re-checks both on exported files).

Quorum stragglers: engines report every quorum vote arrival
(:meth:`~repro.obs.recorder.FlightRecorder.quorum_vote`); the vote that
flips ``decided`` is the *deciding vote*, and its lag behind the median
vote arrival says how far behind the pack the quorum-completing replica
ran.  :func:`straggler_summary` aggregates that per (voter, quorum
kind).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "CritEdge",
    "TxCriticalPath",
    "EdgeStats",
    "CriticalSummary",
    "StragglerStats",
    "critical_paths",
    "summarize_paths",
    "summarize_edge_records",
    "straggler_summary",
    "render_critical_table",
    "render_straggler_table",
    "critpath_columns",
]


@dataclass(frozen=True)
class CritEdge:
    """One hop of a transaction's critical path.

    ``kind`` classifies where the time went: ``send`` is sender-side
    processing up to the NIC, ``recv`` is wire + receive queue + receive
    CPU (the node time is the dispatch time), ``phase`` is a
    same-dispatch milestone (zero width), ``wait`` is the synthetic
    clip edge for time the causal graph cannot see (batch queuing,
    timer-driven retries).
    """

    src_eid: int
    dst_eid: int
    src_pid: int
    pid: int
    kind: str
    label: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class TxCriticalPath:
    """The reconstructed submit→reply causal chain of one transaction."""

    tx: str
    cross: bool
    submitted: float
    replied: float
    #: the walk reached the submit event through recorded parents only
    #: (False: it clipped and the first edge is a synthetic ``wait``).
    complete: bool
    edges: tuple[CritEdge, ...]

    @property
    def total(self) -> float:
        """End-to-end span — the same float expression as the metrics
        layer's ``committed_at - submitted_at``, so equality is exact."""
        return self.replied - self.submitted


@dataclass(frozen=True)
class EdgeStats:
    """Critical-path time attributed to one edge type in one scope."""

    kind: str
    label: str
    count: int
    total_ms: float
    avg_ms: float
    #: fraction of the scope's summed critical-path time spent here.
    share: float


@dataclass(frozen=True)
class CriticalSummary:
    """Aggregated critical-path statistics for one traced run."""

    txs: int
    complete: int
    hops_avg: float
    #: fraction of critical-path time spent on ``recv`` edges (wire +
    #: receive queue + receive CPU).
    wire_share: float
    #: fraction spent on synthetic ``wait`` edges (invisible queuing).
    wait_share: float
    intra_avg_ms: float
    cross_avg_ms: float
    intra: tuple[EdgeStats, ...]
    cross: tuple[EdgeStats, ...]


@dataclass(frozen=True)
class StragglerStats:
    """How often (and how late) one replica supplied a deciding vote."""

    pid: int
    kind: str
    count: int
    avg_lag_ms: float
    max_lag_ms: float


def critical_paths(
    events: Sequence[tuple[float, str, str, int]],
    event_meta: Sequence[tuple[int, int]],
    causal: Iterable[tuple[int, int, float, str, int, str]],
    cross_txs: frozenset[str] | set[str],
) -> tuple[TxCriticalPath, ...]:
    """Reconstruct every committed transaction's critical path.

    ``events``/``event_meta`` are the recorder's aligned phase events and
    ``(eid, parent)`` pairs; ``causal`` holds the message ``send``/``recv``
    nodes.  Transactions without both a submit and a reply (in flight at
    the horizon, or cut by a crash) are excluded — their chains simply
    terminate at the last recorded event and are never walked.
    """
    if not event_meta:
        return ()
    # eid -> (parent, time, kind, pid, label)
    nodes: dict[int, tuple[int, float, str, int, str]] = {}
    for eid, parent, time, kind, pid, label in causal:
        nodes[eid] = (parent, time, kind, pid, label)
    submits: dict[str, tuple[int, float]] = {}
    replies: dict[str, tuple[int, int, float]] = {}
    for (time, tx, phase, pid), (eid, parent) in zip(events, event_meta):
        nodes[eid] = (parent, time, "phase", pid, phase)
        if phase == "submit":
            if tx not in submits:
                submits[tx] = (eid, time)
        elif phase == "reply" and tx not in replies:
            replies[tx] = (eid, parent, time)

    paths: list[TxCriticalPath] = []
    for tx, (reply_eid, reply_parent, replied) in replies.items():
        start = submits.get(tx)
        if start is None:
            continue
        submit_eid, submitted = start
        if replied < submitted or reply_eid <= submit_eid:
            continue
        # Backward walk: parent ids are strictly smaller than child ids,
        # so the chain strictly decreases and must terminate.  It either
        # reaches this transaction's submit (complete) or escapes the
        # transaction's window / hits a contextless event (clip).
        chain = [reply_eid]
        cursor = reply_parent
        complete = False
        while cursor:
            if cursor == submit_eid:
                complete = True
                break
            if cursor < submit_eid or cursor >= chain[-1]:
                break
            node = nodes.get(cursor)
            if node is None:
                break
            chain.append(cursor)
            cursor = node[0]
        chain.append(submit_eid)
        chain.reverse()

        edges = []
        for index in range(len(chain) - 1):
            src_eid, dst_eid = chain[index], chain[index + 1]
            _, src_t, _, src_pid, _ = nodes[src_eid]
            _, dst_t, dst_kind, dst_pid, dst_label = nodes[dst_eid]
            if index == 0 and not complete:
                dst_kind = dst_label = "wait"
            edges.append(
                CritEdge(
                    src_eid=src_eid,
                    dst_eid=dst_eid,
                    src_pid=src_pid,
                    pid=dst_pid,
                    kind=dst_kind,
                    label=dst_label,
                    t0=src_t,
                    t1=dst_t,
                )
            )
        paths.append(
            TxCriticalPath(
                tx=tx,
                cross=tx in cross_txs,
                submitted=submitted,
                replied=replied,
                complete=complete,
                edges=tuple(edges),
            )
        )
    paths.sort(key=lambda path: (path.submitted, path.tx))
    return tuple(paths)


def summarize_paths(paths: Sequence[TxCriticalPath]) -> CriticalSummary:
    """Aggregate reconstructed paths into a :class:`CriticalSummary`."""
    records = [
        (path.tx, path.cross, edge.kind, f"{edge.kind}:{edge.label}", edge.duration)
        for path in paths
        for edge in path.edges
    ]
    complete = sum(1 for path in paths if path.complete)
    return summarize_edge_records(records, txs=len(paths), complete=complete)


def summarize_edge_records(
    records: Iterable[tuple[str, bool, str, str, float]],
    txs: int,
    complete: int,
) -> CriticalSummary:
    """Aggregate ``(tx, cross, kind, label, duration)`` edge records.

    Shared by :func:`summarize_paths` and the offline report, which
    rebuilds the records from a Chrome trace's flow events.  Per-scope
    averages divide summed edge durations by distinct transactions —
    since every path's edges telescope over its span, that sum matches
    the summed end-to-end latency (to float rounding).
    """
    per_scope: dict[bool, dict[tuple[str, str], list[float]]] = {False: {}, True: {}}
    scope_total = {False: 0.0, True: 0.0}
    scope_txs: dict[bool, set[str]] = {False: set(), True: set()}
    wire = wait = total_all = 0.0
    hops = 0
    for tx, cross, kind, label, duration in records:
        hops += 1
        bucket = per_scope[cross].setdefault((kind, label), [0.0, 0.0])
        bucket[0] += 1
        bucket[1] += duration
        scope_total[cross] += duration
        scope_txs[cross].add(tx)
        total_all += duration
        if kind == "recv":
            wire += duration
        elif kind == "wait":
            wait += duration

    def stats(cross: bool) -> tuple[EdgeStats, ...]:
        denom = scope_total[cross]
        ordered = sorted(per_scope[cross].items(), key=lambda item: -item[1][1])
        return tuple(
            EdgeStats(
                kind=kind,
                label=label,
                count=int(count),
                total_ms=total * 1e3,
                avg_ms=total / count * 1e3,
                share=(total / denom) if denom > 0 else 0.0,
            )
            for (kind, label), (count, total) in ordered
        )

    intra_txs, cross_txs_count = len(scope_txs[False]), len(scope_txs[True])
    return CriticalSummary(
        txs=txs,
        complete=complete,
        hops_avg=(hops / txs) if txs else 0.0,
        wire_share=(wire / total_all) if total_all > 0 else 0.0,
        wait_share=(wait / total_all) if total_all > 0 else 0.0,
        intra_avg_ms=(scope_total[False] / intra_txs * 1e3) if intra_txs else 0.0,
        cross_avg_ms=(scope_total[True] / cross_txs_count * 1e3) if cross_txs_count else 0.0,
        intra=stats(False),
        cross=stats(True),
    )


def straggler_summary(
    deciding: Iterable[tuple[int, str, Any, int, float, float]],
) -> tuple[StragglerStats, ...]:
    """Aggregate deciding-vote rows per (voter, quorum kind).

    Rows are the recorder's ``(observer_pid, kind, key, voter, t, lag)``
    tuples; ``lag`` is the deciding vote's arrival behind the median
    vote of its quorum.  Sorted worst average lag first.
    """
    groups: dict[tuple[int, str], list[float]] = {}
    for _pid, kind, _key, voter, _t, lag in deciding:
        groups.setdefault((int(voter), kind), []).append(lag)
    out = [
        StragglerStats(
            pid=voter,
            kind=kind,
            count=len(lags),
            avg_lag_ms=sum(lags) / len(lags) * 1e3,
            max_lag_ms=max(lags) * 1e3,
        )
        for (voter, kind), lags in groups.items()
    ]
    out.sort(key=lambda entry: (-entry.avg_lag_ms, entry.pid, entry.kind))
    return tuple(out)


def render_critical_table(summary: CriticalSummary) -> str:
    """Render the critical-path breakdown as an aligned text table."""
    header = f"{'scope':7s} {'critical edge':28s} {'count':>7s} {'avg ms':>9s} {'share':>7s}"
    lines = [header, "-" * len(header)]
    for scope, stats in (("intra", summary.intra), ("cross", summary.cross)):
        for entry in stats:
            lines.append(
                f"{scope:7s} {entry.label:28s} {entry.count:>7d} "
                f"{entry.avg_ms:>9.3f} {entry.share:>6.1%}"
            )
    lines.append(
        f"{summary.txs} critical paths ({summary.complete} complete); "
        f"avg {summary.hops_avg:.1f} hops; wire {summary.wire_share:.1%}, "
        f"wait {summary.wait_share:.1%} of critical-path time"
    )
    return "\n".join(lines)


def render_straggler_table(stats: Sequence[StragglerStats]) -> str:
    """Render deciding-vote straggler statistics as a text table."""
    header = f"{'replica':>7s} {'quorum':14s} {'deciding':>8s} {'avg lag ms':>11s} {'max lag ms':>11s}"
    lines = [header, "-" * len(header)]
    for entry in stats:
        lines.append(
            f"{entry.pid:>7d} {entry.kind:14s} {entry.count:>8d} "
            f"{entry.avg_lag_ms:>11.3f} {entry.max_lag_ms:>11.3f}"
        )
    if not stats:
        lines.append("(no deciding votes recorded)")
    return "\n".join(lines)


def critpath_columns(summary: CriticalSummary) -> dict[str, float]:
    """Flatten the summary into additive ``critpath_*`` CSV columns."""
    return {
        "critpath_txs": summary.txs,
        "critpath_complete": summary.complete,
        "critpath_hops_avg": round(summary.hops_avg, 3),
        "critpath_wire_share": round(summary.wire_share, 6),
        "critpath_wait_share": round(summary.wait_share, 6),
        "critpath_intra_avg_ms": round(summary.intra_avg_ms, 4),
        "critpath_cross_avg_ms": round(summary.cross_avg_ms, 4),
    }
