"""Trace exporters: Chrome trace-event JSON and a JSONL event dump.

The Chrome writer emits the trace-event format that ``chrome://tracing``
and Perfetto load: one process group per cluster, one track (thread)
per replica, async ``"b"``/``"e"`` span pairs for consensus slots and
view changes (async, not stack-scoped ``B``/``E``, because pipelined
slots overlap without nesting), ``"i"`` instant events for request
phase milestones, and ``"C"`` counter events for the sampled gauges.
Spans still open at the end of the run are closed at the final
timestamp with ``args: {"open": true}`` so every ``"b"`` has a matching
``"e"`` — the validator checks that balance.

When causal data is present (:mod:`repro.obs.causal`), each
critical-path hop additionally becomes a flow ``"s"``/``"f"`` pair
(``cat: "flow"``) — Perfetto renders them as arrows between tracks, so
the latency-dominant chain of a transaction is visible as a connected
path through the spans.  Flow args are self-contained: every ``"f"``
carries the event id of its own ``"s"`` as ``parent``, so the validator
can check edge integrity (no dangling parents, no cycles) on the file
alone.  Deciding quorum votes are ``"i"`` instants (``cat:
"deciding"``) on the observer's track.

The JSONL writer dumps one self-describing JSON object per line (meta
header first, then phase/slot/view_change/causal/deciding/gauge rows)
— the format the report CLI and ad-hoc ``jq`` pipelines consume; phase
rows carry their ``eid``/``parent`` when the causal layer recorded
them, letting the report rebuild critical paths offline.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recorder import TraceReport

__all__ = ["chrome_trace_events", "write_chrome_trace", "write_jsonl", "write_trace"]

#: Chrome process-group id for tracks with no cluster (clients, network).
GLOBAL_GROUP = -1


def _us(time: float) -> int:
    return int(round(time * 1e6))


def chrome_trace_events(report: "TraceReport") -> list[dict[str, Any]]:
    """Build the sorted ``traceEvents`` list for a report."""
    clusters = report.pid_clusters
    end_us = _us(report.end_time)
    events: list[dict[str, Any]] = []
    seen_tracks: set[tuple[int, int]] = set()

    def track(pid: int) -> tuple[int, int]:
        group = clusters.get(pid, GLOBAL_GROUP)
        seen_tracks.add((group, pid))
        return group, pid

    def span(cat: str, name: str, span_id: str, pid: int, t0: float, t1: float, open_: bool) -> None:
        group, tid = track(pid)
        base = {"cat": cat, "name": name, "id": span_id, "pid": group, "tid": tid}
        events.append({**base, "ph": "b", "ts": _us(t0), "args": {}})
        close_args = {"open": True} if open_ else {}
        events.append({**base, "ph": "e", "ts": _us(t1), "args": close_args})

    for pid, _cluster, slot, t0, t1 in report.slot_spans:
        span("slot", f"slot {slot}", f"s{pid}:{slot}", pid, t0, t1, False)
    for pid, _cluster, slot, t0 in report.open_slots:
        span("slot", f"slot {slot}", f"s{pid}:{slot}", pid, t0, report.end_time, True)
    for pid, _cluster, view, t0, t1 in report.vc_spans:
        span("view_change", f"view-change v{view}", f"v{pid}:{view}", pid, t0, t1, False)
    for pid, _cluster, view, t0 in report.open_vcs:
        span(
            "view_change", f"view-change v{view}", f"v{pid}:{view}",
            pid, t0, report.end_time, True,
        )

    cross = report.cross_txs
    for time, tx, phase, pid in report.events:
        group, tid = track(pid)
        events.append(
            {
                "ph": "i",
                "cat": "phase",
                "name": phase,
                "pid": group,
                "tid": tid,
                "ts": _us(time),
                "s": "t",
                "args": {"tx": tx, "cross": tx in cross},
            }
        )

    for sample in report.gauges:
        ts = _us(sample["t"])
        events.append(
            {
                "ph": "C",
                "cat": "gauge",
                "name": "net in-transit",
                "pid": GLOBAL_GROUP,
                "tid": 0,
                "ts": ts,
                "args": {"messages": sample["in_transit"]},
            }
        )
        for pid, values in sample["replicas"].items():
            group = clusters.get(pid, GLOBAL_GROUP)
            events.append(
                {
                    "ph": "C",
                    "cat": "gauge",
                    "name": f"r{pid} pipeline",
                    "pid": group,
                    "tid": pid,
                    "ts": ts,
                    "args": {"window": values["window"], "queue": values["queue"]},
                }
            )

    # Critical-path hops as Perfetto flow arrows.  Zero-width phase
    # edges are skipped (the instants above already mark them); wait
    # edges are kept — the arrow from submit to the clip point is
    # exactly the invisible queuing the analyzer charges the tx.
    flow_id = 0
    for path in report.critical_paths():
        for edge in path.edges:
            if edge.kind == "phase":
                continue
            flow_id += 1
            group0, tid0 = track(edge.src_pid)
            group1, tid1 = track(edge.pid)
            base = {"cat": "flow", "name": f"critpath:{edge.label}", "id": f"f{flow_id}"}
            events.append(
                {
                    **base,
                    "ph": "s",
                    "pid": group0,
                    "tid": tid0,
                    "ts": _us(edge.t0),
                    "args": {"eid": edge.src_eid, "tx": path.tx},
                }
            )
            events.append(
                {
                    **base,
                    "ph": "f",
                    "bp": "e",
                    "pid": group1,
                    "tid": tid1,
                    "ts": _us(edge.t1),
                    "args": {
                        "eid": edge.dst_eid,
                        "parent": edge.src_eid,
                        "kind": edge.kind,
                        "label": edge.label,
                        "dur_ms": round((edge.t1 - edge.t0) * 1e3, 6),
                        "tx": path.tx,
                        "cross": path.cross,
                    },
                }
            )

    for pid, kind, key, voter, time, lag in report.deciding:
        group, tid = track(pid)
        events.append(
            {
                "ph": "i",
                "cat": "deciding",
                "name": f"deciding:{kind}",
                "pid": group,
                "tid": tid,
                "ts": _us(time),
                "s": "t",
                "args": {"voter": voter, "lag_ms": round(lag * 1e3, 6), "key": str(key)},
            }
        )

    # Stable sort: a zero-length span's "b" was appended before its "e"
    # and stays first, so pairs never invert at equal timestamps.
    events.sort(key=lambda event: event["ts"])

    meta: list[dict[str, Any]] = []
    for group, tid in sorted(seen_tracks):
        name = f"replica {tid}" if group != GLOBAL_GROUP else f"client {tid}"
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": group,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )
    for group in sorted({group for group, _tid in seen_tracks} | {GLOBAL_GROUP}):
        label = f"cluster {group}" if group != GLOBAL_GROUP else "clients/network"
        meta.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": group,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )
    return meta + events


def write_chrome_trace(report: "TraceReport", path: str) -> None:
    """Write the report as Chrome trace-event JSON at ``path``."""
    payload = {
        "traceEvents": chrome_trace_events(report),
        "displayTimeUnit": "ms",
        "otherData": {"sent_by_type": report.sent_by_type},
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def jsonl_rows(report: "TraceReport") -> Iterator[dict[str, Any]]:
    """Yield the JSONL dump rows for a report, meta header first."""
    yield {
        "type": "meta",
        "end": report.end_time,
        "gauge_interval": report.gauge_interval,
        "sent_by_type": report.sent_by_type,
    }
    cross = report.cross_txs
    if report.event_meta:
        for (time, tx, phase, pid), (eid, parent) in zip(
            report.events, report.event_meta
        ):
            yield {
                "type": "phase",
                "t": time,
                "tx": tx,
                "phase": phase,
                "pid": pid,
                "cross": tx in cross,
                "eid": eid,
                "parent": parent,
            }
    else:
        for time, tx, phase, pid in report.events:
            yield {
                "type": "phase",
                "t": time,
                "tx": tx,
                "phase": phase,
                "pid": pid,
                "cross": tx in cross,
            }
    for pid, cluster, slot, t0, t1 in report.slot_spans:
        yield {
            "type": "slot", "pid": pid, "cluster": cluster, "slot": slot,
            "t0": t0, "t1": t1, "open": False,
        }
    for pid, cluster, slot, t0 in report.open_slots:
        yield {
            "type": "slot", "pid": pid, "cluster": cluster, "slot": slot,
            "t0": t0, "t1": report.end_time, "open": True,
        }
    for pid, cluster, view, t0, t1 in report.vc_spans:
        yield {
            "type": "view_change", "pid": pid, "cluster": cluster, "view": view,
            "t0": t0, "t1": t1, "open": False,
        }
    for pid, cluster, view, t0 in report.open_vcs:
        yield {
            "type": "view_change", "pid": pid, "cluster": cluster, "view": view,
            "t0": t0, "t1": report.end_time, "open": True,
        }
    for eid, parent, time, kind, pid, label in report.causal:
        yield {
            "type": "causal", "eid": eid, "parent": parent, "t": time,
            "kind": kind, "pid": pid, "label": label,
        }
    for pid, kind, key, voter, time, lag in report.deciding:
        yield {
            "type": "deciding", "pid": pid, "kind": kind, "key": str(key),
            "voter": voter, "t": time, "lag": lag,
        }
    for sample in report.gauges:
        yield {"type": "gauge", **sample}


def write_jsonl(report: "TraceReport", path: str) -> None:
    """Write the report as a JSONL event dump at ``path``."""
    with open(path, "w") as handle:
        for row in jsonl_rows(report):
            handle.write(json.dumps(row))
            handle.write("\n")


def write_trace(report: "TraceReport", path: str) -> None:
    """Write ``report`` to ``path``, picking the format by extension.

    ``*.jsonl`` gets the JSONL event dump; anything else gets Chrome
    trace-event JSON.
    """
    if path.endswith(".jsonl"):
        write_jsonl(report, path)
    else:
        write_chrome_trace(report, path)
