"""Observability: the simulation-time flight recorder (``repro.obs``).

The recorder is armed per-scenario through ``DeploymentSpec(trace=...)``
and follows the same lazy-arming contract as the adversary interceptor
and the ``RequestGuard``: every hook on the hot path is a single
``recorder is None`` check, so untraced runs take the untouched code
path and stay bit-identical to the pre-observability tree (asserted
differentially in ``tests/integration/test_obs_scenarios.py``).

Four pillars:

* **request lifecycle spans** — every client request leaves timestamped
  phase events (submit, primary enqueue, batch seal, propose, prepare
  quorum, commit quorum, apply, reply — plus the cross-shard lane
  variants), reduced to a per-phase latency breakdown
  (:class:`~repro.obs.phases.PhaseStats`, intra vs cross) attached to
  ``ScenarioResult.trace``;
* **causal commit graphs** — every traced message carries a causal
  parent event id; :mod:`repro.obs.causal` reconstructs each committed
  transaction's critical path (span equals measured e2e latency
  exactly), attributes time per edge, and aggregates which replica's
  deciding vote completed each quorum and how far behind the median it
  ran;
* **live gauges** — a rolling simulator timer samples per-replica
  pipeline window occupancy, pending-queue depth, ordering-log size,
  undecided cross-shard slots, network in-transit messages, and
  per-message-type send counters as time series;
* **exporters** — Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto; one track per replica, spans for slots and view changes,
  flow arrows along critical paths) and a JSONL event dump, summarised
  by ``python -m repro.obs.report``.
"""

from .causal import (
    CritEdge,
    CriticalSummary,
    EdgeStats,
    StragglerStats,
    TxCriticalPath,
    critical_paths,
    render_critical_table,
    render_straggler_table,
    straggler_summary,
    summarize_paths,
)
from .phases import PhaseBreakdown, PhaseStats, attribute_phases, render_phase_table
from .recorder import FlightRecorder, TraceReport, TraceSpec, normalize_trace
from .export import write_chrome_trace, write_jsonl, write_trace

__all__ = [
    "CritEdge",
    "CriticalSummary",
    "EdgeStats",
    "FlightRecorder",
    "PhaseBreakdown",
    "PhaseStats",
    "StragglerStats",
    "TraceReport",
    "TraceSpec",
    "TxCriticalPath",
    "attribute_phases",
    "critical_paths",
    "normalize_trace",
    "render_critical_table",
    "render_phase_table",
    "render_straggler_table",
    "straggler_summary",
    "summarize_paths",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
