"""Observability: the simulation-time flight recorder (``repro.obs``).

The recorder is armed per-scenario through ``DeploymentSpec(trace=...)``
and follows the same lazy-arming contract as the adversary interceptor
and the ``RequestGuard``: every hook on the hot path is a single
``recorder is None`` check, so untraced runs take the untouched code
path and stay bit-identical to the pre-observability tree (asserted
differentially in ``tests/integration/test_obs_scenarios.py``).

Three pillars:

* **request lifecycle spans** — every client request leaves timestamped
  phase events (submit, primary enqueue, batch seal, propose, prepare
  quorum, commit quorum, apply, reply — plus the cross-shard lane
  variants), reduced to a per-phase latency breakdown
  (:class:`~repro.obs.phases.PhaseStats`, intra vs cross) attached to
  ``ScenarioResult.trace``;
* **live gauges** — a rolling simulator timer samples per-replica
  pipeline window occupancy, pending-queue depth, ordering-log size,
  undecided cross-shard slots, network in-transit messages, and
  per-message-type send counters as time series;
* **exporters** — Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto; one track per replica, spans for slots and view changes)
  and a JSONL event dump, summarised by ``python -m repro.obs.report``.
"""

from .phases import PhaseBreakdown, PhaseStats, attribute_phases, render_phase_table
from .recorder import FlightRecorder, TraceReport, TraceSpec, normalize_trace
from .export import write_chrome_trace, write_jsonl, write_trace

__all__ = [
    "FlightRecorder",
    "PhaseBreakdown",
    "PhaseStats",
    "TraceReport",
    "TraceSpec",
    "attribute_phases",
    "normalize_trace",
    "render_phase_table",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
