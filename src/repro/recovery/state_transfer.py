"""State transfer: how a recovered or lagging replica catches up.

A replica that restarts after a crash (``recover_node``), or detects it
fell behind (persistent apply gap, or a peer checkpoint a full interval
beyond its applied height), multicasts a
:class:`~repro.recovery.messages.StateRequest` to its cluster peers.
Each peer answers with its latest stable checkpoint — when newer than
the requester's applied height — plus the suffix of decided slots above
it.  The joiner:

1. verifies the checkpoint digest by recomputing it from the shipped
   snapshot and anchor block, and waits for ``f + 1`` matching
   responses in the Byzantine model (one suffices for crash-only
   clusters, where nodes fail but do not lie);
2. installs the snapshot: account store, chain anchor, at-most-once
   transaction index, and the ordering log's low-water mark;
3. replays the decided suffix through the ordinary
   ``log.decide → after_decide`` path (client replies are suppressed
   during replay), reconstructing the exact blocks every other replica
   holds;
4. adopts the helpers' view — the highest view a quorum of distinct
   helpers attests, so one lying helper cannot move the joiner onto a
   never-elected primary — and rejoins consensus.

Without checkpointing (``checkpoint_interval == 0``) the suffix simply
starts at the requester's applied height — full-log replay — so
``recover_node`` turns into a real crash→recover→catch-up→serve cycle
either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common.types import FaultModel
from ..consensus.base import HandlerTable
from ..consensus.log import EntryStatus, item_digest
from ..txn.accounts import AccountStore
from .checkpoint import StableCheckpoint, checkpoint_digest
from .messages import StateRequest, StateResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.replica import SharPerReplica

__all__ = ["StateTransferManager"]


class StateTransferManager(HandlerTable):
    """Serves and consumes checkpoint + suffix state transfers for one replica."""

    HANDLERS = {StateRequest: "_on_request", StateResponse: "_on_response"}

    def __init__(self, host: "SharPerReplica") -> None:
        self.host = host
        self._build_handlers()
        #: matching responses required before trusting a snapshot/entry.
        self.quorum = 1 if host.cluster.fault_model is FaultModel.CRASH else host.cluster.f + 1
        self._cooldown_until = 0.0
        self._round_active = False
        #: (checkpoint_seq, digest, tx_index) → verified helper pids.
        #: The tx_index rides in the key because the checkpoint digest
        #: covers only anchor + snapshot: ``f + 1`` matching responses
        #: must match on the at-most-once index too, or one faulty
        #: helper could blind the joiner's duplicate detection.
        self._snapshot_votes: dict[tuple, set[int]] = {}
        #: (slot, digest, positions, proposer) → helper pids.  The full
        #: payload is the key — a quorum on (slot, digest) alone would
        #: let the first (possibly faulty) responder supply positions
        #: the honest matchers never vouched for.
        self._entry_votes: dict[tuple, set[int]] = {}
        #: helper pid → highest view it claimed this round.  The joiner
        #: adopts the highest view a quorum of distinct helpers attests
        #: *at least* (a claim of view ``v`` vouches for every view
        #: below it) — one Byzantine helper inflating its claim can
        #: neither move the joiner onto a never-elected view (the
        #: state-transfer variant of the forged-view attack) nor split
        #: the vote so the honest majority's view goes unadopted.
        self._view_claims: dict[int, int] = {}
        self.requested = 0
        self.served = 0
        self.completed = 0
        self.installed = 0
        #: responses whose digest failed recomputation (dropped).
        self.rejected = 0

    # ------------------------------------------------------------------
    # requester side
    # ------------------------------------------------------------------
    def request_catch_up(self) -> None:
        """Ask the cluster for the latest stable checkpoint and suffix.

        Rate-limited to one round per view-change timeout so gap
        monitoring and checkpoint lag detection cannot flood the
        cluster; an unanswered round simply re-arms on the next trigger.
        """
        host = self.host
        now = host.now
        if now < self._cooldown_until:
            return
        self._cooldown_until = now + host.view_change_timeout
        self._round_active = True
        self._snapshot_votes.clear()
        self._entry_votes.clear()
        self._view_claims.clear()
        self.requested += 1
        host.multicast_cluster(
            StateRequest(node=host.node_id, have_seq=host.log.next_apply - 1)
        )

    # ------------------------------------------------------------------
    # helper side
    # ------------------------------------------------------------------
    def _on_request(self, message: StateRequest, src: int) -> None:
        host = self.host
        self.served += 1
        stable = host.checkpoints.stable
        if stable is not None and stable.seq > message.have_seq:
            base = stable.seq
            digest = stable.digest
            anchor = stable.anchor
            snapshot = stable.snapshot
            tx_index = host.chain.tx_index_upto(base)
        else:
            # No newer checkpoint: the decided suffix alone carries the
            # catch-up (full-log replay when checkpointing is off).
            base = message.have_seq
            digest = ""
            anchor = None
            snapshot = None
            tx_index = ()
        entries = tuple(
            (
                entry.slot,
                entry.digest,
                entry.item,
                tuple(sorted(entry.positions.items())),
                entry.proposer,
                entry.view,
            )
            for entry in host.log.entries()
            if entry.slot > base and entry.status is not EntryStatus.PENDING
        )
        host.send_to(
            src,
            StateResponse(
                checkpoint_seq=base,
                checkpoint_digest=digest,
                node=host.node_id,
                view=host.intra.view,
                anchor=anchor,
                snapshot=snapshot,
                tx_index=tx_index,
                entries=entries,
            ),
        )

    # ------------------------------------------------------------------
    # installing responses
    # ------------------------------------------------------------------
    def _on_response(self, message: StateResponse, src: int) -> None:
        host = self.host
        if not self._round_active:
            return
        progressed = False
        if message.snapshot is not None and message.anchor is not None:
            if self._verify_snapshot(message):
                progressed = self._maybe_install_snapshot(message, src) or progressed
            else:
                self.rejected += 1
                return
        progressed = self._replay_entries(message, src) or progressed
        self._adopt_attested_view(message.view, src)
        if progressed:
            self.completed += 1
            self._round_active = False

    def _adopt_attested_view(self, view: int, src: int) -> None:
        """Adopt the highest view a quorum of helpers attests at least.

        A helper claiming view ``v`` vouches for every view at or below
        ``v``, so the attested view is the quorum-th largest claim —
        helpers reporting *different* views (or one Byzantine helper
        inflating its claim) still let the honest floor through.
        """
        claims = self._view_claims
        previous = claims.get(src)
        if previous is None or view > previous:
            claims[src] = view
        if len(claims) < self.quorum:
            return
        ranked = sorted(claims.values(), reverse=True)
        attested = ranked[self.quorum - 1]
        host = self.host
        if attested > host.intra.view:
            host.intra.view = attested
            host.intra.on_view_installed(attested)

    def _verify_snapshot(self, message: StateResponse) -> bool:
        anchor_hash = getattr(message.anchor, "block_hash", None)
        if anchor_hash is None:
            return False
        recomputed = checkpoint_digest(
            message.checkpoint_seq, anchor_hash, AccountStore.snapshot_digest(message.snapshot)
        )
        return recomputed == message.checkpoint_digest

    def _maybe_install_snapshot(self, message: StateResponse, src: int) -> bool:
        host = self.host
        if message.checkpoint_seq <= host.log.next_apply - 1:
            return False
        key = (message.checkpoint_seq, message.checkpoint_digest, message.tx_index)
        voters = self._snapshot_votes.setdefault(key, set())
        voters.add(src)
        if len(voters) < self.quorum:
            return False
        host.store.restore(message.snapshot)
        host.chain.install_anchor(message.anchor, dict(message.tx_index))
        host.log.install_checkpoint(message.checkpoint_seq)
        host.checkpoints.adopt(
            StableCheckpoint(
                seq=message.checkpoint_seq,
                digest=message.checkpoint_digest,
                anchor=message.anchor,
                snapshot=dict(message.snapshot),
            )
        )
        self.installed += 1
        return True

    def _replay_entries(self, message: StateResponse, src: int) -> bool:
        """Decide verified suffix entries; the ordinary apply path runs them."""
        host = self.host
        log = host.log
        decided_any = False
        for slot, digest, item, positions, proposer, view in message.entries:
            if slot <= log.next_apply - 1:
                continue
            entry = log.entry(slot)
            if entry is not None and entry.status is not EntryStatus.PENDING:
                continue
            if item_digest(item) != digest:
                self.rejected += 1
                continue
            key = (slot, digest, positions, proposer)
            voters = self._entry_votes.setdefault(key, set())
            voters.add(src)
            if len(voters) < self.quorum:
                continue
            log.decide(
                slot, digest, item,
                positions=dict(positions), proposer=proposer, view=view,
            )
            decided_any = True
        if decided_any:
            host.replay_decided()
        return decided_any
