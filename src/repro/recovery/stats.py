"""Aggregated recovery counters reported by :class:`repro.api.ScenarioResult`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.system import BaseSystem

__all__ = ["RecoveryStats", "collect_recovery_stats"]


@dataclass
class RecoveryStats:
    """System-wide recovery activity for one scenario run (picklable)."""

    #: checkpoints produced / stabilised, summed over all replicas.
    checkpoints_taken: int = 0
    checkpoints_stable: int = 0
    #: ordering-log entries dropped / ledger blocks pruned by compaction.
    entries_truncated: int = 0
    blocks_pruned: int = 0
    #: highest stable checkpoint sequence any replica reached.
    max_stable_seq: int = 0
    #: largest ordering-log entry count any replica ever held — the
    #: number the bounded-memory experiments assert on.
    peak_log_entries: int = 0
    #: state-transfer rounds requested / requests served / rounds that
    #: made progress / full snapshots installed.
    state_transfers_requested: int = 0
    state_transfers_served: int = 0
    state_transfers_completed: int = 0
    snapshots_installed: int = 0
    #: cross-shard termination rounds and their outcomes.
    terminations_started: int = 0
    terminations_adopted: int = 0
    terminations_noop: int = 0
    terminations_in_flight: int = 0
    #: safety red flags (should stay 0 with at most f faults per cluster).
    divergent_checkpoints: int = 0

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary form for CSV/JSON reporting."""
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoints_stable": self.checkpoints_stable,
            "entries_truncated": self.entries_truncated,
            "blocks_pruned": self.blocks_pruned,
            "max_stable_seq": self.max_stable_seq,
            "peak_log_entries": self.peak_log_entries,
            "state_transfers_completed": self.state_transfers_completed,
            "terminations_adopted": self.terminations_adopted,
            "terminations_noop": self.terminations_noop,
        }

    def summary(self) -> str:
        """One line suitable for example/CLI output."""
        return (
            f"checkpoints {self.checkpoints_stable} stable "
            f"(max seq {self.max_stable_seq}), "
            f"log peak {self.peak_log_entries} entries "
            f"({self.entries_truncated} truncated, {self.blocks_pruned} blocks pruned), "
            f"state transfers {self.state_transfers_completed}, "
            f"terminations {self.terminations_adopted} adopted / "
            f"{self.terminations_noop} no-op"
        )


def collect_recovery_stats(system: "BaseSystem") -> RecoveryStats | None:
    """Sum the recovery counters over every replica that carries them.

    Returns ``None`` for systems whose replicas have no recovery
    managers (e.g. the single-group baselines), so reports can omit the
    section entirely.
    """
    stats = RecoveryStats()
    found = False
    for process in system.processes():
        checkpoints = getattr(process, "checkpoints", None)
        if checkpoints is None:
            continue
        found = True
        stats.checkpoints_taken += checkpoints.taken
        stats.checkpoints_stable += checkpoints.stabilized
        stats.entries_truncated += checkpoints.entries_truncated
        stats.blocks_pruned += checkpoints.blocks_pruned
        stats.divergent_checkpoints += checkpoints.divergent
        if checkpoints.stable is not None:
            stats.max_stable_seq = max(stats.max_stable_seq, checkpoints.stable.seq)
        stats.peak_log_entries = max(stats.peak_log_entries, process.log.peak_entry_count)
        transfer = process.state_transfer
        stats.state_transfers_requested += transfer.requested
        stats.state_transfers_served += transfer.served
        stats.state_transfers_completed += transfer.completed
        stats.snapshots_installed += transfer.installed
        terminator = process.terminator
        stats.terminations_started += terminator.started
        stats.terminations_adopted += terminator.adopted
        stats.terminations_noop += terminator.noop_filled
        stats.terminations_in_flight += terminator.resolved_in_flight
    return stats if found else None
