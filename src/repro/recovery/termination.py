"""Termination rounds for in-flight cross-shard instances at view changes.

The residual atomicity window the ROADMAP flags: a cross-shard commit
quorum can form just before a view change, and the new primary — seeing
only a *pending* local slot — used to fill it with a no-op immediately,
racing the in-flight commit (the engines dropped the loser and counted
it in ``late_commits``).  The termination round closes the window:

1. the new primary defers the fill and multicasts a
   :class:`~repro.recovery.messages.TerminationRequest` to every node of
   every involved cluster;
2. nodes that decided the instance reply with the full position vector,
   proposer, and item; undecided nodes reply ``decided=False``;
3. on ``f + 1`` matching decided replies (one in the crash model) the
   primary *adopts* the decision — deciding its local slot with the full
   position vector, so the transaction executes atomically — and shares
   a :class:`~repro.recovery.messages.TerminationDecision` with its
   backups;
4. if the termination timer expires with no decision evidence (and the
   slot is still undecided locally), the primary no-op-fills the slot
   through ordinary intra-shard consensus, exactly as before.

View changes are anchored on stable checkpoints
(:class:`~repro.recovery.checkpoint.CheckpointManager`), so termination
only ever runs for slots above the cluster's low-water mark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..common.errors import ConsensusError
from ..common.types import ClusterId, FaultModel
from ..consensus.base import HandlerTable
from ..consensus.log import EntryStatus, Noop, item_digest
from ..sim.simulator import Timer
from .messages import TerminationDecision, TerminationReply, TerminationRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.replica import SharPerReplica

__all__ = ["CrossShardTerminator"]


@dataclass
class _TerminationState:
    """Asking-primary bookkeeping for one in-flight instance."""

    digest: str
    slot: int
    view: int
    item: object
    involved: tuple[ClusterId, ...]
    #: positions-vector key → voter pids reporting that decision.
    votes: dict[tuple, set[int]] = field(default_factory=dict)
    #: one representative decided reply per positions-vector key.
    evidence: dict[tuple, TerminationReply] = field(default_factory=dict)
    resolved: bool = False
    timer: Timer | None = None


class CrossShardTerminator(HandlerTable):
    """Runs checkpoint-anchored termination rounds for one replica."""

    HANDLERS = {
        TerminationRequest: "_on_request",
        TerminationReply: "_on_reply",
        TerminationDecision: "_on_decision",
    }

    def __init__(self, host: "SharPerReplica") -> None:
        self.host = host
        self._build_handlers()
        self.quorum = 1 if host.cluster.fault_model is FaultModel.CRASH else host.cluster.f + 1
        self._states: dict[str, _TerminationState] = {}
        self.started = 0
        self.adopted = 0
        self.noop_filled = 0
        #: rounds resolved by a commit that landed while the round ran.
        self.resolved_in_flight = 0
        #: adoptions that lost to a conflicting local resolution.
        self.conflicted = 0

    # ------------------------------------------------------------------
    # asking side (the new primary)
    # ------------------------------------------------------------------
    def begin(self, slot: int, item: object, view: int) -> None:
        """Open a termination round for the instance pending at ``slot``."""
        host = self.host
        digest = item_digest(item)
        if host.log.decided_slot_of(digest) is not None:
            return
        state = self._states.get(digest)
        if state is not None and not state.resolved:
            return
        involved = host.involved_clusters_of(item.transaction)
        state = _TerminationState(
            digest=digest, slot=slot, view=view, item=item, involved=involved
        )
        self._states[digest] = state
        self.started += 1
        host.multicast_nodes(
            host.nodes_of_clusters(involved),
            TerminationRequest(
                digest=digest, tx_id=item.transaction.tx_id, slot=slot, view=view,
                cluster=host.cluster_id, node=host.node_id,
            ),
        )
        state.timer = host.set_timer(
            host.tuning.conflict_retry_delay, self._on_timeout, digest
        )

    def _on_timeout(self, digest: str) -> None:
        state = self._states.get(digest)
        if state is None or state.resolved:
            return
        state.resolved = True
        host = self.host
        entry = host.log.entry(state.slot)
        if (
            host.log.decided_slot_of(digest) is not None
            or (entry is not None and entry.status is not EntryStatus.PENDING)
        ):
            # A late commit (or an adopted decision) landed during the
            # round; nothing to fill.
            self.resolved_in_flight += 1
            return
        # No decision evidence anywhere: the undecided instance dies and
        # the client's retry runs a fresh, fully-positioned one.
        self.noop_filled += 1
        host.log.observe(state.slot)
        host.intra.propose_at(
            state.slot, Noop(reason=f"termination-v{state.view}-slot-{state.slot}")
        )

    # ------------------------------------------------------------------
    # answering side (any involved node)
    # ------------------------------------------------------------------
    def _on_request(self, message: TerminationRequest, src: int) -> None:
        host = self.host
        slot = host.log.decided_slot_of(message.digest)
        entry = host.log.entry(slot) if slot is not None else None
        if entry is not None:
            positions = entry.positions or {host.cluster_id: entry.slot}
            reply = TerminationReply(
                digest=message.digest, decided=True, slot=message.slot,
                positions=tuple(sorted(positions.items())),
                proposer=entry.proposer, item=entry.item, node=host.node_id,
            )
        else:
            # The decision may have been checkpointed and compacted out
            # of the log already; the ledger's retained transaction
            # index (and, while the block object is still retained, its
            # position vector) keeps the evidence.  Only once the block
            # itself is pruned — which takes at least a full checkpoint
            # interval, far beyond the view-change race window that
            # termination exists for — does the reply degrade to
            # ``decided=False``.
            reply = self._reply_from_ledger(message)
        host.send_to(src, reply)

    def _reply_from_ledger(self, message: TerminationRequest) -> TerminationReply:
        host = self.host
        chain = host.chain
        if chain.contains_tx(message.tx_id):
            position = chain.position_of_tx(message.tx_id)
            if position > chain.pruned_height:
                block = chain.block_at(position)
                return TerminationReply(
                    digest=message.digest, decided=True, slot=message.slot,
                    positions=block.positions, proposer=block.proposer,
                    item=None, node=host.node_id,
                )
        return TerminationReply(
            digest=message.digest, decided=False, slot=message.slot,
            positions=(), proposer=None, item=None, node=host.node_id,
        )

    # ------------------------------------------------------------------
    # collecting evidence
    # ------------------------------------------------------------------
    def _on_reply(self, message: TerminationReply, src: int) -> None:
        state = self._states.get(message.digest)
        if state is None or state.resolved:
            return
        if not message.decided:
            return
        # Ledger-derived evidence carries no request object (the block
        # stores only the transaction); the asker's own pending item is
        # the instance's request by construction (it produced the
        # digest).  Evidence that does carry an item must match.
        if message.item is not None and item_digest(message.item) != message.digest:
            return
        if len(message.positions) < 2:
            # A decided single-cluster vector cannot terminate a
            # cross-shard instance atomically; ignore it.
            return
        key = message.positions
        state.evidence.setdefault(key, message)
        voters = state.votes.setdefault(key, set())
        voters.add(src)
        if len(voters) >= self.quorum:
            self._adopt(state, state.evidence[key])

    def _adopt(self, state: _TerminationState, evidence: TerminationReply) -> None:
        state.resolved = True
        if state.timer is not None:
            state.timer.cancel()
        host = self.host
        positions = dict(evidence.positions)
        my_slot = positions.get(host.cluster_id)
        if my_slot is None:
            return
        proposer = evidence.proposer if evidence.proposer is not None else host.cluster_id
        item = evidence.item if evidence.item is not None else state.item
        if not self._decide(my_slot, state.digest, item, positions, proposer):
            return
        self.adopted += 1
        host.multicast_cluster(
            TerminationDecision(
                digest=state.digest,
                positions=evidence.positions,
                proposer=proposer,
                item=item,
                view=state.view,
                node=host.node_id,
            )
        )
        host.after_decide()

    def _on_decision(self, message: TerminationDecision, src: int) -> None:
        host = self.host
        if src != host.primary_pid_of(host.cluster_id):
            return
        if item_digest(message.item) != message.digest:
            return
        positions = dict(message.positions)
        my_slot = positions.get(host.cluster_id)
        if my_slot is None:
            return
        if self._decide(my_slot, message.digest, message.item, positions, message.proposer):
            host.after_decide()

    def _decide(self, slot, digest, item, positions, proposer) -> bool:
        host = self.host
        try:
            host.log.decide(slot, digest, item, positions=positions, proposer=proposer)
        except ConsensusError:
            entry = host.log.entry(slot)
            if entry is None or not entry.is_noop:
                raise
            self.conflicted += 1
            return False
        return True
