"""Periodic checkpoints and quorum-driven log compaction.

Every ``checkpoint_interval`` applied slots a replica digests its state
(chain head + account store), snapshots it, and multicasts a signed
:class:`~repro.recovery.messages.Checkpoint` to its cluster.  The
invariant that makes digests comparable: the checkpoint at ``seq`` is
taken *inside* the apply loop, immediately after applying slot ``seq``,
so the digest covers the state produced by exactly slots 1..seq — no
more, no less — at every correct replica.  Once an
intra-shard quorum of matching ``(seq, digest)`` votes accumulates the
checkpoint becomes *stable* and authorises garbage collection: the
ordering log truncates entries and dedup indexes at or below ``seq``,
the ledger view prunes the superseded blocks, and the consensus engines
drop their per-slot vote bookkeeping — the machinery PBFT describes in
Section 4.3 of the original paper and SharPer inherits.

The stable snapshot (account state, anchor block, at-most-once index)
is retained so the replica can serve
:class:`~repro.recovery.state_transfer.StateTransferManager` requests
from recovering peers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..consensus.base import HandlerTable
from .messages import Checkpoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.replica import SharPerReplica

__all__ = ["CheckpointManager", "StableCheckpoint", "checkpoint_digest"]


def checkpoint_digest(seq: int, head_hash: str, store_digest: str) -> str:
    """Digest binding a checkpoint sequence number to chain and store state.

    Deterministic across the replicas of a cluster: block identity
    excludes per-cluster parent hashes, and the store digest is computed
    over the sorted account table, so every replica that applied exactly
    slots ``1..seq`` produces the same value.
    """
    return hashlib.sha256(f"CKPT|{seq}|{head_hash}|{store_digest}".encode()).hexdigest()


@dataclass
class StableCheckpoint:
    """One checkpoint record: digest plus the state needed to serve it."""

    seq: int
    digest: str
    #: the block at position ``seq`` (the chain anchor a joiner installs).
    anchor: object
    #: account-store snapshot at exactly slot ``seq`` (a Mapping; the
    #: columnar backend ships a lazy view that materialises on demand).
    snapshot: "dict | object"
    #: the store half of ``digest``, recorded into the archive on
    #: stabilisation ("" for snapshots installed via state transfer,
    #: where the serving peer already archived it).
    store_digest: str = ""


class CheckpointManager(HandlerTable):
    """Drives checkpointing and compaction for one replica.

    ``interval == 0`` disables checkpoint *production* (the faultless
    default — benchmark runs pay nothing), but votes from peers are
    still tallied so a replica that re-enables the feature mid-run, or
    merely lags, keeps a coherent picture.
    """

    HANDLERS = {Checkpoint: "_on_checkpoint"}

    #: own snapshots retained while waiting for their quorum.
    MAX_PENDING_RECORDS = 3

    def __init__(self, host: "SharPerReplica", interval: int) -> None:
        self.host = host
        self.interval = interval
        self._build_handlers()
        self.quorum = host.cluster.intra_quorum
        #: (seq, digest) → voter pids (own vote included).
        self._votes: dict[tuple[int, str], set[int]] = {}
        #: own snapshots by seq, awaiting stabilisation.
        self._records: dict[int, StableCheckpoint] = {}
        self.stable: StableCheckpoint | None = None
        self.taken = 0
        self.stabilized = 0
        self.entries_truncated = 0
        self.blocks_pruned = 0
        #: quorum digests that contradicted this replica's own state.
        self.divergent = 0

    # ------------------------------------------------------------------
    # producing checkpoints
    # ------------------------------------------------------------------
    def take(self, seq: int) -> None:
        """Checkpoint the state right after applying slot ``seq``.

        Called by the replica's apply loop exactly at interval
        boundaries, so the chain head *is* the block at ``seq`` and the
        store reflects exactly slots ``1..seq``.
        """
        host = self.host
        store_digest = host.store.state_digest()
        digest = checkpoint_digest(seq, host.chain.head_hash, store_digest)
        self._records[seq] = StableCheckpoint(
            seq=seq,
            digest=digest,
            anchor=host.chain.head,
            snapshot=host.store.checkpoint_snapshot(seq),
            store_digest=store_digest,
        )
        while len(self._records) > self.MAX_PENDING_RECORDS:
            del self._records[min(self._records)]
        self.taken += 1
        host.multicast_cluster(Checkpoint(seq=seq, digest=digest, node=host.node_id))
        self._vote(seq, digest, int(host.pid))

    # ------------------------------------------------------------------
    # vote handling
    # ------------------------------------------------------------------
    def _on_checkpoint(self, message: Checkpoint, src: int) -> None:
        self._vote(message.seq, message.digest, src)
        # Lag detection: a peer checkpointing a full interval beyond our
        # applied height means we missed decided slots (e.g. while
        # crashed or partitioned) — fetch them instead of waiting for a
        # gap timeout.
        if self.interval and message.seq > self.host.log.next_apply - 1 + self.interval:
            self.host.state_transfer.request_catch_up()

    def _vote(self, seq: int, digest: str, voter: int) -> None:
        if self.stable is not None and seq <= self.stable.seq:
            return
        voters = self._votes.setdefault((seq, digest), set())
        voters.add(voter)
        if len(voters) >= self.quorum:
            self._stabilize(seq, digest)

    def _stabilize(self, seq: int, digest: str) -> None:
        record = self._records.get(seq)
        if record is None:
            # A quorum certified a state we have not reached yet; the
            # lag trigger (or gap monitoring) fetches it.
            return
        if record.digest != digest:
            # Our state disagrees with a quorum of the cluster — with at
            # most f faulty replicas this replica itself diverged; count
            # it loudly and do not garbage-collect evidence.
            self.divergent += 1
            return
        self.adopt(record)
        self.stabilized += 1

    def adopt(self, record: StableCheckpoint) -> None:
        """Install ``record`` as the stable checkpoint and compact below it.

        Used both by quorum stabilisation and by state transfer (the
        joiner adopts the helper's verified checkpoint so it can serve
        later requests itself).
        """
        host = self.host
        self.stable = record
        seq = record.seq
        archive = getattr(host.chain, "archive", None)
        if archive is not None and record.store_digest:
            archive.record_checkpoint(
                host.cluster.cluster_id,
                seq,
                record.store_digest,
                getattr(record.anchor, "block_hash", ""),
            )
        self.entries_truncated += host.log.truncate(seq)
        self.blocks_pruned += host.chain.prune(seq)
        compact = getattr(host.intra, "compact_below", None)
        if compact is not None:
            compact(seq)
        cross = getattr(host, "cross", None)
        if cross is not None and hasattr(cross, "compact_below"):
            cross.compact_below(seq)
        for stale in [recorded for recorded in self._records if recorded <= seq]:
            del self._records[stale]
        self._votes = {
            key: voters for key, voters in self._votes.items() if key[0] > seq
        }
