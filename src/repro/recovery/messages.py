"""Protocol messages of the recovery subsystem.

Same conventions as :mod:`repro.consensus.messages`: frozen dataclasses
shared by every destination of a multicast, with class-level signature
counts feeding the CPU cost model.  All recovery messages are signed —
checkpoint certificates and state-transfer responses are only meaningful
when their origin can be authenticated, and the messages are rare enough
(one checkpoint per ``interval`` decided slots; state transfer only on
recovery) that the signing cost is negligible either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..common.types import ClusterId, NodeId

__all__ = [
    "Checkpoint",
    "StateRequest",
    "StateResponse",
    "TerminationDecision",
    "TerminationReply",
    "TerminationRequest",
]


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """Replica → cluster: "my state after applying slot ``seq`` digests to ``digest``".

    An intra-shard quorum of matching ``(seq, digest)`` pairs makes the
    checkpoint *stable* and authorises garbage collection below ``seq``.
    """

    seq: int
    digest: str
    node: NodeId

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class StateRequest:
    """Recovering/lagging replica → cluster peers: send me your state.

    ``have_seq`` is the highest slot the requester has applied; helpers
    answer with their stable checkpoint (if it is newer) plus the suffix
    of decided slots above it.
    """

    node: NodeId
    have_seq: int

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class StateResponse:
    """Helper → requester: stable checkpoint + decided-slot suffix.

    ``checkpoint_seq`` is 0 (with no snapshot) when the helper has no
    stable checkpoint newer than the requester's ``have_seq`` — the
    suffix alone then carries the catch-up.  ``entries`` holds
    ``(slot, digest, item, positions, proposer, view)`` tuples for every
    decided slot above ``checkpoint_seq``; ``tx_index`` maps committed
    transaction ids to chain positions at or below the checkpoint (the
    at-most-once index the pruned chain can no longer reconstruct).
    Receivers must not mutate the payload (``snapshot`` and ``tx_index``
    are installed by copy).
    """

    checkpoint_seq: int
    checkpoint_digest: str
    node: NodeId
    view: int
    anchor: object | None
    snapshot: object | None
    tx_index: tuple[tuple[str, int], ...]
    entries: tuple[tuple[int, str, object, tuple, ClusterId, int], ...]

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class TerminationRequest:
    """New primary → nodes of the involved clusters: did this instance decide?

    Sent during view installation for every in-flight cross-shard
    instance (identified by its request ``digest``) occupying local
    ``slot``, before the slot may be filled with a no-op.  ``tx_id``
    lets helpers answer from the ledger's retained transaction index
    even after the decision itself was checkpointed and compacted.
    """

    digest: str
    tx_id: str
    slot: int
    view: int
    cluster: ClusterId
    node: NodeId

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class TerminationReply:
    """Involved node → asking primary: local verdict on the instance.

    ``decided`` nodes attach the full position vector, the proposer, and
    the ordered item so the asker can adopt the decision; undecided
    nodes reply with ``decided=False`` (the asker no-op-fills only after
    its termination timer expires with no decision evidence).
    """

    digest: str
    decided: bool
    slot: int
    positions: tuple[tuple[ClusterId, int], ...]
    proposer: ClusterId | None
    item: object | None
    node: NodeId

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1


@dataclass(frozen=True, slots=True)
class TerminationDecision:
    """Primary → cluster backups: adopt this terminated cross-shard decision.

    Trusted from the current primary only — the same (documented)
    simplification the view change already makes for ``NewView``
    re-proposals; the item is still bound to the digest, which backups
    re-verify.
    """

    digest: str
    positions: tuple[tuple[ClusterId, int], ...]
    proposer: ClusterId
    item: object
    view: int
    node: NodeId

    verify_signatures: ClassVar[int] = 1
    sign_signatures: ClassVar[int] = 1
