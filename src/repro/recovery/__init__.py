"""Recovery subsystem: checkpointing, log compaction, and state transfer.

SharPer inherits PBFT's checkpoint/garbage-collection machinery; this
package supplies it for the reproduction, in three pillars:

* **Checkpointing + log compaction** (:class:`CheckpointManager`) —
  every ``checkpoint_interval`` applied slots a replica multicasts a
  signed ``Checkpoint(seq, state_digest)`` to its cluster.  Invariant:
  the digest is taken inside the apply loop, so it covers the state
  produced by exactly slots 1..seq at every correct replica — which is
  what makes digests comparable cluster-wide.  Once an
  intra-shard quorum of matching digests arrives the checkpoint is
  *stable*: the :class:`~repro.consensus.log.OrderingLog` truncates
  entries and dedup indexes at or below the low-water mark, the
  :class:`~repro.ledger.view.ClusterView` prunes superseded blocks, and
  the consensus engines drop vote bookkeeping for compacted slots —
  bounding per-replica memory for arbitrarily long runs.
* **State transfer** (:class:`StateTransferManager`) — a recovered or
  lagging replica asks its cluster peers for the latest stable
  checkpoint plus the suffix of decided slots, verifies the digests
  (``f + 1`` matching responses in the Byzantine model), installs the
  snapshot, replays the suffix through the ordinary apply path, and
  rejoins consensus.
* **Cross-shard termination** (:class:`CrossShardTerminator`) — a new
  primary installing a view runs a termination round for in-flight
  cross-shard instances instead of immediately no-op-filling their
  slots, so a commit quorum formed just before the view change is
  adopted rather than raced (closing the residual atomicity window the
  engines previously papered over by counting ``late_commits``).

Checkpointing is off by default (``ProtocolTuning.checkpoint_interval
= 0``), so faultless benchmark runs are byte-identical to previous
revisions; state transfer still works without checkpoints by replaying
the full decided suffix.
"""

from .checkpoint import CheckpointManager, StableCheckpoint, checkpoint_digest
from .messages import (
    Checkpoint,
    StateRequest,
    StateResponse,
    TerminationDecision,
    TerminationReply,
    TerminationRequest,
)
from .state_transfer import StateTransferManager
from .stats import RecoveryStats, collect_recovery_stats
from .termination import CrossShardTerminator

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "CrossShardTerminator",
    "RecoveryStats",
    "StableCheckpoint",
    "StateRequest",
    "StateResponse",
    "StateTransferManager",
    "TerminationDecision",
    "TerminationReply",
    "TerminationRequest",
    "checkpoint_digest",
    "collect_recovery_stats",
]
