"""Discrete-event simulation substrate (clock, network, processes)."""

from .costs import CostModel
from .events import Event, EventQueue
from .network import ClusteredLatencyModel, LatencyModel, Network, UniformLatencyModel
from .process import Process
from .simulator import Simulator, Timer

__all__ = [
    "ClusteredLatencyModel",
    "CostModel",
    "Event",
    "EventQueue",
    "LatencyModel",
    "Network",
    "Process",
    "Simulator",
    "Timer",
    "UniformLatencyModel",
]
