"""The discrete-event simulator driving every experiment in this repo.

The paper evaluates SharPer on an EC2 testbed; this reproduction replaces
the testbed with a deterministic simulator (see DESIGN.md, substitutions
table).  The simulator provides:

* a virtual clock (:attr:`Simulator.now`, in seconds);
* event scheduling with cancellation (:meth:`Simulator.schedule`) and
  bulk scheduling without handle allocation (:meth:`Simulator.schedule_many`);
* cancellable timers (used by the protocols' view-change and conflict
  timers);
* a seeded random number generator shared by the network jitter model and
  the workload generators, so that every run is reproducible.

Performance model & parallel execution
--------------------------------------
:meth:`Simulator.run` is the single hottest loop of the repo, so it works
directly on the queue's raw ``[time, sequence, callback, args]`` heap
entries (see :mod:`repro.sim.events`) instead of allocating per-event
handle objects.  The kernel also keeps an events/sec counter
(:attr:`Simulator.events_per_second`) measured over wall-clock time spent
inside ``run`` — the number ``bench/perfbench.py`` tracks in
``BENCH_kernel.json``.  Whole runs are deterministic for a seed, which is
what lets the bench harness farm scenario runs out to a
``multiprocessing`` pool (``--jobs``) with bit-identical per-seed results.
"""

from __future__ import annotations

import random
from heapq import heappop
from time import perf_counter
from typing import Any, Callable, Iterable

from ..common.errors import SimulationError
from .events import Event, EventQueue

__all__ = ["Simulator", "Timer", "RecurringTimer"]


class RecurringTimer:
    """A self-rescheduling timer handle returned by :meth:`Simulator.every`.

    Fires ``callback()`` every ``interval`` simulated seconds until
    cancelled.  Used by read-only periodic jobs (the flight recorder's
    gauge sampler); the callback must not assume the simulation ends
    while the timer is armed — ``run(until)`` simply leaves the next
    firing queued past the horizon.
    """

    __slots__ = ("_sim", "_interval", "_callback", "_event", "_cancelled")

    def __init__(self, sim: "Simulator", interval: float, callback: Callable[[], None]) -> None:
        if interval <= 0:
            raise SimulationError(f"recurring interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._cancelled = False
        self._event = sim.schedule(interval, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._event = self._sim.schedule(self._interval, self._fire)

    @property
    def active(self) -> bool:
        """Whether the timer will keep firing."""
        return not self._cancelled

    def cancel(self) -> None:
        """Stop the timer; no further callbacks run."""
        self._cancelled = True
        self._event.cancel()


class Timer:
    """A cancellable timer handle returned by :meth:`Simulator.set_timer`."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def active(self) -> bool:
        """Whether the timer is still pending."""
        return not self._event.cancelled

    @property
    def deadline(self) -> float:
        """Simulated time at which the timer fires."""
        return self._event.time

    def cancel(self) -> None:
        """Cancel the timer; the callback will not run."""
        self._event.cancel()


class Simulator:
    """Deterministic discrete-event simulation kernel."""

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._processed_events = 0
        self._run_wall_time = 0.0
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (useful in tests and benchmarks)."""
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def run_wall_time(self) -> float:
        """Wall-clock seconds spent inside :meth:`run` so far."""
        return self._run_wall_time

    @property
    def events_per_second(self) -> float:
        """Events fired per wall-clock second spent in :meth:`run`."""
        if self._run_wall_time <= 0.0:
            return 0.0
        return self._processed_events / self._run_wall_time

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, current time is {self._now:.6f}"
            )
        return self._queue.push(time, callback, *args)

    def schedule_at_fast(self, time: float, callback: Callable[..., None], args: tuple) -> None:
        """Handle-free :meth:`schedule_at` for never-cancelled events.

        Used by the transport and CPU-dispatch hot paths; the event cannot
        be cancelled individually (crash semantics are enforced inside the
        callbacks instead).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, current time is {self._now:.6f}"
            )
        self._queue.push_fast(time, callback, args)

    def schedule_many(
        self, items: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> None:
        """Bulk-schedule ``(absolute_time, callback, args)`` triples.

        The fast path behind :meth:`repro.sim.network.Network.multicast`:
        no :class:`Event` handles are allocated, so the scheduled events
        cannot be cancelled individually.  Times must not lie in the past.
        """
        if not isinstance(items, list):
            items = list(items)
        now = self._now
        for time, _, _ in items:
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time:.6f}, current time is {now:.6f}"
                )
        self._queue.push_many(items)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Arm a cancellable timer (protocol timeout helper)."""
        return Timer(self.schedule(delay, callback, *args))

    def every(self, interval: float, callback: Callable[[], None]) -> RecurringTimer:
        """Fire ``callback()`` every ``interval`` simulated seconds.

        First firing is at ``now + interval``; keeps firing until the
        returned handle is cancelled.  Meant for periodic *observers*
        (gauge sampling): each firing is an ordinary event, so a run
        with a recurring timer processes extra events but the callback
        must not perturb protocol state.
        """
        return RecurringTimer(self, interval, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the simulation.

        Stops when the event queue is empty, when the next event is past
        ``until``, or after ``max_events`` events — whichever comes first.
        Returns the simulated time at which the run stopped.
        """
        # Hot loop: operate on the queue's raw heap entries (layout
        # [time, sequence, callback, args]) — no per-event allocations.
        heap = self._queue._heap
        self._running = True
        fired = 0
        wall_start = perf_counter()
        while self._running:
            while heap and heap[0][2] is None:  # drop cancelled entries
                heappop(heap)
            if not heap:
                break
            entry = heap[0]
            next_time = entry[0]
            if until is not None and next_time > until:
                self._now = until
                break
            if max_events is not None and fired >= max_events:
                break
            heappop(heap)
            self._now = next_time
            callback = entry[2]
            args = entry[3]
            # Consume the entry before invoking so a Timer/Event handle
            # sees the event as no longer pending even if the callback
            # body is skipped (e.g. crash guards) or raises.
            entry[2] = None
            entry[3] = ()
            callback(*args)
            fired += 1
        self._processed_events += fired
        self._run_wall_time += perf_counter() - wall_start
        self._running = False
        if until is not None and self._queue.peek_time() is None:
            # The system went idle before the horizon; advance the clock so
            # throughput denominators stay meaningful.
            self._now = max(self._now, until)
        return self._now

    def stop(self) -> None:
        """Stop :meth:`run` after the current event finishes."""
        self._running = False

    def clear(self) -> None:
        """Drop all pending events (used between benchmark iterations)."""
        self._queue.clear()
