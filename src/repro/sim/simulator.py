"""The discrete-event simulator driving every experiment in this repo.

The paper evaluates SharPer on an EC2 testbed; this reproduction replaces
the testbed with a deterministic simulator (see DESIGN.md, substitutions
table).  The simulator provides:

* a virtual clock (:attr:`Simulator.now`, in seconds);
* event scheduling with cancellation (:meth:`Simulator.schedule`);
* cancellable timers (used by the protocols' view-change and conflict
  timers);
* a seeded random number generator shared by the network jitter model and
  the workload generators, so that every run is reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from ..common.errors import SimulationError
from .events import Event, EventQueue

__all__ = ["Simulator", "Timer"]


class Timer:
    """A cancellable timer handle returned by :meth:`Simulator.set_timer`."""

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def active(self) -> bool:
        """Whether the timer is still pending."""
        return not self._event.cancelled

    @property
    def deadline(self) -> float:
        """Simulated time at which the timer fires."""
        return self._event.time

    def cancel(self) -> None:
        """Cancel the timer; the callback will not run."""
        self._event.cancel()


class Simulator:
    """Deterministic discrete-event simulation kernel."""

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._processed_events = 0
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (useful in tests and benchmarks)."""
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, current time is {self._now:.6f}"
            )
        return self._queue.push(time, callback, *args)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Arm a cancellable timer (protocol timeout helper)."""
        return Timer(self.schedule(delay, callback, *args))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the simulation.

        Stops when the event queue is empty, when the next event is past
        ``until``, or after ``max_events`` events — whichever comes first.
        Returns the simulated time at which the run stopped.
        """
        self._running = True
        fired = 0
        while self._running:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            if max_events is not None and fired >= max_events:
                break
            event = self._queue.pop()
            if event is None:
                break
            self._now = event.time
            event.fire()
            self._processed_events += 1
            fired += 1
        self._running = False
        if until is not None and self._queue.peek_time() is None:
            # The system went idle before the horizon; advance the clock so
            # throughput denominators stay meaningful.
            self._now = max(self._now, until)
        return self._now

    def stop(self) -> None:
        """Stop :meth:`run` after the current event finishes."""
        self._running = False

    def clear(self) -> None:
        """Drop all pending events (used between benchmark iterations)."""
        self._queue.clear()
