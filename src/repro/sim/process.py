"""Base class for simulated processes (replicas, clients, committees).

A :class:`Process` owns a single CPU.  Incoming messages are served in
arrival order; each message occupies the CPU for the time computed by the
:class:`~repro.sim.costs.CostModel`, and the protocol handler
(:meth:`Process.on_message`) runs when that service completes.  Outgoing
messages also charge the CPU and leave the node only once the CPU has
produced them, which is what makes a primary that multicasts to many
replicas an honest bottleneck — the effect behind every saturation knee
in the paper's figures.

Fault injection hooks:

* :meth:`Process.crash` / :meth:`Process.recover` — crash-stop behaviour;
* :attr:`Process.byzantine` — a flag protocols consult to simulate
  malicious behaviour (equivocation, silence) in tests.
"""

from __future__ import annotations

from typing import Any, Callable

from .costs import CostModel
from .network import Network
from .simulator import Simulator, Timer

__all__ = ["Process"]


class Process:
    """A single simulated machine with one CPU and a network endpoint."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        network: Network,
        cost_model: CostModel,
        name: str | None = None,
    ) -> None:
        self.pid = pid
        self.sim = sim
        self.network = network
        self.cost_model = cost_model
        self.name = name or f"proc-{pid}"
        self.crashed = False
        self.byzantine = False
        self._cpu_free_at = 0.0
        self.messages_received = 0
        self.messages_sent = 0
        self.cpu_busy_time = 0.0
        network.register(self)

    # ------------------------------------------------------------------
    # CPU accounting
    # ------------------------------------------------------------------
    def charge(self, cpu_seconds: float) -> float:
        """Occupy the CPU for ``cpu_seconds``; returns the completion time."""
        start = max(self.sim.now, self._cpu_free_at)
        self._cpu_free_at = start + cpu_seconds
        self.cpu_busy_time += cpu_seconds
        return self._cpu_free_at

    @property
    def cpu_free_at(self) -> float:
        """Simulated time at which the CPU becomes idle."""
        return self._cpu_free_at

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` simulated seconds the CPU was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_time / elapsed)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def deliver(self, message: Any, src: int) -> None:
        """Called by the network when a message arrives at the NIC."""
        if self.crashed:
            return
        self.messages_received += 1
        completion = self.charge(self.cost_model.receive_cost(message))
        self.sim.schedule_at(completion, self._dispatch, message, src)

    def _dispatch(self, message: Any, src: int) -> None:
        if self.crashed:
            return
        self.on_message(message, src)

    def on_message(self, message: Any, src: int) -> None:
        """Protocol handler; subclasses override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def send(self, dst: int, message: Any) -> None:
        """Send one message, charging send-side CPU first."""
        departure = self.charge(self.cost_model.send_cost(message, destinations=1))
        self.messages_sent += 1
        self.network.send(self.pid, dst, message, depart_time=departure)

    def multicast(self, destinations: list[int] | tuple[int, ...], message: Any) -> None:
        """Send ``message`` to every destination except this process.

        Signing cost is charged once; per-destination serialisation cost is
        charged for each copy, so wide multicasts genuinely cost more.
        """
        targets = [dst for dst in destinations if dst != self.pid]
        departure = self.charge(self.cost_model.send_cost(message, destinations=len(targets)))
        for dst in targets:
            self.messages_sent += 1
            self.network.send(self.pid, dst, message, depart_time=departure)

    # ------------------------------------------------------------------
    # timers and fault injection
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Arm a timer whose callback is skipped if the process has crashed."""

        def _guarded() -> None:
            if not self.crashed:
                callback(*args)

        return self.sim.set_timer(delay, _guarded)

    def crash(self) -> None:
        """Crash-stop the process: it stops receiving and sending."""
        self.crashed = True

    def recover(self) -> None:
        """Restart a crashed process (state retained, as in Section 2.1)."""
        self.crashed = False
        self._cpu_free_at = max(self._cpu_free_at, self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name} pid={self.pid}>"
