"""Base class for simulated processes (replicas, clients, committees).

A :class:`Process` owns a single CPU.  Incoming messages are served in
arrival order; each message occupies the CPU for the time computed by the
:class:`~repro.sim.costs.CostModel`, and the protocol handler
(:meth:`Process.on_message`) runs when that service completes.  Outgoing
messages also charge the CPU and leave the node only once the CPU has
produced them, which is what makes a primary that multicasts to many
replicas an honest bottleneck — the effect behind every saturation knee
in the paper's figures.

Performance model & parallel execution
--------------------------------------
Message dispatch is table-driven: subclasses register one handler per
concrete message type (:meth:`Process.register_handler`), and the default
:meth:`Process.on_message` resolves the handler with a single dict lookup
on ``type(message)`` — no ``isinstance`` chains on the hot path.
Messages of unregistered types are silently dropped, mirroring a real
node discarding traffic it does not understand.  Multicasts go through
:meth:`Network.multicast`, which shares one immutable payload across all
destinations.

Fault injection hooks:

* :meth:`Process.crash` / :meth:`Process.recover` — crash-stop behaviour;
* :attr:`Process.byzantine` — a flag marking the node as adversarial
  (set by :meth:`repro.core.system.BaseSystem.make_byzantine`);
* :meth:`Process.set_interceptor` — attach a
  :class:`~repro.adversary.MessageInterceptor` that filters every
  outbound message per destination (drop, delay, duplicate, rewrite).
  With no interceptor attached, ``send``/``multicast`` take exactly the
  pre-existing fast path — one ``is None`` check and no extra RNG draws
  — so faultless runs stay bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from .costs import CostModel
from .network import Network
from .simulator import Simulator, Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..adversary.interceptor import MessageInterceptor
    from ..obs.recorder import FlightRecorder

__all__ = ["Process"]

#: Signature of a registered message handler.
MessageHandler = Callable[[Any, int], None]


class Process:
    """A single simulated machine with one CPU and a network endpoint."""

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        network: Network,
        cost_model: CostModel,
        name: str | None = None,
    ) -> None:
        self.pid = pid
        self.sim = sim
        self.network = network
        self.cost_model = cost_model
        self.name = name or f"proc-{pid}"
        self.crashed = False
        self.byzantine = False
        #: outbound message filter; None on the (default) faultless path.
        self.interceptor: "MessageInterceptor | None" = None
        #: flight recorder (repro.obs); None on the (default) untraced
        #: path — every instrumentation hook is one ``is None`` check,
        #: the same lazy-arming contract as the interceptor above.
        self.recorder: "FlightRecorder | None" = None
        self._cpu_free_at = 0.0
        self.messages_received = 0
        self.messages_sent = 0
        self.cpu_busy_time = 0.0
        #: message-type → handler table driving :meth:`on_message`.
        self._dispatch: dict[type, MessageHandler] = {}
        #: subclasses that override on_message get it called per message;
        #: table-driven subclasses skip the extra hop entirely.
        self._uses_default_on_message = type(self).on_message is Process.on_message
        network.register(self)

    @property
    def now(self) -> float:
        """Current simulated time (ConsensusHost interface)."""
        return self.sim.now

    # ------------------------------------------------------------------
    # CPU accounting
    # ------------------------------------------------------------------
    def charge(self, cpu_seconds: float) -> float:
        """Occupy the CPU for ``cpu_seconds``; returns the completion time."""
        start = self.sim.now
        free_at = self._cpu_free_at
        if free_at > start:
            start = free_at
        self._cpu_free_at = start + cpu_seconds
        self.cpu_busy_time += cpu_seconds
        return self._cpu_free_at

    @property
    def cpu_free_at(self) -> float:
        """Simulated time at which the CPU becomes idle."""
        return self._cpu_free_at

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` simulated seconds the CPU was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_time / elapsed)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def deliver(self, message: Any, src: int) -> None:
        """Called by the network when a message arrives at the NIC."""
        if self.crashed:
            return
        self.messages_received += 1
        # Inlined charge + handle-free scheduling: this runs once per
        # delivered message, making it the single hottest method in the
        # repo.  completion >= now always holds, so the scheduling-in-the-
        # past check is unnecessary.
        start = self.sim._now
        free_at = self._cpu_free_at
        if free_at > start:
            start = free_at
        cost_model = self.cost_model
        cost = cost_model._receive_cost.get(message.__class__)
        if cost is None:
            cost = cost_model.receive_cost(message)
        completion = start + cost
        self._cpu_free_at = completion
        self.cpu_busy_time += cost
        self.sim._queue.push_fast(completion, self._dispatch_message, (message, src))

    def _dispatch_message(self, message: Any, src: int) -> None:
        if self.crashed:
            return
        recorder = self.recorder
        if recorder is None or not recorder.causal_armed:
            if self._uses_default_on_message:
                handler = self._dispatch.get(message.__class__)
                if handler is not None:
                    handler(message, src)
                elif not self._dispatch:
                    self.on_message(message, src)  # raises NotImplementedError
            else:
                self.on_message(message, src)
            return
        # Causal tracing: bracket the handler in a recv context so every
        # event it records (phases, sends, quorum votes) parents to this
        # arrival.  The dispatch body is duplicated rather than factored
        # into a helper to keep the untraced branch above allocation- and
        # call-free — this is the hottest method in the repo.
        recorder.begin_dispatch(self.sim._now, message, src, self.pid)
        try:
            if self._uses_default_on_message:
                handler = self._dispatch.get(message.__class__)
                if handler is not None:
                    handler(message, src)
                elif not self._dispatch:
                    self.on_message(message, src)  # raises NotImplementedError
            else:
                self.on_message(message, src)
        finally:
            recorder.clear_context()

    def register_handler(self, message_type: type, handler: MessageHandler) -> None:
        """Route messages of exactly ``message_type`` to ``handler``.

        Dispatch is by concrete type (``type(message)`` lookup), not by
        ``isinstance`` — register each concrete message class explicitly.
        Registering a type again replaces the previous handler, which is
        how subclasses (e.g. AHL's replicas) intercept message types their
        base class also handles.
        """
        self._dispatch[message_type] = handler

    def register_handlers(self, handlers: dict[type, MessageHandler]) -> None:
        """Bulk variant of :meth:`register_handler`."""
        self._dispatch.update(handlers)

    def on_message(self, message: Any, src: int) -> None:
        """Protocol handler: one dict lookup on the concrete message type.

        Messages of unregistered types are dropped.  Subclasses either
        register handlers at construction time or override this method
        entirely.  A process with an empty table raises, signalling a
        subclass that forgot to do either.
        """
        handler = self._dispatch.get(type(message))
        if handler is not None:
            handler(message, src)
        elif not self._dispatch:
            raise NotImplementedError(
                f"{type(self).__name__} registered no message handlers and "
                "does not override on_message"
            )

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def send(self, dst: int, message: Any) -> None:
        """Send one message, charging send-side CPU first."""
        if self.interceptor is not None:
            self._send_intercepted((dst,), message)
            return
        cost = self.cost_model.send_cost(message, destinations=1)
        start = self.sim._now  # inlined charge()
        free_at = self._cpu_free_at
        if free_at > start:
            start = free_at
        departure = start + cost
        self._cpu_free_at = departure
        self.cpu_busy_time += cost
        self.messages_sent += 1
        self.network.send(self.pid, dst, message, depart_time=departure)

    def multicast(self, destinations: list[int] | tuple[int, ...], message: Any) -> None:
        """Send ``message`` to every destination except this process.

        Signing cost is charged once; per-destination serialisation cost is
        charged for each copy, so wide multicasts genuinely cost more.  The
        transport shares one immutable payload object across destinations
        (:meth:`Network.multicast`).
        """
        pid = self.pid
        if self.interceptor is not None:
            self._send_intercepted([dst for dst in destinations if dst != pid], message)
            return
        count = 0
        for dst in destinations:
            if dst != pid:
                count += 1
        cost = self.cost_model.send_cost(message, destinations=count)
        start = self.sim._now  # inlined charge()
        free_at = self._cpu_free_at
        if free_at > start:
            start = free_at
        departure = start + cost
        self._cpu_free_at = departure
        self.cpu_busy_time += cost
        self.messages_sent += count
        self.network.multicast(pid, destinations, message, depart_time=departure)

    def _send_intercepted(self, destinations: Any, message: Any) -> None:
        """Slow path taken only while an interceptor is attached.

        The interceptor is consulted once per destination; CPU is charged
        as if the node had served every *intended* destination (a faulty
        node does the protocol's work, it just lies on the wire), so the
        adversary gains no free CPU by dropping traffic.  Replacement
        copies depart at the same NIC time plus their ``extra_delay``.
        """
        interceptor = self.interceptor
        outbound: list[tuple[int, Any, float]] = []
        for dst in destinations:
            interceptor.seen += 1
            actions = interceptor.outbound(dst, message)
            if actions is None:
                outbound.append((dst, message, 0.0))
            else:
                outbound.extend(
                    (action.dst, action.message, action.extra_delay)
                    for action in actions
                )
        cost = self.cost_model.send_cost(message, destinations=len(destinations))
        departure = self.charge(cost)
        self.messages_sent += len(outbound)
        network = self.network
        pid = self.pid
        for dst, payload, extra in outbound:
            network.send(pid, dst, payload, depart_time=departure + extra)

    def set_interceptor(self, interceptor: "MessageInterceptor | None") -> None:
        """Attach (or, with ``None``, detach) the outbound message filter."""
        previous = self.interceptor
        if previous is not None and previous is not interceptor:
            previous.detach()
        self.interceptor = interceptor
        if interceptor is not None:
            interceptor.attach(self)

    # ------------------------------------------------------------------
    # timers and fault injection
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Arm a timer whose callback is skipped if the process has crashed."""

        def _guarded() -> None:
            if not self.crashed:
                callback(*args)

        return self.sim.set_timer(delay, _guarded)

    def crash(self) -> None:
        """Crash-stop the process: it stops receiving and sending."""
        self.crashed = True

    def recover(self) -> None:
        """Restart a crashed process (state retained, as in Section 2.1)."""
        self.crashed = False
        self._cpu_free_at = max(self._cpu_free_at, self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name} pid={self.pid}>"
