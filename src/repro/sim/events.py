"""Event queue primitives for the discrete-event simulator.

The simulator is a classic event-driven design: a priority queue of
timestamped events, each carrying a callback.  Events scheduled for the
same instant are delivered in scheduling order (a monotonically
increasing tie-breaker), which keeps runs fully deterministic for a given
seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, sequence)``; the callback and its arguments do
    not participate in comparisons.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventQueue:
    """A min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at simulated ``time``."""
        event = Event(time=time, sequence=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next non-cancelled event, without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
