"""Event queue primitives for the discrete-event simulator.

The simulator is a classic event-driven design: a priority queue of
timestamped events, each carrying a callback.  Events scheduled for the
same instant are delivered in scheduling order (a monotonically
increasing tie-breaker), which keeps runs fully deterministic for a given
seed.

Performance model & parallel execution
--------------------------------------
This queue is the innermost loop of every experiment: a saturated fig-6
point fires hundreds of thousands of events, so the representation is
chosen for speed, not for ceremony.  Heap entries are plain four-element
lists ``[time, sequence, callback, args]``.  Python compares lists
element-wise in C, and ``sequence`` is unique, so ordering is decided by
the ``(time, sequence)`` prefix without ever invoking user-level
comparison code (the previous design paid ~¾ million Python ``__lt__``
calls per benchmark point).  Cancellation clears the callback slot
in-place (``entry[2] = None``); cancelled entries are skipped lazily when
popped.  :class:`Event` is a ``__slots__`` handle wrapped around the heap
entry — allocated for callers that need cancellation (timers), while bulk
paths (:meth:`EventQueue.push_many`) skip the wrapper entirely.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable

__all__ = ["Event", "EventQueue"]

# Heap-entry layout indices (entries are [time, sequence, callback, args]).
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3


class Event:
    """A cancellable handle to one scheduled callback.

    The event itself lives in the queue as a ``[time, sequence, callback,
    args]`` list; this wrapper only exposes cancellation and
    introspection.  Ordering is by ``(time, sequence)``; the callback and
    its arguments never participate in comparisons.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._entry[_TIME]

    @property
    def sequence(self) -> int:
        """Scheduling-order tie breaker."""
        return self._entry[_SEQ]

    @property
    def cancelled(self) -> bool:
        """Whether the event can no longer fire (cancelled or already fired).

        Fired events report ``True`` here so that ``Timer.active`` turns
        false once the deadline passed — rolling-timer users re-arm based
        on this, even when the guarded callback body was skipped (e.g.
        the owning process was crashed at fire time).
        """
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        entry = self._entry
        entry[_CALLBACK] = None
        entry[_ARGS] = ()

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled.

        Firing consumes the event: afterwards it reports ``cancelled``
        (the simulator's run loop marks raw entries the same way).
        """
        entry = self._entry
        callback = entry[_CALLBACK]
        if callback is not None:
            args = entry[_ARGS]
            entry[_CALLBACK] = None
            entry[_ARGS] = ()
            callback(*args)


class EventQueue:
    """A min-heap of ``[time, sequence, callback, args]`` entries."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if entry[_CALLBACK] is not None)

    def __bool__(self) -> bool:
        return any(entry[_CALLBACK] is not None for entry in self._heap)

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at simulated ``time``."""
        entry = [time, next(self._counter), callback, args]
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def push_fast(self, time: float, callback: Callable[..., None], args: tuple) -> None:
        """Like :meth:`push` but without allocating an :class:`Event` handle.

        The bulk of all events are message deliveries that are never
        cancelled; skipping the handle keeps them allocation-free.
        """
        heapq.heappush(self._heap, [time, next(self._counter), callback, args])

    def push_many(
        self, items: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> None:
        """Bulk-schedule ``(time, callback, args)`` triples.

        No :class:`Event` handles are allocated — bulk-scheduled events
        cannot be cancelled individually.  Used by the network layer to
        schedule one multicast's deliveries in a single call.
        """
        heap = self._heap
        counter = self._counter
        push = heapq.heappush
        for time, callback, args in items:
            push(heap, [time, next(counter), callback, args])

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        entry = self.pop_entry()
        return None if entry is None else Event(entry)

    def pop_entry(self) -> list | None:
        """Raw-entry variant of :meth:`pop` (the simulator's hot loop)."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[_CALLBACK] is not None:
                return entry
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next non-cancelled event, without removing it."""
        heap = self._heap
        while heap and heap[0][_CALLBACK] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][_TIME]

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
