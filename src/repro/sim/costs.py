"""CPU cost accounting for simulated nodes.

The performance model charges every node CPU time for receiving,
verifying, signing, and sending protocol messages, plus executing
transactions and appending blocks.  Saturation (and therefore the
throughput/latency knee the paper's figures show) emerges from these
per-message costs queueing up at the busiest node — typically a primary.

Messages opt into signature costs by exposing two integer attributes:

* ``verify_signatures`` — number of signatures the *receiver* verifies;
* ``sign_signatures`` — number of signatures the *sender* produces when
  creating the message (charged once per message, not per destination).

Crash-only protocols leave both at zero (the paper notes that crash-only
deployments do not sign messages); Byzantine protocols set them to 1.
A message class may additionally declare ``extra_receive_cpu`` (seconds)
to model heavier parsing.  All three attributes are class-level
constants, so the per-type costs are cached on first use — cost lookup on
the delivery hot path is a single dict probe.
"""

from __future__ import annotations

from typing import Any

from ..common.config import PerformanceModel

__all__ = ["CostModel"]


class CostModel:
    """Maps messages to CPU time based on a :class:`PerformanceModel`."""

    #: fraction of a full message-processing cost charged on the send side.
    SEND_FRACTION = 0.5

    def __init__(self, performance: PerformanceModel) -> None:
        self.performance = performance
        # Per-message-type cost caches (signature counts are ClassVars).
        self._receive_cost: dict[type, float] = {}
        self._sign_cost: dict[type, float] = {}

    def receive_cost(self, message: Any) -> float:
        """CPU seconds to receive, parse, and verify ``message``."""
        message_type = message.__class__
        cost = self._receive_cost.get(message_type)
        if cost is None:
            perf = self.performance
            cost = perf.message_cpu
            cost += getattr(message_type, "verify_signatures", 0) * perf.signature_verify_cpu
            cost += getattr(message_type, "extra_receive_cpu", 0.0)
            self._receive_cost[message_type] = cost
        return cost

    def send_cost(self, message: Any, destinations: int = 1) -> float:
        """CPU seconds to serialise and push ``message`` to ``destinations``."""
        message_type = message.__class__
        signing = self._sign_cost.get(message_type)
        if signing is None:
            signing = (
                getattr(message_type, "sign_signatures", 0)
                * self.performance.signature_sign_cpu
            )
            self._sign_cost[message_type] = signing
        if destinations <= 0:
            return signing
        return signing + self.performance.message_cpu * self.SEND_FRACTION * destinations

    @property
    def execution_cost(self) -> float:
        """CPU seconds to execute one transaction against the state store."""
        return self.performance.execution_cpu

    @property
    def append_cost(self) -> float:
        """CPU seconds to append one block to the ledger view."""
        return self.performance.append_cpu
