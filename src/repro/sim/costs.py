"""CPU cost accounting for simulated nodes.

The performance model charges every node CPU time for receiving,
verifying, signing, and sending protocol messages, plus executing
transactions and appending blocks.  Saturation (and therefore the
throughput/latency knee the paper's figures show) emerges from these
per-message costs queueing up at the busiest node — typically a primary.

Messages opt into signature costs by exposing two integer attributes:

* ``verify_signatures`` — number of signatures the *receiver* verifies;
* ``sign_signatures`` — number of signatures the *sender* produces when
  creating the message (charged once per message, not per destination).

Crash-only protocols leave both at zero (the paper notes that crash-only
deployments do not sign messages); Byzantine protocols set them to 1.
"""

from __future__ import annotations

from typing import Any

from ..common.config import PerformanceModel

__all__ = ["CostModel"]


class CostModel:
    """Maps messages to CPU time based on a :class:`PerformanceModel`."""

    #: fraction of a full message-processing cost charged on the send side.
    SEND_FRACTION = 0.5

    def __init__(self, performance: PerformanceModel) -> None:
        self.performance = performance

    def receive_cost(self, message: Any) -> float:
        """CPU seconds to receive, parse, and verify ``message``."""
        perf = self.performance
        cost = perf.message_cpu
        cost += getattr(message, "verify_signatures", 0) * perf.signature_verify_cpu
        cost += getattr(message, "extra_receive_cpu", 0.0)
        return cost

    def send_cost(self, message: Any, destinations: int = 1) -> float:
        """CPU seconds to serialise and push ``message`` to ``destinations``."""
        perf = self.performance
        per_destination = perf.message_cpu * self.SEND_FRACTION
        signing = getattr(message, "sign_signatures", 0) * perf.signature_sign_cpu
        return signing + per_destination * max(destinations, 0)

    @property
    def execution_cost(self) -> float:
        """CPU seconds to execute one transaction against the state store."""
        return self.performance.execution_cpu

    @property
    def append_cost(self) -> float:
        """CPU seconds to append one block to the ledger view."""
        return self.performance.append_cpu
