"""Point-to-point message transport between simulated processes.

Section 2.1 of the paper assumes an asynchronous network of pairwise
authenticated, bi-directional channels that may drop, delay, duplicate,
or reorder messages.  This module models exactly that:

* every link has a latency drawn from a :class:`LatencyModel` (intra-cluster
  links are faster than cross-cluster links, clients sit at a configurable
  distance);
* messages can be dropped randomly (``drop_rate``), per link
  (:meth:`Network.disconnect`), or via network partitions
  (:meth:`Network.partition`);
* pairwise authentication is modelled by handing the receiver the true
  sender id — a Byzantine process cannot claim another node's identity at
  the transport layer, matching the paper's assumption;
* Byzantine *content* manipulation happens one layer up: a process with a
  :class:`~repro.adversary.MessageInterceptor` attached filters its own
  outbound traffic (drop/delay/duplicate/rewrite per destination, see
  :meth:`repro.sim.process.Process.set_interceptor`) before it reaches
  :meth:`Network.send` — the transport itself stays honest, so the
  faultless fast path below is untouched by the adversary subsystem.

Performance model & parallel execution
--------------------------------------
Consensus traffic is dominated by one-to-many sends (pre-prepares,
accepts, commits), so :meth:`Network.multicast` is a first-class
primitive: it shares a single immutable payload object across all
destinations, hoists the partition/drop checks out of the loop when no
fault is active, and bulk-schedules the deliveries.  It consumes the
seeded RNG in exactly the per-destination ``send`` order, so multicast
runs stay bit-identical with the loop it replaced.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Mapping, Protocol

from ..common.config import PerformanceModel
from ..common.errors import NetworkError
from .simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .process import Process

__all__ = ["LatencyModel", "UniformLatencyModel", "ClusteredLatencyModel", "Network"]


class LatencyModel(Protocol):
    """Strategy object producing one-way link delays in seconds."""

    def delay(self, src: int, dst: int) -> float:
        """One-way delay for a message from ``src`` to ``dst``."""
        ...


class UniformLatencyModel:
    """Every link has the same base delay plus uniform multiplicative jitter.

    ``jitter`` is a *multiplicative fraction*: each delay is drawn as
    ``base_delay * (1 + U[0, jitter])``, so ``jitter=0.5`` means links are
    up to 50% slower than the base delay, never faster.
    :class:`ClusteredLatencyModel` uses the same convention for its
    ``latency_jitter`` knob, so swapping models never reinterprets the
    jitter figure.
    """

    def __init__(self, base_delay: float, jitter: float = 0.0, rng: random.Random | None = None):
        if base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.base_delay = base_delay
        self.jitter = jitter
        self.rng = rng or random.Random(0)

    def delay(self, src: int, dst: int) -> float:
        # rng.random() * jitter == rng.uniform(0, jitter), one draw either
        # way, so the seeded stream is unchanged by the inlining.
        jitter = self.rng.random() * self.jitter if self.jitter else 0.0
        return self.base_delay * (1.0 + jitter)


class ClusteredLatencyModel:
    """Latency model aware of the cluster topology.

    Nodes inside the same cluster are geographically close (Section 2.2:
    nodes are assigned to clusters by geographical distance), so
    intra-cluster links are fast; links between clusters use the slower
    cross-cluster delay; any endpoint not in the topology map (clients)
    uses the client delay.
    """

    def __init__(
        self,
        performance: PerformanceModel,
        cluster_of: Mapping[int, int],
        rng: random.Random | None = None,
    ) -> None:
        self.performance = performance
        self.cluster_of = dict(cluster_of)
        self.rng = rng or random.Random(0)
        # Base delays are memoised per (src, dst) pair: cluster membership
        # is static once traffic starts (system builders finish updating
        # ``cluster_of`` before the first message), so the two topology
        # lookups collapse into one dict probe on the hot path.
        self._pair_base: dict[tuple[int, int], float] = {}

    def _base_delay(self, src: int, dst: int) -> float:
        perf = self.performance
        src_cluster = self.cluster_of.get(src)
        dst_cluster = self.cluster_of.get(dst)
        if src_cluster is None or dst_cluster is None:
            return perf.client_latency
        if src_cluster == dst_cluster:
            return perf.intra_cluster_latency
        return perf.cross_cluster_latency

    def delay(self, src: int, dst: int) -> float:
        # Same multiplicative-fraction jitter convention as
        # UniformLatencyModel: base * (1 + U[0, jitter]).
        pair = (src, dst)
        base = self._pair_base.get(pair)
        if base is None:
            base = self._base_delay(src, dst)
            self._pair_base[pair] = base
        jitter = self.performance.latency_jitter
        if jitter:
            # Same single rng draw as rng.uniform(0, jitter).
            base *= 1.0 + self.rng.random() * jitter
        return base


class Network:
    """Routes messages between registered processes with simulated delays."""

    def __init__(
        self,
        sim: Simulator,
        latency_model: LatencyModel,
        drop_rate: float = 0.0,
        fifo: bool = True,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise NetworkError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.sim = sim
        self.latency_model = latency_model
        self.drop_rate = drop_rate
        #: deliver messages of one (src, dst) link in send order, as TCP
        #: point-to-point channels would.  Jitter still varies the delay,
        #: but never reorders a link.
        self.fifo = fifo
        self._processes: dict[int, "Process"] = {}
        self._severed_links: set[frozenset[int]] = set()
        self._partition_of: dict[int, int] | None = None
        #: per-link FIFO watermark, keyed ``src << 21 | dst`` (process ids
        #: fit in 21 bits: replicas are small ints, clients start at 1e6).
        self._last_arrival: dict[int, float] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delivered = 0
        #: flight recorder (repro.obs); None on the (default) untraced
        #: path.  When armed, send/multicast bump its per-message-type
        #: counters — one ``is None`` check, no RNG draws, so traced
        #: runs stay bit-identical on the wire.
        self.recorder = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, process: "Process") -> None:
        """Attach a process to the network under its ``pid``."""
        if process.pid in self._processes:
            raise NetworkError(f"process {process.pid} is already registered")
        self._processes[process.pid] = process

    def process(self, pid: int) -> "Process":
        """Look up a registered process."""
        try:
            return self._processes[pid]
        except KeyError:
            raise NetworkError(f"unknown process {pid}") from None

    @property
    def pids(self) -> tuple[int, ...]:
        """All registered process ids."""
        return tuple(self._processes)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def disconnect(self, a: int, b: int) -> None:
        """Sever the bidirectional link between ``a`` and ``b``."""
        self._severed_links.add(frozenset((a, b)))

    def reconnect(self, a: int, b: int) -> None:
        """Restore a previously severed link."""
        self._severed_links.discard(frozenset((a, b)))

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Partition the network: messages only flow within a group."""
        partition_of: dict[int, int] = {}
        for index, group in enumerate(groups):
            for pid in group:
                partition_of[pid] = index
        self._partition_of = partition_of

    def heal(self) -> None:
        """Remove any partition and severed links."""
        self._partition_of = None
        self._severed_links.clear()

    def _reachable(self, src: int, dst: int) -> bool:
        if frozenset((src, dst)) in self._severed_links:
            return False
        if self._partition_of is not None:
            # Unlisted processes are reachable from everyone (e.g. clients).
            src_group = self._partition_of.get(src)
            dst_group = self._partition_of.get(dst)
            if src_group is not None and dst_group is not None and src_group != dst_group:
                return False
        return True

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: object, depart_time: float | None = None) -> bool:
        """Send ``message`` from ``src`` to ``dst``.

        Returns ``True`` if the message was put on the wire (it may still
        be lost), ``False`` if it was dropped immediately.  ``depart_time``
        lets the sending process account for CPU time spent serialising
        the message before it leaves the NIC.
        """
        self.messages_sent += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.count_send(message.__class__.__name__, 1)
        destination = self._processes.get(dst)
        if destination is None:
            raise NetworkError(f"cannot send to unknown process {dst}")
        # Fast path mirroring multicast: with no partition, severed link,
        # or drop rate there is nothing that can stop the message.
        if self._partition_of is not None or self._severed_links:
            if not self._reachable(src, dst):
                self.messages_dropped += 1
                return False
        if self.drop_rate and self.sim.rng.random() < self.drop_rate:
            self.messages_dropped += 1
            return False
        departure = max(depart_time if depart_time is not None else self.sim.now, self.sim.now)
        arrival = departure + self.latency_model.delay(src, dst)
        if self.fifo:
            link = (src << 21) | dst
            arrival = max(arrival, self._last_arrival.get(link, 0.0))
            self._last_arrival[link] = arrival
        self.sim.schedule_at_fast(arrival, self._deliver, (destination, message, src))
        if recorder is not None and recorder.causal_armed:
            recorder.wire_send(departure, src, dst, message)
        return True

    def multicast(
        self,
        src: int,
        destinations: Iterable[int],
        message: object,
        depart_time: float | None = None,
        include_self: bool = False,
    ) -> int:
        """Send one immutable ``message`` to every destination.

        Semantically identical to calling :meth:`send` per destination
        (same per-destination latency draws, drop decisions, and FIFO
        ordering — the RNG is consumed in the same order, so runs are
        bit-identical), but the shared work is done once: a single payload
        object goes on the wire, the partition/severed-link/drop checks
        are hoisted out of the loop when no fault is active (the fast
        path), and all deliveries are bulk-scheduled via
        :meth:`Simulator.schedule_many`.  Returns the count put on the wire.
        """
        sim = self.sim
        now = sim.now
        departure = now if depart_time is None or depart_time < now else depart_time
        # Fast path: no partition, no severed links, no random drops —
        # every destination is reachable, so skip the per-destination
        # fault checks entirely.
        faultless = (
            not self.drop_rate and self._partition_of is None and not self._severed_links
        )
        delay = self.latency_model.delay
        processes = self._processes
        fifo = self.fifo
        last_arrival = self._last_arrival
        deliver = self._deliver
        deliveries: list[tuple[float, object, tuple]] = []
        attempted = 0
        for dst in destinations:
            if dst == src and not include_self:
                continue
            attempted += 1
            destination = processes.get(dst)
            if destination is None:
                raise NetworkError(f"cannot send to unknown process {dst}")
            if not faultless:
                if not self._reachable(src, dst):
                    self.messages_dropped += 1
                    continue
                if self.drop_rate and sim.rng.random() < self.drop_rate:
                    self.messages_dropped += 1
                    continue
            arrival = departure + delay(src, dst)
            if fifo:
                link = (src << 21) | dst
                previous = last_arrival.get(link, 0.0)
                if arrival < previous:
                    arrival = previous
                last_arrival[link] = arrival
            deliveries.append((arrival, deliver, (destination, message, src)))
        self.messages_sent += attempted
        recorder = self.recorder
        if recorder is not None:
            if attempted:
                recorder.count_send(message.__class__.__name__, attempted)
            if deliveries and recorder.causal_armed:
                recorder.wire_multicast(
                    departure,
                    src,
                    [delivery[2][0].pid for delivery in deliveries],
                    message,
                )
        # Arrivals are >= departure >= now by construction, so push the
        # batch straight onto the queue, skipping schedule_many's check.
        sim._queue.push_many(deliveries)
        return len(deliveries)

    def _deliver(self, destination: "Process", message: object, src: int) -> None:
        self.messages_delivered += 1
        destination.deliver(message, src)
