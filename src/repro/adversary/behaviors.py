"""Scripted Byzantine behaviours (the adversary library).

Each behaviour is a :class:`~repro.adversary.interceptor.MessageInterceptor`
subclass implementing one classic attack against the paper's protocols
(Sections 3.1–3.3), is fully deterministic for a ``seed``, and registers
itself under a short name so schedules, the CLI (``--attack``), and the
bench sweeps can select it by string — mirroring the system registry::

    from repro.adversary import get_behavior, make_behavior

    behavior = make_behavior("equivocating-primary", seed=3)
    system.make_byzantine(node_id=0, behavior=behavior)

Shipped behaviours:

* ``equivocating-primary`` — sends *conflicting* pre-prepares to two
  disjoint halves of the cluster's backups, so neither digest can gather
  a ``2f + 1`` prepare quorum (classic equivocation; forces a view
  change without ever forking the chain).
* ``silent-primary`` — drops every outbound message (a "fail-silent"
  node that is *not* crashed: it still receives, executes, and allocates
  slots, but nothing it says reaches the network).
* ``selective-silence`` — mutes traffic toward a chosen subset of peers
  only, modelling a node that keeps some links alive to delay detection.
* ``delay-attacker`` — holds every outbound message just under the
  view-change timeout, the strongest attack that stays formally timely.
* ``vote-withholder`` — suppresses only its prepare/commit/accept votes
  while still proposing and executing, starving quorums of one voter.
* ``tampered-digest`` — rewrites the digest carried by its votes, so
  correct replicas can never match them into a quorum (equivalent to
  withholding, but exercises the digest-checking paths).
* ``quorum-aware-equivocator`` — the *adaptive* adversary from the
  ROADMAP gap list: reads the host's live prepare-quorum tracker and
  sends conflicting prepares only at the exact moment its vote would
  complete the ``2f + 1`` quorum, staying honest otherwise.
* ``mute-during-view-change`` — silent only while a view change is in
  flight, withholding its election vote at the most fragile moment
  while leaving no steady-state evidence to suspect it over.
* ``checkpoint-suppressor`` — drops outbound checkpoint messages to
  stall garbage collection; the stall is bounded by quorum stability
  (``f`` suppressors cannot starve a ``2f + 1`` checkpoint quorum).

All behaviours are safe-by-construction targets for the
:class:`~repro.adversary.auditor.SafetyAuditor`: with at most ``f``
Byzantine replicas per cluster they may slow the system down or force
view changes, but no correct replica ever forks, double-executes, or
loses balance.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, Type, TypeVar

from ..common.crypto import Signature
from ..common.errors import ConfigurationError, RegistrationError
from ..consensus.log import Noop, item_digest
from ..consensus.messages import (
    CrossAccept,
    CrossAcceptB,
    CrossCommitB,
    NewView,
    NewViewAnnouncement,
    PaxosAccepted,
    PBFTCommit,
    Prepare,
    PrePrepare,
    ViewChange,
)
from ..recovery.messages import Checkpoint
from .interceptor import MessageInterceptor, Outbound

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..sim.process import Process

__all__ = [
    "AdversaryBehavior",
    "CheckpointSuppressor",
    "DelayAttacker",
    "EquivocatingPrimary",
    "ForgedViewAttacker",
    "MuteDuringViewChange",
    "QuorumAwareEquivocator",
    "SelectiveSilence",
    "SilentPrimary",
    "TamperedDigest",
    "VoteWithholder",
    "available_behaviors",
    "get_behavior",
    "make_behavior",
    "register_behavior",
]

BehaviorT = TypeVar("BehaviorT", bound="type")

#: name -> behaviour class; aliases map to the same class.
_BEHAVIORS: dict[str, Type["AdversaryBehavior"]] = {}

#: message types that are quorum votes (withheld / tampered with by the
#: vote-targeting behaviours).  Proposals are deliberately excluded.
VOTE_MESSAGE_TYPES: tuple[type, ...] = (
    Prepare,
    PBFTCommit,
    PaxosAccepted,
    CrossAccept,
    CrossAcceptB,
    CrossCommitB,
)


def _normalize(name: str) -> str:
    key = name.strip().lower()
    if not key:
        raise RegistrationError("behavior names must be non-empty")
    return key


def register_behavior(
    name: str, *, aliases: Iterable[str] = (), replace: bool = False
) -> Callable[[BehaviorT], BehaviorT]:
    """Class decorator registering an adversary behaviour under ``name``.

    Same contract as :func:`repro.api.register_system`: re-registering
    the identical class is a no-op; binding a name to a different class
    raises unless ``replace=True``.
    """
    keys = [_normalize(name)] + [_normalize(alias) for alias in aliases]

    def _same_class(a: type, b: type) -> bool:
        return a is b or (a.__module__, a.__qualname__) == (b.__module__, b.__qualname__)

    def decorator(cls: BehaviorT) -> BehaviorT:
        for key in keys:
            existing = _BEHAVIORS.get(key)
            if existing is not None and not _same_class(existing, cls) and not replace:
                raise RegistrationError(
                    f"behavior name {key!r} is already registered to "
                    f"{existing.__module__}.{existing.__qualname__}; "
                    "pass replace=True to override"
                )
        for key in keys:
            _BEHAVIORS[key] = cls
        cls.registry_name = keys[0]
        return cls

    return decorator


def get_behavior(name: str) -> Type["AdversaryBehavior"]:
    """Look up a registered behaviour class by (case-insensitive) name."""
    try:
        return _BEHAVIORS[_normalize(name)]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary behavior {name!r}; choose from {sorted(_BEHAVIORS)}"
        ) from None


def available_behaviors(
    target: str | None = "replica",
) -> dict[str, Type["AdversaryBehavior"]]:
    """A snapshot of the registry: sorted canonical name -> class.

    ``target`` filters by the surface a behaviour attacks — ``"replica"``
    (the default, preserving the pre-client-adversary contract of
    sweeps that attach every listed behaviour to a replica), ``"client"``
    for Byzantine-client behaviours, or ``None`` for everything.
    """
    return {
        name: cls
        for name, cls in sorted(_BEHAVIORS.items())
        if cls.registry_name == name and (target is None or cls.target == target)
    }


def make_behavior(
    behavior: "str | AdversaryBehavior", seed: int = 0, **kwargs: object
) -> "AdversaryBehavior":
    """Resolve a behaviour spec — a registry name or a ready instance.

    Instances pass through untouched (their own seed wins); names are
    instantiated with ``seed`` and any extra keyword arguments.
    """
    if isinstance(behavior, AdversaryBehavior):
        return behavior
    if isinstance(behavior, str):
        return get_behavior(behavior)(seed=seed, **kwargs)
    raise ConfigurationError(
        f"behavior must be a registry name or an AdversaryBehavior, got {behavior!r}"
    )


class AdversaryBehavior(MessageInterceptor):
    """Base class for scripted Byzantine behaviours.

    Behaviours are seeded: every random choice (which peers to mute,
    which half gets which equivocation) comes from ``self.rng``, so one
    ``(scenario seed, behavior seed)`` pair replays bit-identically.
    """

    #: canonical registry name, set by :func:`register_behavior`.
    registry_name = ""
    #: which surface the behaviour attacks: ``"replica"`` behaviours
    #: attach to consensus nodes, ``"client"`` behaviours (see
    #: :mod:`repro.adversary.clients`) to client processes.
    target = "replica"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def cluster_peers(self) -> list[int]:
        """Process ids of the host's cluster peers (host excluded), sorted.

        Only meaningful once attached to a replica (a process exposing a
        ``cluster`` attribute); generic processes have no peers.
        """
        process = self.process
        cluster = getattr(process, "cluster", None)
        if process is None or cluster is None:
            return []
        return sorted(int(node) for node in cluster.node_ids if int(node) != process.pid)

    def describe(self) -> str:
        """One-line account used by fault-event and CLI logging."""
        return self.registry_name or type(self).__name__


@register_behavior("silent-primary", aliases=("silent", "fail-silent"))
class SilentPrimary(AdversaryBehavior):
    """Drop every outbound message: a live node the network never hears.

    Unlike a crash, the node keeps receiving and processing traffic (it
    stays up to date and can be restored instantly); backups observe
    missing pre-prepares/commits and trigger a view change by timeout.
    """

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        return self.drop()


@register_behavior("selective-silence", aliases=("mute-peers",))
class SelectiveSilence(AdversaryBehavior):
    """Mute traffic toward a chosen subset of peers only.

    ``targets`` fixes the muted process ids explicitly; otherwise a
    seeded sample of ``fraction`` of the host's cluster peers is drawn on
    attach.  Keeping some links alive models an adversary that stays
    under the detection radar of part of the cluster.
    """

    def __init__(
        self,
        seed: int = 0,
        targets: Sequence[int] | None = None,
        fraction: float = 0.5,
    ) -> None:
        super().__init__(seed)
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        self.fraction = fraction
        self.muted: set[int] = set(int(t) for t in targets) if targets is not None else set()
        self._explicit = targets is not None

    def attach(self, process: "Process") -> None:
        super().attach(process)
        if not self._explicit:
            peers = self.cluster_peers()
            count = max(1, round(len(peers) * self.fraction)) if peers else 0
            self.muted = set(self.rng.sample(peers, count)) if count else set()

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if dst in self.muted:
            return self.drop()
        return self.pass_through()


@register_behavior("delay-attacker", aliases=("delayer",))
class DelayAttacker(AdversaryBehavior):
    """Hold every outbound message just under the view-change timeout.

    ``delay`` defaults to ``timeout_fraction`` of the host's
    ``view_change_timeout`` (discovered on attach), i.e. the slowest a
    node can act while still (just) never being suspected — the classic
    performance attack on timeout-based fail-over.
    """

    def __init__(
        self,
        seed: int = 0,
        delay: float | None = None,
        timeout_fraction: float = 0.9,
    ) -> None:
        super().__init__(seed)
        if delay is not None and delay < 0:
            raise ConfigurationError("delay must be non-negative")
        if not 0.0 < timeout_fraction < 1.0:
            raise ConfigurationError("timeout_fraction must be in (0, 1)")
        self.delay = delay
        self.timeout_fraction = timeout_fraction

    def attach(self, process: "Process") -> None:
        super().attach(process)
        if self.delay is None:
            timeout = getattr(process, "view_change_timeout", 0.5)
            self.delay = timeout * self.timeout_fraction

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        return self.emit(Outbound(dst=dst, message=message, extra_delay=self.delay or 0.0))


@register_behavior("vote-withholder", aliases=("withholder",))
class VoteWithholder(AdversaryBehavior):
    """Suppress quorum votes while behaving correctly otherwise.

    Prepares, commits, Paxos accepted-acks, and cross-shard accept/commit
    votes (:data:`VOTE_MESSAGE_TYPES`) are dropped; proposals, client
    replies, forwards, and view-change traffic pass through.  With at
    most ``f`` withholders per cluster, quorums of ``2f + 1`` out of
    ``3f + 1`` still form from the correct replicas — the paper's
    liveness bound exercised exactly at its edge.
    """

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) in VOTE_MESSAGE_TYPES:
            return self.drop()
        return self.pass_through()


@register_behavior("tampered-digest", aliases=("tamperer",))
class TamperedDigest(AdversaryBehavior):
    """Corrupt the digest carried by this node's quorum votes.

    Correct replicas accumulate votes keyed on ``(view, slot, digest)``,
    so a vote carrying a forged digest can never join a quorum for the
    real proposal — behaviourally a withheld vote, but it drives the
    digest-matching code paths a plain drop never touches.  The forged
    digest is deterministic per (seed, original digest).
    """

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) not in VOTE_MESSAGE_TYPES:
            return self.pass_through()
        digest = getattr(message, "digest", None)
        if digest is None:
            return self.pass_through()
        forged = hashlib.sha256(f"tampered|{self.seed}|{digest}".encode()).hexdigest()
        return self.emit(Outbound(dst=dst, message=dataclass_replace(message, digest=forged)))


@register_behavior("quorum-aware-equivocator", aliases=("adaptive-equivocator",))
class QuorumAwareEquivocator(AdversaryBehavior):
    """Equivocate a quorum vote only when the quorum is one vote short.

    The first *adaptive* adversary from the ROADMAP gap list: instead of
    following a fixed script it reads the host replica's live protocol
    state through the interceptor hook.  Whenever this node is about to
    multicast a prepare/commit vote after whose accounting the quorum
    for ``(view, slot, digest)`` would sit *exactly one peer vote short*
    of ``2f + 1`` — i.e. precisely when withholding the truth from part
    of the cluster maximally endangers the quorum — it splits the
    cluster: a seeded half of the peers receives a *conflicting* vote
    (forged digest) while the rest receive the real one.  The oracle is
    the host engine's own vote tracker plus the votes the engine records
    the moment this multicast returns (a backup's prepare carries two:
    its own and the pre-prepare it doubles for).  When the tracker shows
    the cluster is already further along — peer votes arrived before
    this node's own, e.g. across view changes or under concurrent
    attacks — the condition fails and the node stays scrupulously
    honest, keeping the attack invisible to any detector that samples
    behaviour at random moments.

    With at most ``f`` such adversaries per cluster the quorum
    intersection argument still holds — the forged digest can never
    gather ``2f + 1`` matching votes — so the attack can at worst stall
    a slot into a view change; the
    :class:`~repro.adversary.auditor.SafetyAuditor` must keep passing.
    """

    #: outbound vote type → (host tracker name, votes the engine records
    #: for the key right after this multicast returns).
    _TRACKERS = {Prepare: ("_prepares", 2), PBFTCommit: ("_commits", 1)}

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        #: (view, slot, digest) -> set of pids fed the conflicting vote.
        self._forks: dict[tuple[int, int, str], set[int]] = {}
        self.equivocations = 0

    def _pivotal(self, message: object) -> bool:
        spec = self._TRACKERS.get(type(message))
        if spec is None:
            return False
        tracker_name, own_weight = spec
        engine = getattr(self.process, "intra", None)
        tracker = getattr(engine, tracker_name, None)
        if tracker is None:
            return False
        key = (message.view, message.slot, message.digest)
        return tracker.threshold - (tracker.count(key) + own_weight) == 1

    def _victims(self, key: tuple[int, int, str]) -> set[int]:
        victims = self._forks.get(key)
        if victims is None:
            peers = self.cluster_peers()
            self.rng.shuffle(peers)
            victims = set(peers[: max(1, len(peers) // 2)]) if peers else set()
            self._forks[key] = victims
        return victims

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) not in self._TRACKERS:
            return self.pass_through()
        key = (message.view, message.slot, message.digest)
        if key not in self._forks and not self._pivotal(message):
            return self.pass_through()
        if dst not in self._victims(key):
            return self.pass_through()
        forged = hashlib.sha256(
            f"quorum-equivocation|{self.seed}|{message.digest}".encode()
        ).hexdigest()
        self.equivocations += 1
        return self.emit(Outbound(dst=dst, message=dataclass_replace(message, digest=forged)))


@register_behavior("equivocating-primary", aliases=("equivocator",))
class EquivocatingPrimary(AdversaryBehavior):
    """Send conflicting pre-prepares to two disjoint halves of the backups.

    For every slot this node pre-prepares, one (seeded, per-slot) half of
    the cluster's backups receives the real proposal and the other half
    receives an internally consistent *conflicting* proposal (a no-op
    with a distinct digest).  With ``3f + 1`` nodes neither digest can
    reach ``2f + 1`` prepares — the primary's own vote counts only for
    the real one — so the slot stalls, backups time out, and the view
    change elects a correct primary.  No correct replica ever commits
    either conflicting proposal, which is exactly the safety property
    the :class:`~repro.adversary.auditor.SafetyAuditor` checks.

    Non-proposal traffic passes through, so the attack is invisible
    until the node becomes (or already is) a primary.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        #: (view, slot) -> (set of pids fed the fork, conflicting message).
        self._forks: dict[tuple[int, int], tuple[set[int], PrePrepare]] = {}

    def _fork_for(self, message: PrePrepare) -> tuple[set[int], PrePrepare]:
        key = (message.view, message.slot)
        fork = self._forks.get(key)
        if fork is None:
            peers = self.cluster_peers()
            self.rng.shuffle(peers)
            victims = set(peers[: max(1, len(peers) // 2)]) if peers else set()
            alternate = Noop(
                reason=f"equivocation-s{self.seed}-v{message.view}-slot{message.slot}"
            )
            forged = dataclass_replace(
                message, digest=item_digest(alternate), item=alternate
            )
            fork = (victims, forged)
            self._forks[key] = fork
        return fork

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) is not PrePrepare:
            return self.pass_through()
        victims, forged = self._fork_for(message)
        if dst in victims:
            return self.emit(Outbound(dst=dst, message=forged))
        return self.pass_through()


@register_behavior("forged-view", aliases=("view-inflator",))
class ForgedViewAttacker(AdversaryBehavior):
    """Inflate view numbers to self-elect — the forged-view attack.

    Primaries rotate round-robin, so every node is the designated
    primary of infinitely many future views.  This behaviour rewrites
    the ``view`` of every outbound pre-prepare to the next future view
    whose primary the host is, and fabricates the takeover paperwork a
    real fail-over would produce: a :class:`NewView` to its cluster
    peers and a :class:`NewViewAnnouncement` to every remote node, both
    carrying a *fabricated* certificate of view-change votes "from" its
    peers (with forged signatures — the adversary cannot sign for
    correct nodes).

    Against the pre-certificate protocol this captures the primary seat
    outright: backups trusted ``message.view`` and adopted the inflated
    view.  Against the authenticated view change it must fail on every
    path — backups park pre-prepares for uninstalled views, the
    fabricated certificates never verify, and state transfer only adopts
    quorum-attested views — so the attacker merely goes silent in its
    real view and loses its seat to an honest timeout-driven view
    change.  The :class:`~repro.adversary.auditor.SafetyAuditor` must
    keep passing throughout.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._target_view: int | None = None
        self._announced = False
        self.forged_pre_prepares = 0

    def _target(self) -> int | None:
        """Next future view whose round-robin primary this node is."""
        if self._target_view is not None:
            return self._target_view
        process = self.process
        cluster = getattr(process, "cluster", None)
        engine = getattr(process, "intra", None)
        if cluster is None or engine is None:
            return None
        view = engine.view + 1
        while int(cluster.primary_for_view(view)) != process.pid:
            view += 1
        self._target_view = view
        return view

    def _takeover_messages(self, target: int) -> list[Outbound]:
        """Fabricated NewView + cross-cluster announcements for ``target``."""
        process = self.process
        cluster = process.cluster
        certificate = tuple(
            ViewChange(
                new_view=target,
                node=peer,
                decided=(),
                accepted=(),
                checkpoint=0,
                signature=Signature(
                    signer=int(peer), payload_digest="forged", forged=True
                ),
            )
            for peer in cluster.node_ids
        )
        new_view = NewView(
            view=target, node=process.node_id, entries=(), certificate=certificate
        )
        actions = [
            Outbound(dst=peer, message=new_view) for peer in self.cluster_peers()
        ]
        config = getattr(process, "config", None)
        nodes_of_clusters = getattr(process, "nodes_of_clusters", None)
        if config is not None and nodes_of_clusters is not None:
            announcement = NewViewAnnouncement(
                cluster=cluster.cluster_id,
                view=target,
                node=process.node_id,
                certificate=certificate,
            )
            actions.extend(
                Outbound(dst=node, message=announcement)
                for node in nodes_of_clusters(
                    remote.cluster_id
                    for remote in config.clusters
                    if remote.cluster_id != cluster.cluster_id
                )
            )
        return actions

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) is not PrePrepare:
            return self.pass_through()
        target = self._target()
        if target is None:
            return self.pass_through()
        forged = dataclass_replace(message, view=target)
        self.forged_pre_prepares += 1
        actions = [Outbound(dst=dst, message=forged)]
        if not self._announced:
            self._announced = True
            actions.extend(self._takeover_messages(target))
        return self.emit(*actions)


@register_behavior("mute-during-view-change", aliases=("vc-mute",))
class MuteDuringViewChange(AdversaryBehavior):
    """Go silent exactly while a view change is in flight.

    The adaptive complement of ``silent-primary``: the node behaves
    correctly in steady state — votes, proposes, replies — but the
    moment it starts participating in a view change (its own
    ``in_view_change`` flag, set between suspecting the primary and
    installing the successor view) it drops *everything* outbound,
    including its own view-change vote.  That withholds one voter from
    the election at its most fragile moment while leaving no steady-
    state evidence to suspect this node over.

    With at most ``f`` such nodes per cluster the election still
    completes: the new primary needs a quorum of view-change votes, the
    correct replicas supply it (the muted node's *own* vote still counts
    locally if the rotation lands on it, and its ``NewView`` passes —
    ``in_view_change`` clears at installation, before the announcement
    is sent), and ordering resumes in the new view.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.muted_messages = 0

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        engine = getattr(self.process, "intra", None)
        manager = getattr(engine, "view_change", None)
        if manager is not None and manager.in_view_change:
            self.muted_messages += 1
            return self.drop()
        return self.pass_through()


@register_behavior("checkpoint-suppressor", aliases=("gc-staller",))
class CheckpointSuppressor(AdversaryBehavior):
    """Drop outbound checkpoint messages to stall garbage collection.

    Checkpoint stability needs an intra-quorum of matching signed
    digests (:mod:`repro.recovery.checkpoint`); a suppressor keeps
    taking checkpoints locally but never shares them, trying to starve
    the quorum so logs and ledgers grow without bound.  The stall is
    bounded by quorum stability: with at most ``f`` suppressors per
    cluster the ``2f + 1`` (crash: ``f + 1``) correct replicas still
    exchange enough matching digests to stabilise every interval, and
    even the suppressor itself garbage-collects — it still *receives*
    its peers' checkpoints and counts its own unsent vote.  Ordering
    traffic is untouched, so the behaviour is invisible to throughput.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.suppressed_checkpoints = 0

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) is Checkpoint:
            self.suppressed_checkpoints += 1
            return self.drop()
        return self.pass_through()
