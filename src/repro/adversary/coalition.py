"""Colluding adversaries: one shared script across Byzantine replicas.

The behaviours in :mod:`repro.adversary.behaviors` act alone.  A
:class:`Coalition` binds up to ``f`` Byzantine replicas *per cluster* —
in different clusters — to one script: the members share a target set
(the adversary's out-of-band channel, which the paper's model grants it
for free), and each member unleashes its inner behaviour only against
messages of a shared target.

The canonical play, from the ROADMAP gap list: a ``delay-attacker``
member sitting on the initiator cluster's primary spots every
cross-shard transaction it proposes and registers its digest as a
coalition target; a ``vote-withholder`` member in a *remote* involved
cluster then withholds its accept/commit votes for exactly those
digests.  Each member stays within the per-cluster fault bound ``f``,
and each looks almost honest in isolation — the delay is formally
timely, the withholder only mutes votes for a few digests — yet
together they squeeze the same transactions from both ends.  Safety
must still hold: quorums of ``2f + 1`` form from the correct replicas,
so the coalition can at worst slow the targeted instances or force
retries, and the :class:`~repro.adversary.auditor.SafetyAuditor` keeps
passing.

Members *wrap* registry behaviours (`Coalition.member("delay-attacker")`
resolves through :func:`~repro.adversary.behaviors.make_behavior`), so
any registered replica behaviour can join a coalition.  Coalitions are
formed at fault-event time (:meth:`repro.api.FaultSchedule.form_coalition`
→ :meth:`repro.core.system.BaseSystem.form_coalition`), which keeps
schedules picklable and lets pool workers build private instances —
per-seed results stay bit-identical between serial and pooled runs.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from ..consensus.messages import CrossPropose, CrossProposeB
from .behaviors import AdversaryBehavior, make_behavior
from .interceptor import Outbound

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..sim.process import Process

__all__ = ["Coalition", "CoalitionMember"]

#: message types whose appearance on a member's wire marks a new target
#: (only the initiator cluster's primary multicasts these).
_SPOTTER_TYPES: tuple[type, ...] = (CrossPropose, CrossProposeB)


class Coalition:
    """Shared state binding coalition members to one script."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        #: request digests of the cross-shard transactions under attack.
        self.targets: set[str] = set()
        self.members: list["CoalitionMember"] = []
        #: distinct targets ever registered.
        self.targeted = 0
        #: messages a member handed to its inner behaviour.
        self.attacked = 0

    def member(
        self, behavior: "str | AdversaryBehavior" = "delay-attacker"
    ) -> "CoalitionMember":
        """Create a member whose inner behaviour is gated on the targets.

        ``behavior`` is resolved through the ordinary behaviour registry
        (or taken as a ready instance), so coalitions compose from the
        same library solo attacks use.  Members get distinct derived
        seeds, keeping the whole coalition deterministic per run seed.
        """
        inner = make_behavior(behavior, seed=self.seed + 31 * (len(self.members) + 1))
        member = CoalitionMember(coalition=self, inner=inner)
        self.members.append(member)
        return member

    def register_target(self, digest: str) -> None:
        """Add a cross-shard instance to the shared target set."""
        if digest not in self.targets:
            self.targets.add(digest)
            self.targeted += 1

    def describe(self) -> str:
        """One-line account used by fault-event and CLI logging."""
        inner = "+".join(member.inner.describe() for member in self.members) or "empty"
        return f"coalition[{inner}]"


class CoalitionMember(AdversaryBehavior):
    """One replica's seat in a coalition: an inner behaviour, target-gated.

    The member is honest toward everything except coalition targets.
    Whenever the host is about to multicast a cross-shard proposal, the
    member registers the instance's digest with the coalition — the
    shared channel by which, in the same simulated instant, every other
    member learns what to attack.  Messages carrying a targeted digest
    are handed to the inner behaviour (delay, withhold, tamper, …);
    everything else passes through untouched, keeping each member under
    the detection radar its inner behaviour would otherwise trip.
    """

    def __init__(self, coalition: Coalition, inner: AdversaryBehavior) -> None:
        super().__init__(seed=inner.seed)
        self.coalition = coalition
        self.inner = inner

    # ------------------------------------------------------------------
    # lifecycle (keep the inner behaviour attached alongside)
    # ------------------------------------------------------------------
    def attach(self, process: "Process") -> None:
        super().attach(process)
        self.inner.attach(process)

    def detach(self) -> None:
        self.inner.detach()
        super().detach()

    def describe(self) -> str:
        return f"coalition-member[{self.inner.describe()}]"

    # ------------------------------------------------------------------
    # the hook
    # ------------------------------------------------------------------
    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        digest = getattr(message, "digest", None)
        if digest is None:
            return self.pass_through()
        coalition = self.coalition
        if type(message) in _SPOTTER_TYPES:
            coalition.register_target(digest)
        if digest not in coalition.targets:
            return self.pass_through()
        coalition.attacked += 1
        verdict = self.inner.outbound(dst, message)
        if verdict is None:
            self.passed += 1
            return None
        # Mirror the inner behaviour's verdict in this member's counters
        # (the inner behaviour already counted it for itself).
        if len(verdict) == 0:
            self.dropped += 1
        else:
            self.injected += len(verdict)
        return verdict
