"""Post-run safety auditing under Byzantine behaviour.

The ledger audit (:func:`repro.ledger.validation.audit_views`) checks one
*representative* view per cluster; that is the right tool for fault-free
and crash runs, but an adversary could in principle split a cluster into
replicas that each hold an internally consistent — yet mutually
conflicting — chain.  The :class:`SafetyAuditor` therefore checks the
paper's safety claims across **every correct replica** after a run:

* **No fork** — no two correct replicas of a cluster commit different
  blocks at the same height (chains of correct replicas are prefixes of
  one another; lagging behind is allowed, diverging is not).
* **Balance conservation** — summing one correct representative store
  per shard reproduces exactly the balance minted at bootstrap.
* **At-most-once execution** — no transaction id appears twice in any
  correct replica's chain, and replicas agreeing on a height agree on
  the transaction committed there.

Replicas flagged Byzantine (``system.byzantine_nodes``) are excluded:
the paper makes no promises about *their* state, only that they cannot
drag correct replicas into inconsistency while at most ``f`` per cluster
misbehave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..common.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.system import BaseSystem

__all__ = ["SafetyReport", "SafetyAuditor"]


@dataclass
class SafetyReport:
    """Outcome of a :class:`SafetyAuditor` pass (picklable, detachable)."""

    #: correct replicas whose chains were cross-checked.
    replicas_checked: int = 0
    #: clusters with at least one correct replica.
    clusters_checked: int = 0
    #: process ids excluded as Byzantine.
    byzantine_nodes: tuple[int, ...] = ()
    #: observed / expected total balance (None when stores were unavailable).
    total_balance: int | None = None
    expected_balance: int | None = None
    #: human-readable safety violations (empty means the run was safe).
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no safety violation was found."""
        return not self.problems

    def raise_if_failed(self) -> None:
        """Raise :class:`ValidationError` summarising any violation."""
        if self.problems:
            raise ValidationError("safety audit failed: " + "; ".join(self.problems))

    def summary(self) -> str:
        """One line suitable for example/CLI output."""
        verdict = "SAFE" if self.ok else f"VIOLATED ({len(self.problems)})"
        return (
            f"safety: {verdict} — {self.replicas_checked} correct replicas over "
            f"{self.clusters_checked} clusters, "
            f"{len(self.byzantine_nodes)} Byzantine excluded"
        )


class SafetyAuditor:
    """Cross-replica safety checker for a finished (drained) system run."""

    def __init__(self, system: "BaseSystem") -> None:
        self.system = system

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def audit(self) -> SafetyReport:
        """Run all safety checks and return the bundled report."""
        system = self.system
        byzantine = {int(pid) for pid in getattr(system, "byzantine_nodes", ())}
        report = SafetyReport(byzantine_nodes=tuple(sorted(byzantine)))

        groups = self._correct_replicas_by_cluster(byzantine)
        representatives = {}
        for cluster_id in sorted(groups):
            replicas = groups[cluster_id]
            report.clusters_checked += 1
            report.replicas_checked += len(replicas)
            representative = self._check_no_fork(cluster_id, replicas, report)
            self._check_at_most_once(cluster_id, replicas, report)
            representatives[cluster_id] = representative
        self._check_balance(representatives, report)
        return report

    # ------------------------------------------------------------------
    # replica discovery
    # ------------------------------------------------------------------
    def _correct_replicas_by_cluster(self, byzantine: set[int]) -> dict:
        """Group the system's correct, chain-bearing replicas by cluster.

        Works on any :class:`~repro.core.system.BaseSystem` whose replica
        processes expose ``chain`` and ``cluster_id`` (SharPer and all
        shipped baselines do); other processes are ignored.
        """
        groups: dict = {}
        for process in self.system.processes():
            if int(process.pid) in byzantine:
                continue
            chain = getattr(process, "chain", None)
            cluster_id = getattr(process, "cluster_id", None)
            if chain is None or cluster_id is None:
                continue
            groups.setdefault(cluster_id, []).append(process)
        return groups

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def _check_no_fork(self, cluster_id, replicas, report: SafetyReport):
        """Chains of correct replicas must be prefixes of the longest one.

        Blocks are aligned by their absolute chain position, not by list
        offset, because replicas prune independently once checkpointing
        runs (:mod:`repro.recovery`): two correct replicas may retain
        different suffixes of the same chain.  Positions only one of the
        two retains are vouched for by the stable-checkpoint quorum that
        authorised the pruning.  Returns the representative
        (longest-chain) replica for the cluster, used afterwards for the
        balance check.
        """
        representative = max(replicas, key=lambda replica: replica.chain.height)
        reference = {
            block.position_for(cluster_id): block
            for block in representative.chain.blocks()
        }
        for replica in replicas:
            if replica is representative:
                continue
            for block in replica.chain.blocks():
                position = block.position_for(cluster_id)
                other = reference.get(position)
                if other is None:
                    continue
                if block.block_hash != other.block_hash:
                    report.problems.append(
                        f"fork in cluster {cluster_id}: replicas "
                        f"{int(replica.pid)} and {int(representative.pid)} commit "
                        f"different blocks at height {position} "
                        f"({block.label()} vs {other.label()})"
                    )
                    break
        return representative

    def _check_at_most_once(self, cluster_id, replicas, report: SafetyReport) -> None:
        """No transaction may be committed twice in any correct chain.

        Heights come from the blocks' position vectors (stable across
        pruning); the append path additionally enforces the invariant at
        run time against the full — never pruned — transaction index.
        """
        for replica in replicas:
            seen: dict[str, int] = {}
            for block in replica.chain.blocks():
                height = block.position_for(cluster_id)
                for transaction in block.transactions:
                    first = seen.setdefault(transaction.tx_id, height)
                    if first != height:
                        report.problems.append(
                            f"double execution in cluster {cluster_id}: replica "
                            f"{int(replica.pid)} committed {transaction.tx_id} at "
                            f"heights {first} and {height}"
                        )

    def _check_balance(self, representatives: dict, report: SafetyReport) -> None:
        """Summing one correct store per shard must reproduce the mint."""
        system = self.system
        stores = [
            replica.store
            for replica in representatives.values()
            if getattr(replica, "store", None) is not None
        ]
        if len(stores) == len(system.config.clusters) and stores:
            total = sum(store.total_balance() for store in stores)
        else:
            # Systems whose shard/store layout does not map one store per
            # cluster (e.g. single-group baselines) fall back to their own
            # representative-store accounting.
            total = system.total_balance()
        expected = system.expected_total_balance()
        report.total_balance = total
        report.expected_balance = expected
        if total != expected:
            report.problems.append(
                f"balance not conserved across correct replicas: have {total}, "
                f"expected {expected}"
            )
