"""Adversary subsystem: scripted Byzantine behaviour + safety auditing.

The paper claims safety and liveness with up to ``f`` **Byzantine**
replicas per cluster (Section 2.1); this package makes that claim
testable instead of assumed:

* :class:`MessageInterceptor` / :class:`Outbound` — the transport hook:
  a per-process outbound filter that can drop, delay, duplicate, or
  rewrite messages per destination (attached with
  :meth:`repro.sim.process.Process.set_interceptor`).
* the behaviour library — :class:`EquivocatingPrimary`,
  :class:`SilentPrimary`, :class:`SelectiveSilence`,
  :class:`DelayAttacker`, :class:`VoteWithholder`,
  :class:`TamperedDigest` — each seeded, deterministic, and registered
  by name (:func:`register_behavior` / :func:`get_behavior` /
  :func:`make_behavior`).
* :class:`SafetyAuditor` / :class:`SafetyReport` — post-run checks that
  no two correct replicas forked, balances are conserved, and every
  transaction executed at most once.

Adversaries compose with crashes and partitions in one declarative
schedule through :meth:`repro.api.FaultSchedule.make_byzantine` /
:meth:`repro.api.FaultSchedule.restore`, and every shipped scenario is
expected to pass the auditor with at most ``f`` Byzantine replicas per
cluster — see ``examples/byzantine_attacks.py``.
"""

from .auditor import SafetyAuditor, SafetyReport
from .behaviors import (
    AdversaryBehavior,
    DelayAttacker,
    EquivocatingPrimary,
    QuorumAwareEquivocator,
    SelectiveSilence,
    SilentPrimary,
    TamperedDigest,
    VoteWithholder,
    available_behaviors,
    get_behavior,
    make_behavior,
    register_behavior,
)
from .interceptor import MessageInterceptor, Outbound

__all__ = [
    "AdversaryBehavior",
    "DelayAttacker",
    "EquivocatingPrimary",
    "MessageInterceptor",
    "Outbound",
    "QuorumAwareEquivocator",
    "SafetyAuditor",
    "SafetyReport",
    "SelectiveSilence",
    "SilentPrimary",
    "TamperedDigest",
    "VoteWithholder",
    "available_behaviors",
    "get_behavior",
    "make_behavior",
    "register_behavior",
]
