"""Adversary subsystem: scripted Byzantine behaviour + safety auditing.

The paper claims safety and liveness with up to ``f`` **Byzantine**
replicas per cluster and correct clients (Section 2.1); this package
makes both halves of that claim testable instead of assumed:

* :class:`MessageInterceptor` / :class:`Outbound` — the transport hook:
  a per-process outbound filter that can drop, delay, duplicate, or
  rewrite messages per destination (attached with
  :meth:`repro.sim.process.Process.set_interceptor`).
* the replica behaviour library — :class:`EquivocatingPrimary`,
  :class:`SilentPrimary`, :class:`SelectiveSilence`,
  :class:`DelayAttacker`, :class:`VoteWithholder`,
  :class:`TamperedDigest`, the adaptive
  :class:`QuorumAwareEquivocator`, and the view-inflating
  :class:`ForgedViewAttacker` — each seeded, deterministic, and
  registered by name (:func:`register_behavior` / :func:`get_behavior` /
  :func:`make_behavior`; :func:`available_behaviors` filters by target).
* the **client** behaviour library (:mod:`repro.adversary.clients`) —
  :class:`DuplicatingClient`, :class:`ForgedSignatureClient`,
  :class:`OwnershipViolatorClient` — the same interceptor mechanism
  attached to client processes
  (:meth:`repro.core.system.BaseSystem.make_client_byzantine`),
  attacking the request path the paper assumes correct.
* :class:`Coalition` / :class:`CoalitionMember` — colluding adversaries:
  up to ``f`` Byzantine replicas per cluster, in *different* clusters,
  bound to one shared script through a common target set
  (:meth:`repro.core.system.BaseSystem.form_coalition`).
* :class:`SafetyAuditor` / :class:`SafetyReport` — post-run checks
  across every correct replica.

Invariants this package asserts (and the protocol hardening defends),
regardless of which behaviours are armed, as long as at most ``f``
replicas per cluster are Byzantine:

* **no fork** — correct replicas of a cluster never commit different
  blocks at the same chain position (pruned history is vouched for by
  its stable-checkpoint quorum);
* **balance conservation** — one correct store per shard sums to
  exactly the minted total;
* **at-most-once execution** — no transaction id commits twice in any
  correct chain, under duplicated, replayed, or mutated client
  requests included (the :class:`~repro.core.guard.RequestGuard` door
  screen plus the apply-time no-op backstop);
* **authenticated elections** — no replica adopts a view, and no node
  updates its remote-primary table, without a verifying quorum
  certificate of signed view-change votes (``2f + 1`` Byzantine,
  ``f + 1`` crash).

Adversaries compose with crashes and partitions in one declarative
schedule through :class:`repro.api.FaultSchedule`
(``make_byzantine`` / ``make_client_byzantine`` / ``form_coalition`` /
``restore``), and every shipped scenario is expected to pass the
auditor — see ``examples/byzantine_attacks.py`` and
``docs/adversary.md``.
"""

from .auditor import SafetyAuditor, SafetyReport
from .behaviors import (
    AdversaryBehavior,
    CheckpointSuppressor,
    DelayAttacker,
    EquivocatingPrimary,
    ForgedViewAttacker,
    MuteDuringViewChange,
    QuorumAwareEquivocator,
    SelectiveSilence,
    SilentPrimary,
    TamperedDigest,
    VoteWithholder,
    available_behaviors,
    get_behavior,
    make_behavior,
    register_behavior,
)
from .clients import (
    ClientBehavior,
    DuplicatingClient,
    ForgedSignatureClient,
    OwnershipViolatorClient,
)
from .coalition import Coalition, CoalitionMember
from .interceptor import MessageInterceptor, Outbound

__all__ = [
    "AdversaryBehavior",
    "CheckpointSuppressor",
    "ClientBehavior",
    "Coalition",
    "CoalitionMember",
    "DelayAttacker",
    "DuplicatingClient",
    "EquivocatingPrimary",
    "ForgedSignatureClient",
    "ForgedViewAttacker",
    "MessageInterceptor",
    "MuteDuringViewChange",
    "Outbound",
    "OwnershipViolatorClient",
    "QuorumAwareEquivocator",
    "SafetyAuditor",
    "SafetyReport",
    "SelectiveSilence",
    "SilentPrimary",
    "TamperedDigest",
    "VoteWithholder",
    "available_behaviors",
    "get_behavior",
    "make_behavior",
    "register_behavior",
]
