"""Message-level interception: the transport hook adversaries plug into.

The paper's fault model (Section 2.1) allows up to ``f`` *Byzantine*
replicas per cluster — nodes that may send conflicting messages, stay
silent toward chosen peers, delay traffic, or corrupt payloads, while
the transport still prevents identity spoofing (channels are pairwise
authenticated).  This module provides the mechanism those behaviours are
built from: a per-process **outbound** hook.

A :class:`MessageInterceptor` attached to a process
(:meth:`repro.sim.process.Process.set_interceptor`) sees every outgoing
message once per destination and decides what actually goes on the wire:

* ``None`` — pass the message through unchanged (the default);
* ``[]`` — drop it (silence toward that destination);
* one or more :class:`Outbound` actions — deliver rewritten payloads,
  extra copies, and/or hold a copy back by ``extra_delay`` seconds.

Interception is strictly outbound and per process, so the faultless fast
path is untouched: a process without an interceptor takes exactly the
pre-existing ``send``/``multicast`` code path (one ``is None`` check),
consumes the seeded RNG identically, and stays bit-identical with runs
recorded before this hook existed.  Receiver-side authentication is
preserved — an interceptor can forge *content* but never the sender id
the network hands to the destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..sim.process import Process

__all__ = ["Outbound", "MessageInterceptor"]


@dataclass(frozen=True, slots=True)
class Outbound:
    """One concrete transmission an interceptor wants on the wire."""

    #: destination process id (may differ from the intended one).
    dst: int
    #: the payload to deliver (the original or a rewritten copy).
    message: object
    #: extra seconds the copy is held back before departing the NIC.
    extra_delay: float = 0.0


class MessageInterceptor:
    """Base class for outbound message interceptors.

    Subclasses override :meth:`outbound`.  The base implementation passes
    everything through, so a bare ``MessageInterceptor()`` is a behavioural
    no-op (useful for testing that the hook itself does not perturb runs).

    Interceptors are attached to exactly one process at a time; ``attach``
    gives them access to the host for topology introspection (cluster
    membership, tuning knobs) and ``detach`` is called when the node is
    restored to correct behaviour.
    """

    def __init__(self) -> None:
        self.process: "Process | None" = None
        #: messages seen (one count per destination of a multicast).
        self.seen = 0
        #: messages passed through unchanged.
        self.passed = 0
        #: messages suppressed entirely.
        self.dropped = 0
        #: replacement/extra transmissions emitted.
        self.injected = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, process: "Process") -> None:
        """Bind the interceptor to the process whose traffic it filters."""
        self.process = process

    def detach(self) -> None:
        """Unbind from the host process (node restored)."""
        self.process = None

    def __getstate__(self) -> dict:
        # The host attachment is per-run runtime state: it must not drag
        # a live system across pickling (scenarios carrying behaviour
        # instances ship to --jobs workers) or deep copies.
        state = self.__dict__.copy()
        state["process"] = None
        return state

    # ------------------------------------------------------------------
    # the hook
    # ------------------------------------------------------------------
    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        """Decide what to transmit for one (destination, message) pair.

        Return ``None`` to pass the original through unchanged, an empty
        sequence to drop it, or a sequence of :class:`Outbound` actions to
        emit instead (rewrites, duplicates, delayed copies).
        """
        return None

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def pass_through(self) -> None:
        """Record and return the pass-through verdict."""
        self.passed += 1
        return None

    def drop(self) -> Sequence[Outbound]:
        """Record and return the drop verdict."""
        self.dropped += 1
        return ()

    def emit(self, *actions: Outbound) -> Sequence[Outbound]:
        """Record and return replacement transmissions."""
        self.injected += len(actions)
        return actions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} seen={self.seen} passed={self.passed} "
            f"dropped={self.dropped} injected={self.injected}>"
        )
