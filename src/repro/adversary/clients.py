"""Byzantine *client* behaviours — the request-path adversary library.

The replica-side library (:mod:`repro.adversary.behaviors`) attacks
consensus from inside a cluster; the behaviours here attack it from the
outside, through the client request path the paper assumes to be
correct.  They are the same mechanism — clients are simulated processes,
so a :class:`~repro.adversary.interceptor.MessageInterceptor` attached
with :meth:`repro.core.system.BaseSystem.make_client_byzantine` filters
their outbound traffic exactly like a replica's — but they target the
invariants the replica-side :class:`~repro.core.guard.RequestGuard`
defends:

* ``duplicating-client`` — re-emits every request as a mutated-timestamp
  duplicate (same transaction, fresh request digest, defeating naive
  digest-keyed dedup) and replays older requests verbatim; at-most-once
  execution must survive.
* ``forged-signature-client`` — pairs every honest request with a copy
  re-attributed to another client under a forged signature (the
  impersonation the paper's signed ``⟨REQUEST, tx, τ_c, c⟩σ_c`` exists
  to prevent); authentication must reject it.
* ``ownership-violator-client`` — additionally submits transfers drawn
  from accounts the client does not own; the static ownership screen
  must refuse them at every involved cluster (without it, a cross-shard
  theft would fail validation at the source cluster yet still deposit
  remotely, breaking balance conservation).

All behaviours keep the client's *own* honest request flowing, so the
closed loop keeps issuing traffic and the attack sustains for the whole
run.  Like every behaviour, they are seeded and deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace as dataclass_replace
from typing import Sequence

from ..common.crypto import Signature
from ..common.types import AccountId, ClientId
from ..consensus.messages import ClientRequest
from ..txn.transaction import Transaction, Transfer
from .behaviors import AdversaryBehavior, register_behavior
from .interceptor import Outbound

__all__ = [
    "ClientBehavior",
    "DuplicatingClient",
    "ForgedSignatureClient",
    "OwnershipViolatorClient",
]


class ClientBehavior(AdversaryBehavior):
    """Base class for Byzantine client behaviours (``target = "client"``)."""

    target = "client"

    def mapper(self):
        """Shard mapper of the host client's workload (None off-host)."""
        workload = getattr(self.process, "workload", None)
        return getattr(workload, "mapper", None)


@register_behavior("duplicating-client", aliases=("duplicate-client", "replaying-client"))
class DuplicatingClient(ClientBehavior):
    """Duplicate and replay requests to attack at-most-once execution.

    Every outbound request departs three ways: the original, a copy with
    a nudged timestamp — same transaction id, *different* request digest,
    so it slips past any digest-keyed duplicate detection and would
    commit the transaction at a second slot if replicas did not dedup by
    transaction — and (once history exists) a verbatim replay of an
    older, typically already-committed request.
    """

    def __init__(self, seed: int = 0, replay_depth: int = 8) -> None:
        super().__init__(seed)
        self._history: deque[ClientRequest] = deque(maxlen=replay_depth)
        self.duplicates_sent = 0
        self.replays_sent = 0

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) is not ClientRequest:
            return self.pass_through()
        duplicate = dataclass_replace(
            message,
            timestamp=message.timestamp + 1e-7 * (1 + self.rng.randrange(4)),
        )
        self.duplicates_sent += 1
        actions = [
            Outbound(dst=dst, message=message),
            Outbound(dst=dst, message=duplicate, extra_delay=1e-4),
        ]
        if self._history and self.rng.random() < 0.5:
            replayed = self._history[self.rng.randrange(len(self._history))]
            self.replays_sent += 1
            actions.append(Outbound(dst=dst, message=replayed, extra_delay=2e-4))
        self._history.append(message)
        return self.emit(*actions)


@register_behavior("forged-signature-client", aliases=("forging-client",))
class ForgedSignatureClient(ClientBehavior):
    """Pair every request with a forged-signature impersonation attempt.

    The forged copy claims to come from another application client and
    carries a fabricated signature (``forged=True`` — the adversary
    cannot produce valid signatures of clients it does not control).
    Replicas with request authentication armed drop it at the door;
    without authentication it would still fail the ownership check at
    execution, but only after consuming an ordering slot.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.forged_sent = 0

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) is not ClientRequest:
            return self.pass_through()
        transaction = message.transaction
        victim = ClientId(int(transaction.client) + 1)
        forged_tx = Transaction(
            tx_id=f"{transaction.tx_id}-forged{self.seed}",
            client=victim,
            transfers=transaction.transfers,
            timestamp=transaction.timestamp,
            signature=Signature(signer=int(victim), payload_digest="forged", forged=True),
        )
        forged = ClientRequest(
            transaction=forged_tx,
            client=victim,
            timestamp=message.timestamp,
            reply_to=message.reply_to,
        )
        self.forged_sent += 1
        return self.emit(
            Outbound(dst=dst, message=message),
            Outbound(dst=dst, message=forged, extra_delay=1e-4),
        )


@register_behavior("ownership-violator-client", aliases=("thief-client",))
class OwnershipViolatorClient(ClientBehavior):
    """Submit transfers from accounts the client does not own.

    Alongside each honest request, the client attempts a theft: an
    (unsigned, hence superficially plausible) transaction moving funds
    from an *adjacent* account — same shard, so the request looks
    routine, but owned by a different application client under the
    static modulo ownership assignment.  The replica-side ownership
    screen must refuse it everywhere; balance conservation and the
    honest owner's funds must be untouched.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.thefts_sent = 0

    def _stolen_source(self, source: AccountId) -> AccountId | None:
        mapper = self.mapper()
        if mapper is None:
            return None
        shard = mapper.shard_of(source)
        for candidate in (AccountId(int(source) + 1), AccountId(int(source) - 1)):
            try:
                if mapper.shard_of(candidate) == shard:
                    return candidate
            except Exception:
                # Outside the keyspace (shard boundary); try the other side.
                continue
        return None

    def outbound(self, dst: int, message: object) -> Sequence[Outbound] | None:
        if type(message) is not ClientRequest:
            return self.pass_through()
        transaction = message.transaction
        source = transaction.transfers[0].source
        stolen = self._stolen_source(source)
        if stolen is None:
            return self.pass_through()
        theft_tx = Transaction(
            tx_id=f"{transaction.tx_id}-theft{self.seed}",
            client=transaction.client,
            transfers=(
                Transfer(
                    source=stolen,
                    destination=source,
                    amount=1 + self.rng.randrange(10),
                ),
            ),
            timestamp=transaction.timestamp,
        )
        theft = ClientRequest(
            transaction=theft_tx,
            client=transaction.client,
            timestamp=message.timestamp,
            reply_to=message.reply_to,
        )
        self.thefts_sent += 1
        return self.emit(
            Outbound(dst=dst, message=message),
            Outbound(dst=dst, message=theft, extra_delay=1e-4),
        )
