#!/usr/bin/env python3
"""Perf-regression gate: re-run the bench and compare against the baseline.

Reads the committed ``BENCH_kernel.json``, re-runs the fig8 scalability
sweep with the exact configuration embedded in the baseline (clients,
duration, warmup — restricted to ``--clusters``, by default the first
two cluster counts, to keep the gate quick), and compares the *peak
simulated tps* per cluster count.  Simulated throughput is
deterministic for a given configuration and seed, so this comparison is
host-independent: on an unchanged tree the rerun reproduces the
baseline numbers exactly, and the ``--tolerance`` headroom (default
10%) only absorbs intentional small protocol shifts between PRs — a
real regression of 20% or more always trips the gate.  Kernel events/s
and wall time are re-measured too but never gate (they are
host-dependent).

Every run appends one JSON line to the trajectory file
(``BENCH_trajectory.jsonl``) so the repo accumulates a perf history
across PRs.  Exit status: 0 when every compared point holds the line,
1 on regression, 2 on configuration errors.

Usage::

    PYTHONPATH=src python tools/bench_gate.py
    PYTHONPATH=src python tools/bench_gate.py --clusters 2 --tolerance 0.05
    PYTHONPATH=src python tools/bench_gate.py --baseline other.json --no-trajectory
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # runnable from the repo root without install
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.bench.perfbench import fig8_benchmark, kernel_benchmark  # noqa: E402


def compare(
    baseline_points: dict, current_points: dict, tolerance: float
) -> tuple[list[dict], bool]:
    """Compare per-cluster peak tps; pure, unit-testable.

    Returns ``(rows, ok)``: one row per cluster count present in both
    point maps, ``ok`` false when any current peak falls more than
    ``tolerance`` below its baseline.
    """
    rows: list[dict] = []
    ok = True
    for label in sorted(set(baseline_points) & set(current_points), key=int):
        base = float(baseline_points[label]["peak_tps"])
        cur = float(current_points[label]["peak_tps"])
        floor = base * (1.0 - tolerance)
        passed = cur >= floor
        ok = ok and passed
        rows.append(
            {
                "clusters": int(label),
                "baseline_tps": base,
                "current_tps": cur,
                "floor_tps": round(floor, 1),
                "ratio": round(cur / base, 4) if base else None,
                "ok": passed,
            }
        )
    return rows, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/bench_gate.py",
        description="Fail when peak simulated tps regresses against the baseline.",
    )
    parser.add_argument(
        "--baseline", default="BENCH_kernel.json",
        help="committed perfbench report to gate against (default BENCH_kernel.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10, metavar="FRAC",
        help="allowed fractional drop below the baseline peak (default 0.10)",
    )
    parser.add_argument(
        "--clusters", type=int, nargs="*", default=None,
        help="cluster counts to re-run (default: first two from the baseline)",
    )
    parser.add_argument(
        "--trajectory", default="BENCH_trajectory.jsonl",
        help="JSONL perf-history file to append to (default BENCH_trajectory.jsonl)",
    )
    parser.add_argument(
        "--no-trajectory", action="store_true",
        help="skip appending to the trajectory file",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="process-pool size for the sweep"
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"bench_gate: unreadable baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2
    fig8 = baseline.get("fig8")
    if not isinstance(fig8, dict) or not fig8.get("points"):
        print(f"bench_gate: {args.baseline} has no fig8 points", file=sys.stderr)
        return 2
    if not 0.0 <= args.tolerance < 1.0:
        print("bench_gate: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    clusters = args.clusters if args.clusters else list(fig8["clusters"])[:2]
    missing = [c for c in clusters if str(c) not in fig8["points"]]
    if missing:
        print(f"bench_gate: baseline has no points for clusters {missing}", file=sys.stderr)
        return 2

    print(
        f"bench_gate: re-running fig8 for clusters {clusters} "
        f"(clients {fig8['clients']}, duration {fig8['duration']}s, "
        f"tolerance {args.tolerance:.0%})"
    )
    kernel = kernel_benchmark(events=50_000)
    current = fig8_benchmark(
        clusters=clusters,
        clients=fig8["clients"],
        duration=fig8["duration"],
        warmup=fig8["warmup"],
        jobs=args.jobs,
    )
    rows, ok = compare(fig8["points"], current["points"], args.tolerance)

    header = f"{'clusters':>8s} {'baseline':>11s} {'current':>11s} {'floor':>11s} {'ratio':>7s}  verdict"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['clusters']:>8d} {row['baseline_tps']:>11.1f} "
            f"{row['current_tps']:>11.1f} {row['floor_tps']:>11.1f} "
            f"{row['ratio']:>7.3f}  {'ok' if row['ok'] else 'REGRESSION'}"
        )
    print(
        f"kernel: {kernel['events_per_second']:,.0f} events/s "
        f"(informational, host-dependent); "
        f"sweep wall {current['total_wall_s']}s"
    )

    if not args.no_trajectory:
        entry = {
            "at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "baseline": args.baseline,
            "tolerance": args.tolerance,
            "clusters": clusters,
            "points": {str(row["clusters"]): row["current_tps"] for row in rows},
            "baseline_points": {
                str(row["clusters"]): row["baseline_tps"] for row in rows
            },
            "kernel_events_per_second": kernel["events_per_second"],
            "sweep_wall_s": current["total_wall_s"],
            "ok": ok,
        }
        with open(args.trajectory, "a") as handle:
            handle.write(json.dumps(entry))
            handle.write("\n")
        print(f"trajectory: appended to {args.trajectory}")

    if not ok:
        print("bench_gate: FAIL — peak tps regressed beyond tolerance", file=sys.stderr)
        return 1
    print("bench_gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
