#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file against the recorder's schema.

Checks the minimal invariants the obs-smoke CI job relies on:

* the file parses and carries a non-empty ``traceEvents`` list;
* timestamps are non-negative and non-decreasing in file order
  (the exporter writes events sorted);
* async span pairs balance — every ``"b"`` has a matching ``"e"`` for
  the same ``(cat, id)`` (stack-scoped ``B``/``E`` pairs, if ever
  emitted, must balance per track);
* phase instant events use only known phase names;
* when flow events are present (the causal layer's critical-path
  arrows), every flow id pairs exactly one ``"s"`` with one ``"f"``,
  every ``"f"``'s ``parent`` event id references an event id that
  exists in the file, and following parents never cycles.  Traces
  written before the causal layer carry no flow events and skip these
  checks entirely.

Importable (``validate(path) -> list[str]`` of problems) and runnable:
``python tools/validate_trace.py trace.json``.
"""

from __future__ import annotations

import json
import sys

try:  # single source of truth when the package is importable
    from repro.obs.phases import KNOWN_PHASES
except ImportError:  # pragma: no cover - standalone fallback
    KNOWN_PHASES = frozenset(
        {
            "submit", "enqueue", "seal", "propose", "prepared",
            "cross_start", "cross_prepared", "decided", "applied", "reply",
        }
    )


def validate(path: str) -> list[str]:
    """Return a list of schema violations (empty means valid)."""
    problems: list[str] = []
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"unreadable trace: {exc}"]

    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]

    last_ts = None
    async_balance: dict[tuple[str, str], int] = {}
    stack_depth: dict[tuple[int, int], int] = {}
    #: per flow (cat, id): [count of "s", count of "f"].
    flow_balance: dict[tuple[str, str], list[int]] = {}
    #: every event id announced by any flow event's args.
    flow_eids: set[int] = set()
    #: eid -> (file index, parent eid) for each flow "f" edge.
    flow_parents: dict[int, tuple[int, int]] = {}
    for index, event in enumerate(events):
        ph = event.get("ph")
        ts = event.get("ts")
        if ph is None or ts is None:
            problems.append(f"event {index}: missing ph/ts")
            continue
        if ts < 0:
            problems.append(f"event {index}: negative timestamp {ts}")
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {index}: timestamp {ts} decreases (prev {last_ts})"
            )
        last_ts = ts
        if ph == "b":
            key = (event.get("cat", ""), str(event.get("id")))
            async_balance[key] = async_balance.get(key, 0) + 1
        elif ph == "e":
            key = (event.get("cat", ""), str(event.get("id")))
            async_balance[key] = async_balance.get(key, 0) - 1
            if async_balance[key] < 0:
                problems.append(f"event {index}: 'e' without open 'b' for {key}")
        elif ph == "B":
            track = (event.get("pid", 0), event.get("tid", 0))
            stack_depth[track] = stack_depth.get(track, 0) + 1
        elif ph == "E":
            track = (event.get("pid", 0), event.get("tid", 0))
            stack_depth[track] = stack_depth.get(track, 0) - 1
            if stack_depth[track] < 0:
                problems.append(f"event {index}: 'E' without open 'B' on {track}")
        elif ph == "i" and event.get("cat") == "phase":
            if event.get("name") not in KNOWN_PHASES:
                problems.append(
                    f"event {index}: unknown phase name {event.get('name')!r}"
                )
        elif ph in ("s", "t", "f"):
            key = (event.get("cat", ""), str(event.get("id")))
            counts = flow_balance.setdefault(key, [0, 0])
            if ph == "s":
                counts[0] += 1
            elif ph == "f":
                counts[1] += 1
            args = event.get("args", {})
            eid = args.get("eid")
            if isinstance(eid, int):
                flow_eids.add(eid)
                if ph == "f":
                    parent = args.get("parent")
                    if isinstance(parent, int):
                        flow_parents[eid] = (index, parent)

    for key, depth in sorted(async_balance.items()):
        if depth != 0:
            problems.append(f"unbalanced async span {key}: {depth} open 'b'")
    for track, depth in sorted(stack_depth.items()):
        if depth != 0:
            problems.append(f"unbalanced B/E stack on track {track}: depth {depth}")
    if not any(e.get("ph") == "b" for e in events):
        problems.append("no span events at all")

    # Causal edge checks: only when the trace carries flow events.
    if flow_balance:
        for key, (starts, finishes) in sorted(flow_balance.items()):
            if starts != 1 or finishes != 1:
                problems.append(
                    f"flow {key}: {starts} 's' / {finishes} 'f' (want 1/1)"
                )
        for eid, (index, parent) in sorted(flow_parents.items()):
            if parent and parent not in flow_eids:
                problems.append(
                    f"event {index}: dangling causal parent {parent} (eid {eid})"
                )
        # Cycle check over parent chains.  Event ids the exporter writes
        # strictly decrease along parents, but a hand-edited or buggy
        # trace could loop; walk every chain once with memoisation.
        done: set[int] = set()
        for eid in flow_parents:
            if eid in done:
                continue
            seen: set[int] = set()
            cursor = eid
            while cursor in flow_parents and cursor not in done:
                if cursor in seen:
                    problems.append(f"causal cycle through eid {cursor}")
                    break
                seen.add(cursor)
                cursor = flow_parents[cursor][1]
            done.update(seen)
    return problems


def main(argv: list[str] | None = None) -> int:
    """Validate each path argument; non-zero exit on any violation."""
    paths = (argv if argv is not None else sys.argv[1:]) or []
    if not paths:
        print("usage: validate_trace.py TRACE.json [...]", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        problems = validate(path)
        if problems:
            failed = True
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
