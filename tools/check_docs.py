#!/usr/bin/env python3
"""Documentation checker: broken relative links in README.md and docs/.

Scans every markdown link and image reference of the form
``[text](target)`` in ``README.md`` and ``docs/*.md``.  External
targets (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#section``) are skipped; everything else must resolve to an existing
file or directory relative to the file containing the link (fragments
are stripped before resolution).  Exits non-zero listing every broken
link — the CI ``docs`` job runs this next to the docstring audit
(``tests/unit/test_docstrings.py``), and the tier-1 suite runs both via
``tests/unit/test_docs_links.py``.

Usage::

    python tools/check_docs.py [repo-root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: matches [text](target) and ![alt](target); target group excludes ')'.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: schemes (and pseudo-targets) that are not filesystem links.
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root: Path) -> list[Path]:
    """README.md plus every markdown file under docs/ (sorted, stable)."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def broken_links(root: Path) -> list[tuple[Path, int, str]]:
    """All unresolvable relative links as (file, line number, target)."""
    problems: list[tuple[Path, int, str]] = []
    for path in doc_files(root):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = (path.parent / relative).resolve()
                if not resolved.exists():
                    problems.append((path, lineno, target))
    return problems


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parents[1]
    files = doc_files(root)
    if not files:
        print(f"check_docs: no documentation files found under {root}", file=sys.stderr)
        return 1
    problems = broken_links(root)
    if problems:
        for path, lineno, target in problems:
            print(f"{path.relative_to(root)}:{lineno}: broken link -> {target}")
        print(f"check_docs: {len(problems)} broken link(s) in {len(files)} file(s)")
        return 1
    print(f"check_docs: {len(files)} file(s) checked, all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
