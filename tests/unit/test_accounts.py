"""Unit tests for the account store and shard mapper."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    InsufficientBalanceError,
    UnknownAccountError,
    ValidationError,
)
from repro.txn.accounts import AccountStore, ShardMapper


class TestShardMapper:
    def test_contiguous_ranges(self):
        mapper = ShardMapper(num_shards=4, accounts_per_shard=10)
        assert mapper.shard_of(0) == 0
        assert mapper.shard_of(9) == 0
        assert mapper.shard_of(10) == 1
        assert mapper.shard_of(39) == 3
        assert mapper.total_accounts == 40

    def test_out_of_range_account(self):
        mapper = ShardMapper(4, 10)
        with pytest.raises(UnknownAccountError):
            mapper.shard_of(40)
        with pytest.raises(UnknownAccountError):
            mapper.shard_of(-1)

    def test_accounts_in_shard(self):
        mapper = ShardMapper(3, 5)
        assert list(mapper.accounts_in_shard(1)) == [5, 6, 7, 8, 9]
        with pytest.raises(ConfigurationError):
            mapper.accounts_in_shard(3)

    def test_shards_of_multiple_accounts(self):
        mapper = ShardMapper(4, 10)
        assert mapper.shards_of([1, 2, 3]) == frozenset({0})
        assert mapper.shards_of([1, 15, 35]) == frozenset({0, 1, 3})

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ShardMapper(0, 10)
        with pytest.raises(ConfigurationError):
            ShardMapper(2, 0)


class TestAccountStore:
    def test_bootstrap_populates_shard(self):
        mapper = ShardMapper(2, 4)
        store = AccountStore.bootstrap(1, mapper, initial_balance=100)
        assert len(store) == 4
        assert store.balance(4) == 100
        assert 3 not in store
        assert store.total_balance() == 400

    def test_create_duplicate_account_rejected(self):
        store = AccountStore()
        store.create_account(1, owner=1, balance=10)
        with pytest.raises(ValidationError):
            store.create_account(1, owner=2, balance=5)

    def test_negative_initial_balance_rejected(self):
        store = AccountStore()
        with pytest.raises(ValidationError):
            store.create_account(1, owner=1, balance=-1)

    def test_deposit_and_withdraw(self):
        store = AccountStore()
        store.create_account(1, owner=7, balance=50)
        store.deposit(1, 25)
        assert store.balance(1) == 75
        store.withdraw(1, 30)
        assert store.balance(1) == 45

    def test_withdraw_checks_owner(self):
        store = AccountStore()
        store.create_account(1, owner=7, balance=50)
        with pytest.raises(ValidationError):
            store.withdraw(1, 10, requester=8)
        store.withdraw(1, 10, requester=7)
        assert store.balance(1) == 40

    def test_overdraft_rejected(self):
        store = AccountStore()
        store.create_account(1, owner=7, balance=5)
        with pytest.raises(InsufficientBalanceError):
            store.withdraw(1, 6)
        assert store.balance(1) == 5

    def test_unknown_account(self):
        store = AccountStore()
        with pytest.raises(UnknownAccountError):
            store.balance(42)

    def test_negative_amounts_rejected(self):
        store = AccountStore()
        store.create_account(1, owner=1, balance=10)
        with pytest.raises(ValidationError):
            store.deposit(1, -1)
        with pytest.raises(ValidationError):
            store.withdraw(1, -1)

    def test_snapshot_and_restore(self):
        store = AccountStore()
        store.create_account(1, owner=1, balance=10)
        store.create_account(2, owner=2, balance=20)
        snapshot = store.snapshot()
        store.deposit(1, 100)
        store.restore(snapshot)
        assert store.balance(1) == 10
        assert store.balance(2) == 20

    def test_version_increments_on_writes(self):
        store = AccountStore()
        store.create_account(1, owner=1, balance=10)
        version = store.version
        store.deposit(1, 1)
        store.withdraw(1, 1)
        assert store.version == version + 2


class TestModuloStrategy:
    def test_striped_assignment(self):
        mapper = ShardMapper(num_shards=4, accounts_per_shard=10, strategy="modulo")
        assert mapper.shard_of(0) == 0
        assert mapper.shard_of(1) == 1
        assert mapper.shard_of(4) == 0
        assert mapper.shard_of(39) == 3
        assert mapper.total_accounts == 40

    def test_accounts_in_shard_is_progression(self):
        mapper = ShardMapper(3, 5, strategy="modulo")
        accounts = mapper.accounts_in_shard(1)
        assert list(accounts) == [1, 4, 7, 10, 13]
        assert accounts.step == 3

    def test_every_account_has_exactly_one_home(self):
        mapper = ShardMapper(4, 8, strategy="modulo")
        homes = {}
        for shard in range(4):
            for account in mapper.accounts_in_shard(shard):
                assert account not in homes
                homes[account] = shard
        assert len(homes) == mapper.total_accounts
        for account, shard in homes.items():
            assert mapper.shard_of(account) == shard

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardMapper(2, 4, strategy="hash")


class TestIncrementalDigest:
    """The memoised digest must pin the naive sorted-table computation."""

    def _store(self):
        mapper = ShardMapper(2, 16)
        return AccountStore.bootstrap(0, mapper, initial_balance=100)

    def test_digest_matches_naive_after_writes(self):
        store = self._store()
        assert store.state_digest() == store.naive_state_digest()
        store.deposit(3, 7)
        store.withdraw(5, 2)
        store.deposit(3, 1)
        assert store.state_digest() == store.naive_state_digest()

    def test_digest_memoised_between_applies(self):
        store = self._store()
        first = store.state_digest()
        assert store.state_digest() == first  # no writes: cached
        store.deposit(1, 1)
        second = store.state_digest()
        assert second != first
        assert second == store.naive_state_digest()

    def test_digest_incremental_equals_full_rebuild(self):
        import random

        rng = random.Random(42)
        store = self._store()
        fresh = self._store()
        for _ in range(200):
            account = rng.randrange(16)
            amount = rng.randint(1, 5)
            if rng.random() < 0.5 and store.balance(account) >= amount:
                store.withdraw(account, amount)
                fresh.withdraw(account, amount)
            else:
                store.deposit(account, amount)
                fresh.deposit(account, amount)
            if rng.random() < 0.2:
                assert store.state_digest() == fresh.naive_state_digest()
        assert store.state_digest() == fresh.naive_state_digest()

    def test_snapshot_digest_matches_state_digest(self):
        store = self._store()
        store.deposit(2, 9)
        assert AccountStore.snapshot_digest(store.snapshot()) == store.state_digest()

    def test_restore_resets_memo(self):
        store = self._store()
        snapshot = store.snapshot()
        digest = store.state_digest()
        store.deposit(0, 50)
        store.restore(snapshot)
        assert store.state_digest() == digest
