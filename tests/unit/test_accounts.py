"""Unit tests for the account store and shard mapper."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    InsufficientBalanceError,
    UnknownAccountError,
    ValidationError,
)
from repro.txn.accounts import AccountStore, ShardMapper


class TestShardMapper:
    def test_contiguous_ranges(self):
        mapper = ShardMapper(num_shards=4, accounts_per_shard=10)
        assert mapper.shard_of(0) == 0
        assert mapper.shard_of(9) == 0
        assert mapper.shard_of(10) == 1
        assert mapper.shard_of(39) == 3
        assert mapper.total_accounts == 40

    def test_out_of_range_account(self):
        mapper = ShardMapper(4, 10)
        with pytest.raises(UnknownAccountError):
            mapper.shard_of(40)
        with pytest.raises(UnknownAccountError):
            mapper.shard_of(-1)

    def test_accounts_in_shard(self):
        mapper = ShardMapper(3, 5)
        assert list(mapper.accounts_in_shard(1)) == [5, 6, 7, 8, 9]
        with pytest.raises(ConfigurationError):
            mapper.accounts_in_shard(3)

    def test_shards_of_multiple_accounts(self):
        mapper = ShardMapper(4, 10)
        assert mapper.shards_of([1, 2, 3]) == frozenset({0})
        assert mapper.shards_of([1, 15, 35]) == frozenset({0, 1, 3})

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ShardMapper(0, 10)
        with pytest.raises(ConfigurationError):
            ShardMapper(2, 0)


class TestAccountStore:
    def test_bootstrap_populates_shard(self):
        mapper = ShardMapper(2, 4)
        store = AccountStore.bootstrap(1, mapper, initial_balance=100)
        assert len(store) == 4
        assert store.balance(4) == 100
        assert 3 not in store
        assert store.total_balance() == 400

    def test_create_duplicate_account_rejected(self):
        store = AccountStore()
        store.create_account(1, owner=1, balance=10)
        with pytest.raises(ValidationError):
            store.create_account(1, owner=2, balance=5)

    def test_negative_initial_balance_rejected(self):
        store = AccountStore()
        with pytest.raises(ValidationError):
            store.create_account(1, owner=1, balance=-1)

    def test_deposit_and_withdraw(self):
        store = AccountStore()
        store.create_account(1, owner=7, balance=50)
        store.deposit(1, 25)
        assert store.balance(1) == 75
        store.withdraw(1, 30)
        assert store.balance(1) == 45

    def test_withdraw_checks_owner(self):
        store = AccountStore()
        store.create_account(1, owner=7, balance=50)
        with pytest.raises(ValidationError):
            store.withdraw(1, 10, requester=8)
        store.withdraw(1, 10, requester=7)
        assert store.balance(1) == 40

    def test_overdraft_rejected(self):
        store = AccountStore()
        store.create_account(1, owner=7, balance=5)
        with pytest.raises(InsufficientBalanceError):
            store.withdraw(1, 6)
        assert store.balance(1) == 5

    def test_unknown_account(self):
        store = AccountStore()
        with pytest.raises(UnknownAccountError):
            store.balance(42)

    def test_negative_amounts_rejected(self):
        store = AccountStore()
        store.create_account(1, owner=1, balance=10)
        with pytest.raises(ValidationError):
            store.deposit(1, -1)
        with pytest.raises(ValidationError):
            store.withdraw(1, -1)

    def test_snapshot_and_restore(self):
        store = AccountStore()
        store.create_account(1, owner=1, balance=10)
        store.create_account(2, owner=2, balance=20)
        snapshot = store.snapshot()
        store.deposit(1, 100)
        store.restore(snapshot)
        assert store.balance(1) == 10
        assert store.balance(2) == 20

    def test_version_increments_on_writes(self):
        store = AccountStore()
        store.create_account(1, owner=1, balance=10)
        version = store.version
        store.deposit(1, 1)
        store.withdraw(1, 1)
        assert store.version == version + 2
