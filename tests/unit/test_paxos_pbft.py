"""Unit tests for the intra-shard consensus engines, driven without a network.

A :class:`helpers.FakeHost` captures outgoing messages so the tests can
hand-deliver them between engine instances and inspect the protocol flow
message by message.
"""

import pytest

from repro.consensus.log import EntryStatus, item_digest
from repro.consensus.messages import (
    PaxosAccept,
    PaxosAccepted,
    PaxosCommit,
    PBFTCommit,
    Prepare,
    PrePrepare,
)
from repro.consensus.paxos import PaxosEngine
from repro.consensus.pbft import PBFTEngine

from helpers import FakeHost, byzantine_cluster, crash_cluster, simple_transfer


def make_paxos_cluster():
    cluster = crash_cluster()
    hosts = {node: FakeHost(node, cluster) for node in cluster.node_ids}
    engines = {node: PaxosEngine(hosts[node]) for node in cluster.node_ids}
    return cluster, hosts, engines


def make_pbft_cluster():
    cluster = byzantine_cluster()
    hosts = {node: FakeHost(node, cluster) for node in cluster.node_ids}
    engines = {node: PBFTEngine(hosts[node]) for node in cluster.node_ids}
    return cluster, hosts, engines


class TestPaxosNormalCase:
    def test_only_primary_submits(self):
        cluster, hosts, engines = make_paxos_cluster()
        assert engines[0].is_primary
        assert engines[1].submit(simple_transfer()) is None
        assert engines[0].submit(simple_transfer()) == 1

    def test_full_round_decides_everywhere(self):
        cluster, hosts, engines = make_paxos_cluster()
        tx = simple_transfer()
        engines[0].submit(tx)
        [accept] = hosts[0].messages_of_type(PaxosAccept)
        # Backups accept and answer the primary.
        for backup in (1, 2):
            engines[backup].handle(accept, src=0)
            [accepted] = hosts[backup].messages_of_type(PaxosAccepted)
            engines[0].handle(accepted, src=backup)
        # The primary decided after the first accepted (f + 1 with itself).
        assert hosts[0].log.decided_slot_of(item_digest(tx)) == 1
        [commit] = hosts[0].messages_of_type(PaxosCommit)
        for backup in (1, 2):
            engines[backup].handle(commit, src=0)
            assert hosts[backup].log.decided_slot_of(item_digest(tx)) == 1

    def test_accept_from_non_primary_ignored(self):
        cluster, hosts, engines = make_paxos_cluster()
        tx = simple_transfer()
        accept = PaxosAccept(view=0, slot=1, digest=item_digest(tx), item=tx)
        engines[1].handle(accept, src=2)  # node 2 is not the primary of view 0
        assert hosts[1].log.entry(1) is None

    def test_conflicting_slot_not_voted(self):
        cluster, hosts, engines = make_paxos_cluster()
        tx1, tx2 = simple_transfer(1, 2), simple_transfer(3, 4)
        engines[1].handle(PaxosAccept(view=0, slot=1, digest=item_digest(tx1), item=tx1), src=0)
        hosts[1].sent.clear()
        engines[1].handle(PaxosAccept(view=0, slot=1, digest=item_digest(tx2), item=tx2), src=0)
        assert hosts[1].messages_of_type(PaxosAccepted) == []

    def test_pipelining_multiple_slots(self):
        cluster, hosts, engines = make_paxos_cluster()
        txs = [simple_transfer(i, i + 1) for i in range(1, 6)]
        for tx in txs:
            engines[0].submit(tx)
        accepts = hosts[0].messages_of_type(PaxosAccept)
        assert [accept.slot for accept in accepts] == [1, 2, 3, 4, 5]


class TestPBFTNormalCase:
    def test_three_phase_commit(self):
        cluster, hosts, engines = make_pbft_cluster()
        tx = simple_transfer()
        engines[0].submit(tx)
        [pre_prepare] = hosts[0].messages_of_type(PrePrepare)
        # Backups prepare.
        for backup in (1, 2, 3):
            engines[backup].handle(pre_prepare, src=0)
        prepares = {node: hosts[node].messages_of_type(Prepare) for node in (1, 2, 3)}
        assert all(len(messages) == 1 for messages in prepares.values())
        # Deliver every prepare to every engine.
        for sender, messages in prepares.items():
            for node, engine in engines.items():
                if node != sender:
                    engine.handle(messages[0], src=sender)
        # All replicas reach the commit phase.
        commits = {node: hosts[node].messages_of_type(PBFTCommit) for node in engines}
        assert all(len(messages) == 1 for messages in commits.values())
        for sender, messages in commits.items():
            for node, engine in engines.items():
                if node != sender:
                    engine.handle(messages[0], src=sender)
        for node, host in hosts.items():
            assert host.log.decided_slot_of(item_digest(tx)) == 1
            assert host.decide_notifications >= 1

    def test_pre_prepare_from_impostor_ignored(self):
        cluster, hosts, engines = make_pbft_cluster()
        tx = simple_transfer()
        fake = PrePrepare(view=0, slot=1, digest=item_digest(tx), item=tx)
        engines[1].handle(fake, src=3)
        assert hosts[1].log.entry(1) is None

    def test_quorum_requires_2f_plus_1(self):
        cluster, hosts, engines = make_pbft_cluster()
        tx = simple_transfer()
        engines[0].submit(tx)
        [pre_prepare] = hosts[0].messages_of_type(PrePrepare)
        engines[1].handle(pre_prepare, src=0)
        # Only one prepare delivered to node 1: not enough for the commit phase.
        engines[1].handle(Prepare(view=0, slot=1, digest=item_digest(tx), node=2), src=2)
        assert hosts[1].log.decided_slot_of(item_digest(tx)) is None
