"""Unit tests for the causal analyzer, validator edge checks, report CSV,
and the bench gate's comparison logic."""

import json
import subprocess
import sys

import pytest

from repro.obs.causal import (
    critical_paths,
    critpath_columns,
    render_critical_table,
    render_straggler_table,
    straggler_summary,
    summarize_edge_records,
    summarize_paths,
)
from repro.obs.export import chrome_trace_events, jsonl_rows, write_chrome_trace
from repro.obs.recorder import FlightRecorder, TraceSpec


# ----------------------------------------------------------------------
# synthetic graph fixtures
# ----------------------------------------------------------------------
def recorded_chain():
    """One tx through submit -> send -> recv -> send -> recv -> reply."""
    recorder = FlightRecorder(TraceSpec(gauges=False))
    request, reply = object(), object()
    recorder.slot_open(0.0, 0, 0, 0)                      # keep exports span-bearing
    recorder.slot_close(0.006, 0, 0)
    recorder.submit(0.0, "t1", 100, cross=False)          # eid 1, opens ctx
    recorder.wire_send(0.001, 100, 0, request)            # eid 2 <- 1
    recorder.clear_context()
    recorder.begin_dispatch(0.003, request, 100, 0)       # eid 3 <- 2
    recorder.phase(0.003, "t1", "decided", 0)             # eid 4 <- 3 (leaf)
    recorder.wire_send(0.004, 0, 100, reply)              # eid 5 <- 3
    recorder.clear_context()
    recorder.begin_dispatch(0.006, reply, 0, 100)         # eid 6 <- 5
    recorder.phase(0.006, "t1", "reply", 100)             # eid 7 <- 6
    recorder.clear_context()
    return recorder


class TestCriticalPaths:
    def test_complete_chain_reconstructs(self):
        recorder = recorded_chain()
        paths = critical_paths(
            recorder.events, recorder.event_meta, recorder.causal, set()
        )
        assert len(paths) == 1
        path = paths[0]
        assert path.complete
        assert path.total == 0.006 - 0.0
        kinds = [edge.kind for edge in path.edges]
        assert kinds == ["send", "recv", "send", "recv", "phase"]
        # Contiguity: shared nodes carry identical eids and timestamps.
        for first, second in zip(path.edges, path.edges[1:]):
            assert first.dst_eid == second.src_eid
            assert first.t1 == second.t0
        assert path.edges[0].src_eid == 1  # rooted at the submit event

    def test_clipped_chain_gets_wait_edge(self):
        recorder = FlightRecorder(TraceSpec(gauges=False))
        request, reply = object(), object()
        recorder.submit(0.0, "t1", 100, cross=True)
        recorder.clear_context()
        # The reply chain starts from a contextless dispatch (e.g. a
        # timer-driven resend): its send has parent 0.
        recorder.wire_send(0.004, 0, 100, reply)
        recorder.begin_dispatch(0.006, reply, 0, 100)
        recorder.phase(0.006, "t1", "reply", 100)
        recorder.clear_context()
        del request
        paths = critical_paths(
            recorder.events, recorder.event_meta, recorder.causal, {"t1"}
        )
        assert len(paths) == 1
        path = paths[0]
        assert not path.complete
        assert path.cross
        assert path.edges[0].kind == "wait"
        assert path.edges[0].label == "wait"
        assert path.total == 0.006
        # The wait edge still makes the chain telescope exactly.
        assert path.edges[0].t0 == 0.0 and path.edges[0].t1 == 0.004

    def test_tx_without_reply_or_submit_is_excluded(self):
        recorder = FlightRecorder(TraceSpec(gauges=False))
        recorder.submit(0.0, "no-reply", 100, cross=False)
        recorder.clear_context()
        recorder.phase(0.001, "no-submit", "reply", 100)
        paths = critical_paths(
            recorder.events, recorder.event_meta, recorder.causal, set()
        )
        assert paths == ()

    def test_no_causal_meta_returns_empty(self):
        assert critical_paths([(0.0, "t", "submit", 1)], [], [], set()) == ()


class TestSummaries:
    def test_summarize_paths_shares_sum_to_one(self):
        recorder = recorded_chain()
        paths = critical_paths(
            recorder.events, recorder.event_meta, recorder.causal, set()
        )
        summary = summarize_paths(paths)
        assert summary.txs == 1 and summary.complete == 1
        share = sum(entry.share for entry in summary.intra)
        assert share == pytest.approx(1.0)
        assert summary.cross == ()
        assert 0.0 < summary.wire_share < 1.0
        assert summary.wait_share == 0.0
        table = render_critical_table(summary)
        assert "recv:" in table and "1 critical paths (1 complete)" in table

    def test_summarize_edge_records_scopes_and_waits(self):
        records = [
            ("a", False, "recv", "recv:X", 0.002),
            ("a", False, "wait", "wait:wait", 0.001),
            ("b", True, "recv", "recv:Y", 0.004),
        ]
        summary = summarize_edge_records(records, txs=2, complete=1)
        assert summary.wait_share == pytest.approx(0.001 / 0.007)
        assert summary.intra_avg_ms == pytest.approx(3.0)
        assert summary.cross_avg_ms == pytest.approx(4.0)
        columns = critpath_columns(summary)
        assert columns["critpath_txs"] == 2
        assert columns["critpath_complete"] == 1
        assert set(columns) == {
            "critpath_txs", "critpath_complete", "critpath_hops_avg",
            "critpath_wire_share", "critpath_wait_share",
            "critpath_intra_avg_ms", "critpath_cross_avg_ms",
        }

    def test_straggler_summary_sorts_worst_first(self):
        rows = [
            (0, "accept", ("k1",), 2, 0.5, 0.001),
            (0, "accept", ("k2",), 2, 0.6, 0.003),
            (0, "accept", ("k3",), 3, 0.7, 0.0005),
        ]
        stats = straggler_summary(rows)
        assert [entry.pid for entry in stats] == [2, 3]
        assert stats[0].count == 2
        assert stats[0].avg_lag_ms == pytest.approx(2.0)
        assert stats[0].max_lag_ms == pytest.approx(3.0)
        table = render_straggler_table(stats)
        assert "accept" in table
        assert "(no deciding votes recorded)" in render_straggler_table(())


# ----------------------------------------------------------------------
# quorum-vote recording semantics
# ----------------------------------------------------------------------
class TestQuorumVotes:
    def test_deciding_vote_closes_key_and_dedups(self):
        recorder = FlightRecorder(TraceSpec(gauges=False))
        recorder.quorum_vote(0.1, 0, "accept", ("k",), 0, False)
        recorder.quorum_vote(0.1, 0, "accept", ("k",), 0, False)  # dup voter
        recorder.quorum_vote(0.2, 0, "accept", ("k",), 1, False)
        recorder.quorum_vote(0.3, 0, "accept", ("k",), 2, True)   # deciding
        recorder.quorum_vote(0.4, 0, "accept", ("k",), 3, True)   # late: dropped
        report = recorder.finalize(_FakeSystem(), end_time=1.0)
        assert len(report.deciding) == 1
        pid, kind, key, voter, t, lag = report.deciding[0]
        assert (pid, kind, key, voter, t) == (0, "accept", ("k",), 2, 0.3)
        assert lag == pytest.approx(0.3 - 0.2)  # median of 0.1/0.2/0.3

    def test_undecided_quorums_are_not_reported(self):
        recorder = FlightRecorder(TraceSpec(gauges=False))
        recorder.quorum_vote(0.1, 0, "accept", ("k",), 0, False)
        report = recorder.finalize(_FakeSystem(), end_time=1.0)
        assert report.deciding == ()


class _FakeSystem:
    class sim:
        now = 0.0

    @staticmethod
    def processes():
        return []


# ----------------------------------------------------------------------
# exporters: flow events + jsonl rows
# ----------------------------------------------------------------------
def _chain_report():
    return recorded_chain().finalize(_FakeSystem(), end_time=0.01)


class TestFlowExport:
    def test_flow_pairs_are_emitted_and_self_contained(self):
        events = chrome_trace_events(_chain_report())
        starts = [e for e in events if e["ph"] == "s" and e["cat"] == "flow"]
        finishes = [e for e in events if e["ph"] == "f" and e["cat"] == "flow"]
        # phase edges are skipped: 4 wire hops -> 4 arrows.
        assert len(starts) == len(finishes) == 4
        eids = {e["args"]["eid"] for e in starts} | {e["args"]["eid"] for e in finishes}
        for finish in finishes:
            assert finish["bp"] == "e"
            assert finish["args"]["parent"] in eids
            assert finish["args"]["dur_ms"] >= 0.0
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_deciding_instants_exported(self):
        recorder = recorded_chain()
        recorder.quorum_vote(0.003, 0, "accept", (0, 1, "d"), 2, True)
        report = recorder.finalize(_FakeSystem(), end_time=0.01)
        events = chrome_trace_events(report)
        deciding = [e for e in events if e.get("cat") == "deciding"]
        assert len(deciding) == 1
        assert deciding[0]["name"] == "deciding:accept"
        assert deciding[0]["args"]["voter"] == 2

    def test_jsonl_rows_carry_causal_graph(self):
        rows = list(jsonl_rows(_chain_report()))
        phase_rows = [row for row in rows if row["type"] == "phase"]
        assert all("eid" in row and "parent" in row for row in phase_rows)
        causal_rows = [row for row in rows if row["type"] == "causal"]
        assert {row["kind"] for row in causal_rows} == {"send", "recv"}
        # Round-trip: the JSONL graph rebuilds the identical paths.
        events = [(r["t"], r["tx"], r["phase"], r["pid"]) for r in phase_rows]
        meta = [(r["eid"], r["parent"]) for r in phase_rows]
        causal = [
            (r["eid"], r["parent"], r["t"], r["kind"], r["pid"], r["label"])
            for r in causal_rows
        ]
        rebuilt = critical_paths(events, meta, causal, set())
        assert rebuilt == _chain_report().critical_paths()


# ----------------------------------------------------------------------
# validator: flow edge checks
# ----------------------------------------------------------------------
def load_validator():
    sys.path.insert(0, "tools")
    try:
        from validate_trace import validate
    finally:
        sys.path.pop(0)
    return validate


def _write_trace(tmp_path, extra_events=(), mutate=None):
    report = _chain_report()
    path = tmp_path / "trace.json"
    write_chrome_trace(report, str(path))
    if extra_events or mutate:
        payload = json.loads(path.read_text())
        if mutate:
            mutate(payload)
        payload["traceEvents"].extend(extra_events)
        path.write_text(json.dumps(payload))
    return str(path)


class TestValidatorEdges:
    def test_flow_enabled_trace_validates(self, tmp_path):
        validate = load_validator()
        assert validate(_write_trace(tmp_path)) == []

    def test_trace_without_flows_skips_edge_checks(self, tmp_path):
        validate = load_validator()

        def strip_flows(payload):
            payload["traceEvents"] = [
                e for e in payload["traceEvents"]
                if e.get("cat") not in ("flow", "deciding")
            ]

        assert validate(_write_trace(tmp_path, mutate=strip_flows)) == []

    def test_dangling_parent_is_flagged(self, tmp_path):
        validate = load_validator()

        def dangle(payload):
            for event in payload["traceEvents"]:
                if event.get("ph") == "f":
                    event["args"]["parent"] = 999_999
                    break

        problems = validate(_write_trace(tmp_path, mutate=dangle))
        assert any("dangling causal parent" in p for p in problems)

    def test_cycle_is_flagged(self, tmp_path):
        validate = load_validator()

        def loop(payload):
            flows = [e for e in payload["traceEvents"] if e.get("ph") == "f"]
            a, b = flows[0], flows[1]
            a["args"]["parent"] = b["args"]["eid"]
            b["args"]["parent"] = a["args"]["eid"]

        problems = validate(_write_trace(tmp_path, mutate=loop))
        assert any("causal cycle" in p for p in problems)

    def test_unbalanced_flow_is_flagged(self, tmp_path):
        validate = load_validator()
        orphan = {
            "ph": "s", "cat": "flow", "name": "critpath:x", "id": "f999",
            "pid": -1, "tid": 0, "ts": 999_999, "args": {"eid": 50, "tx": "t"},
        }
        problems = validate(_write_trace(tmp_path, extra_events=[orphan]))
        assert any("flow" in p and "1 's' / 0 'f'" in p for p in problems)


# ----------------------------------------------------------------------
# report --format csv
# ----------------------------------------------------------------------
class TestReportCsv:
    def run_report(self, tmp_path, fmt, capsys, jsonl=False):
        from repro.obs.export import write_jsonl
        from repro.obs.report import main

        recorder = recorded_chain()
        recorder.quorum_vote(0.003, 0, "accept", (0, 1, "d"), 2, True)
        report = recorder.finalize(_FakeSystem(), end_time=0.01)
        path = tmp_path / ("trace.jsonl" if jsonl else "trace.json")
        if jsonl:
            write_jsonl(report, str(path))
        else:
            write_chrome_trace(report, str(path))
        argv = [str(path)] + (["--format", fmt] if fmt else [])
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_csv_has_all_sections(self, tmp_path, capsys):
        out = self.run_report(tmp_path, "csv", capsys)
        lines = out.strip().splitlines()
        assert lines[0] == "section,scope,name,count,avg_ms,p50_ms,p95_ms,share"
        sections = {line.split(",")[0] for line in lines[1:]}
        assert sections == {"phase", "critpath", "straggler"}

    def test_csv_from_jsonl_matches_chrome_critpath(self, tmp_path, capsys):
        chrome = self.run_report(tmp_path, "csv", capsys)
        jsonl = self.run_report(tmp_path, "csv", capsys, jsonl=True)

        def pick(text):
            # Chrome exports skip zero-duration phase edges (no flow
            # arrow to draw); compare the wire edges both paths carry.
            return sorted(
                line for line in text.splitlines()
                if line.startswith("critpath") and ",phase:" not in line
            )

        assert pick(chrome) == pick(jsonl)

    def test_table_format_includes_critical_and_straggler(self, tmp_path, capsys):
        out = self.run_report(tmp_path, None, capsys)
        assert "critical edge" in out
        assert "deciding" in out


# ----------------------------------------------------------------------
# bench gate
# ----------------------------------------------------------------------
def load_bench_gate():
    sys.path.insert(0, "tools")
    try:
        import bench_gate
    finally:
        sys.path.pop(0)
    return bench_gate


class TestBenchGate:
    def test_compare_passes_within_tolerance(self):
        gate = load_bench_gate()
        rows, ok = gate.compare(
            {"2": {"peak_tps": 100.0}, "3": {"peak_tps": 200.0}},
            {"2": {"peak_tps": 95.0}, "3": {"peak_tps": 210.0}},
            tolerance=0.10,
        )
        assert ok
        assert [row["clusters"] for row in rows] == [2, 3]
        assert rows[0]["ratio"] == pytest.approx(0.95)

    def test_compare_fails_beyond_tolerance(self):
        gate = load_bench_gate()
        rows, ok = gate.compare(
            {"2": {"peak_tps": 100.0}}, {"2": {"peak_tps": 79.9}}, tolerance=0.20
        )
        assert not ok
        assert rows[0]["ok"] is False

    def test_compare_ignores_clusters_missing_from_either_side(self):
        gate = load_bench_gate()
        rows, ok = gate.compare(
            {"2": {"peak_tps": 100.0}, "4": {"peak_tps": 1.0}},
            {"2": {"peak_tps": 100.0}, "5": {"peak_tps": 1.0}},
            tolerance=0.1,
        )
        assert ok and len(rows) == 1

    def _gate_cmd(self, baseline, trajectory):
        return [
            sys.executable, "tools/bench_gate.py",
            "--baseline", str(baseline),
            "--trajectory", str(trajectory),
        ]

    def _tiny_baseline(self, tmp_path, inflate=1.0):
        """Measure a tiny fig8 point once, then bake it into a baseline."""
        from repro.bench.perfbench import fig8_benchmark

        fig8 = fig8_benchmark(
            clusters=(2,), clients=(4,), duration=0.05, warmup=0.01
        )
        for point in fig8["points"].values():
            point["peak_tps"] = round(point["peak_tps"] * inflate, 1)
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "sharper-perfbench/1", "fig8": fig8}))
        return path

    def test_gate_passes_on_unmodified_tree(self, tmp_path):
        baseline = self._tiny_baseline(tmp_path)
        trajectory = tmp_path / "traj.jsonl"
        proc = subprocess.run(
            self._gate_cmd(baseline, trajectory),
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ratio" in proc.stdout and "1.000" in proc.stdout
        entry = json.loads(trajectory.read_text().strip())
        assert entry["ok"] is True

    def test_gate_fails_on_synthetic_regression(self, tmp_path):
        baseline = self._tiny_baseline(tmp_path, inflate=1.25)
        trajectory = tmp_path / "traj.jsonl"
        proc = subprocess.run(
            self._gate_cmd(baseline, trajectory),
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "REGRESSION" in proc.stdout
        entry = json.loads(trajectory.read_text().strip())
        assert entry["ok"] is False

    def test_gate_rejects_bad_baseline(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        proc = subprocess.run(
            self._gate_cmd(bad, tmp_path / "traj.jsonl"),
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 2
