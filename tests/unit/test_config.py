"""Unit tests for the deployment configuration helpers."""

import pytest

from repro.common.config import (
    ClusterConfig,
    NodeGroup,
    PerformanceModel,
    ProtocolTuning,
    SystemConfig,
    plan_clusters,
    plan_clusters_grouped,
)
from repro.common.errors import ConfigurationError
from repro.common.types import ClusterId, FaultModel, NodeId


class TestClusterConfig:
    def test_minimum_size_enforced(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(ClusterId(0), (NodeId(0), NodeId(1)), FaultModel.CRASH, f=1)
        with pytest.raises(ConfigurationError):
            ClusterConfig(ClusterId(0), tuple(NodeId(i) for i in range(3)), FaultModel.BYZANTINE, f=1)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(ClusterId(0), (NodeId(0), NodeId(0), NodeId(1)), FaultModel.CRASH, f=1)

    def test_quorums(self):
        crash = ClusterConfig(ClusterId(0), tuple(NodeId(i) for i in range(3)), FaultModel.CRASH, f=1)
        byz = ClusterConfig(ClusterId(1), tuple(NodeId(i + 3) for i in range(4)), FaultModel.BYZANTINE, f=1)
        assert crash.intra_quorum == 2 and crash.cross_quorum == 2
        assert byz.intra_quorum == 3 and byz.cross_quorum == 3

    def test_primary_rotation(self):
        cluster = ClusterConfig(ClusterId(0), tuple(NodeId(i) for i in range(3)), FaultModel.CRASH, f=1)
        assert cluster.primary == 0
        assert cluster.primary_for_view(1) == 1
        assert cluster.primary_for_view(3) == 0


class TestSystemConfig:
    def test_build_paper_crash_setup(self):
        # Figure 6: 12 crash-only nodes, four clusters of three.
        config = SystemConfig.build(4, FaultModel.CRASH)
        assert config.num_clusters == 4
        assert config.num_nodes == 12
        assert all(cluster.size == 3 for cluster in config.clusters)

    def test_build_paper_byzantine_setup(self):
        # Figure 7: 16 Byzantine nodes, four clusters of four.
        config = SystemConfig.build(4, FaultModel.BYZANTINE)
        assert config.num_nodes == 16
        assert all(cluster.size == 4 for cluster in config.clusters)

    def test_node_ids_are_disjoint_and_complete(self):
        config = SystemConfig.build(3, FaultModel.BYZANTINE)
        assert sorted(config.all_node_ids) == list(range(12))

    def test_cluster_lookup(self):
        config = SystemConfig.build(2, FaultModel.CRASH)
        assert config.cluster(ClusterId(1)).cluster_id == 1
        assert config.cluster_of_node(NodeId(4)).cluster_id == 1
        with pytest.raises(ConfigurationError):
            config.cluster(ClusterId(9))
        with pytest.raises(ConfigurationError):
            config.cluster_of_node(NodeId(99))

    def test_invalid_cluster_count(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.build(0, FaultModel.CRASH)


class TestClusterPlanning:
    def test_plain_formula(self):
        assert plan_clusters(12, 1, FaultModel.CRASH) == 4
        assert plan_clusters(16, 1, FaultModel.BYZANTINE) == 4
        assert plan_clusters(23, 3, FaultModel.BYZANTINE) == 2

    def test_too_few_nodes(self):
        with pytest.raises(ConfigurationError):
            plan_clusters(2, 1, FaultModel.CRASH)

    def test_paper_grouped_example(self):
        # Section 3.4: n=23, f=3 with groups A (n=7, f=2) and B (n=16, f=1)
        # yields 1 + 4 = 5 clusters instead of 2.
        groups = [NodeGroup("A", 7, 2), NodeGroup("B", 16, 1)]
        plan = plan_clusters_grouped(groups, FaultModel.BYZANTINE)
        assert plan == {"A": 1, "B": 4}
        assert sum(plan.values()) == 5

    def test_grouped_requires_some_capacity(self):
        with pytest.raises(ConfigurationError):
            plan_clusters_grouped([NodeGroup("tiny", 2, 1)], FaultModel.BYZANTINE)


class TestPerformanceModel:
    def test_scaled_returns_new_instance(self):
        base = PerformanceModel()
        doubled = base.scaled(2.0)
        assert doubled.message_cpu == pytest.approx(2 * base.message_cpu)
        assert doubled.intra_cluster_latency == base.intra_cluster_latency
        assert base.message_cpu != doubled.message_cpu

    def test_tuning_defaults(self):
        tuning = ProtocolTuning()
        assert tuning.use_super_primary is True
        # batch_size 1 keeps the batching pipeline disarmed (the paper's
        # one-transaction-per-block default); pipeline_depth only binds
        # once batching is armed.
        assert tuning.batch_size == 1
        assert tuning.pipeline_depth == 32
