"""Unit tests for table-driven message dispatch (engines and processes)."""

import pytest

from helpers import FakeHost, byzantine_cluster, crash_cluster, simple_transfer

from repro.baselines.single_group import FaBEngine, FastPaxosEngine
from repro.common.config import PerformanceModel
from repro.consensus.log import item_digest
from repro.consensus.messages import (
    NewView,
    PaxosAccept,
    PBFTCommit,
    Prepare,
    PrePrepare,
    ViewChange,
)
from repro.consensus.paxos import PaxosEngine
from repro.consensus.pbft import PBFTEngine
from repro.sim.costs import CostModel
from repro.sim.network import Network, UniformLatencyModel
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class TestEngineHandlerTables:
    def test_paxos_table_covers_its_message_types(self):
        engine = PaxosEngine(FakeHost(0, crash_cluster()))
        assert set(engine.handlers()) == set(PaxosEngine.HANDLERS)
        assert PaxosAccept in engine.handlers()

    def test_pbft_table_covers_its_message_types(self):
        engine = PBFTEngine(FakeHost(0, byzantine_cluster()))
        assert set(engine.handlers()) == {
            PrePrepare,
            Prepare,
            PBFTCommit,
            ViewChange,
            NewView,
        }

    def test_unknown_message_is_not_consumed(self):
        engine = PaxosEngine(FakeHost(0, crash_cluster()))
        assert engine.handle("not a protocol message", src=1) is False
        assert engine.handle(object(), src=1) is False

    def test_known_message_is_consumed(self):
        engine = PaxosEngine(FakeHost(1, crash_cluster()))
        tx = simple_transfer()
        accept = PaxosAccept(view=0, slot=1, digest=item_digest(tx), item=tx)
        assert engine.handle(accept, src=0) is True
        assert engine.host.log.entry(1) is not None

    def test_subclass_overrides_are_bound_into_the_table(self):
        """FastPaxosEngine overrides _on_accept; the table must pick it up."""
        fast = FastPaxosEngine(FakeHost(0, crash_cluster(size=4)))
        assert fast.handlers()[PaxosAccept].__func__ is FastPaxosEngine._on_accept
        fab = FaBEngine(FakeHost(0, byzantine_cluster(size=6)))
        assert fab.handlers()[PrePrepare].__func__ is PBFTEngine._on_pre_prepare


class _TableProcess(Process):
    def __init__(self, pid, sim, network, cost_model):
        super().__init__(pid, sim, network, cost_model)
        self.seen = []
        self.register_handler(str, self._on_text)

    def _on_text(self, message, src):
        self.seen.append((message, src))


class TestProcessDispatch:
    def _build(self):
        sim = Simulator()
        network = Network(sim, UniformLatencyModel(0.0))
        cost = CostModel(PerformanceModel(message_cpu=0.0, latency_jitter=0.0))
        return sim, network, _TableProcess(0, sim, network, cost), _TableProcess(1, sim, network, cost)

    def test_registered_type_is_dispatched(self):
        sim, network, a, b = self._build()
        network.send(0, 1, "hello")
        sim.run()
        assert b.seen == [("hello", 0)]

    def test_unregistered_type_is_dropped_silently(self):
        sim, network, a, b = self._build()
        network.send(0, 1, 12345)  # int: no handler registered
        sim.run()
        assert b.seen == []
        assert b.messages_received == 1

    def test_register_handler_replaces_previous_handler(self):
        sim, network, a, b = self._build()
        replacement = []
        b.register_handler(str, lambda message, src: replacement.append(message))
        network.send(0, 1, "x")
        sim.run()
        assert b.seen == []
        assert replacement == ["x"]

    def test_dispatch_is_by_exact_type_not_isinstance(self):
        class FancyStr(str):
            pass

        sim, network, a, b = self._build()
        network.send(0, 1, FancyStr("sub"))
        sim.run()
        assert b.seen == []  # subclasses do not match the base entry
