"""Cross-shard termination rounds (repro.recovery.CrossShardTerminator).

Reconstructs the residual atomicity window deterministically: a
cross-shard commit quorum forms in a remote involved cluster just before
the local cluster's view change, so the new local primary sees only a
*pending* slot.  The termination round must adopt the remote decision
(instead of racing it with a no-op fill), and must no-op-fill only when
no decision evidence exists anywhere.
"""

from repro.api import DeploymentSpec
from repro.common.types import ClusterId, FaultModel
from repro.consensus.log import EntryStatus, item_digest
from repro.consensus.messages import ClientRequest
from repro.core.system import SharPerSystem
from repro.txn.transaction import Transaction
from repro.txn.workload import WorkloadConfig


def build_system(fault_model=FaultModel.BYZANTINE):
    config = DeploymentSpec(
        system="sharper", fault_model=fault_model, num_clusters=2
    ).resolve(seed=9)
    workload = WorkloadConfig(cross_shard_fraction=0.5, accounts_per_shard=64)
    return SharPerSystem(config, workload, seed=9)


def cross_request(system) -> ClientRequest:
    # Accounts 0 (shard 0) and 64 (shard 1) under accounts_per_shard=64.
    transaction = Transaction.transfer(
        client=system.owner_of(0), source=0, destination=64, amount=1
    )
    return ClientRequest(transaction=transaction, client=transaction.client, timestamp=0.0)


class TestTerminationAdoption:
    def test_new_primary_adopts_remote_commit_quorum(self):
        system = build_system()
        request = cross_request(system)
        digest = item_digest(request)
        positions = {ClusterId(0): 1, ClusterId(1): 1}

        # The commit quorum landed everywhere in cluster 1 ...
        for replica in system.replicas_of(ClusterId(1)):
            replica.log.decide(
                1, digest, request, positions=positions, proposer=ClusterId(0)
            )
            replica.after_decide()
        # ... but cluster 0 only ever accepted the proposal.
        for replica in system.replicas_of(ClusterId(0)):
            replica.log.record_pending(1, digest, request, proposer=ClusterId(0))

        primary = system.primary_of(ClusterId(0))
        primary.terminator.begin(1, request, view=0)
        system.sim.run(until=0.5)

        for replica in system.replicas_of(ClusterId(0)):
            entry = replica.log.entry(1)
            assert entry is not None and entry.status is EntryStatus.APPLIED
            assert entry.positions == positions
            assert replica.chain.contains_tx(request.transaction.tx_id)
        assert primary.terminator.adopted == 1
        assert primary.terminator.noop_filled == 0
        # The adopted decision is the same block cluster 1 committed.
        block_0 = system.primary_of(ClusterId(0)).chain.block_at(1)
        block_1 = system.primary_of(ClusterId(1)).chain.block_at(1)
        assert block_0.block_hash == block_1.block_hash
        report = system.safety_audit()
        assert report.ok, report.problems

    def test_crash_model_adopts_from_a_single_reply(self):
        system = build_system(FaultModel.CRASH)
        request = cross_request(system)
        digest = item_digest(request)
        positions = {ClusterId(0): 1, ClusterId(1): 1}
        for replica in system.replicas_of(ClusterId(1)):
            replica.log.decide(
                1, digest, request, positions=positions, proposer=ClusterId(0)
            )
            replica.after_decide()
        primary = system.primary_of(ClusterId(0))
        primary.log.record_pending(1, digest, request, proposer=ClusterId(0))
        primary.terminator.begin(1, request, view=0)
        system.sim.run(until=0.5)
        assert primary.terminator.adopted == 1
        entry = primary.log.entry(1)
        assert entry is not None and entry.positions == positions


class TestTerminationAfterCompaction:
    def test_adopts_a_decision_already_checkpointed_away(self):
        """Helpers answer from the ledger once the log entry is compacted.

        The remote cluster decided, applied, and garbage-collected the
        instance (its digest index no longer knows it); the retained
        block's position vector and the transaction index must still
        terminate the asking primary's slot with the real decision, not
        a no-op.
        """
        system = build_system()
        request = cross_request(system)
        digest = item_digest(request)
        positions = {ClusterId(0): 1, ClusterId(1): 1}
        for replica in system.replicas_of(ClusterId(1)):
            replica.log.decide(
                1, digest, request, positions=positions, proposer=ClusterId(0)
            )
            replica.after_decide()
            replica.log.truncate(1)
            assert replica.log.decided_slot_of(digest) is None
        primary = system.primary_of(ClusterId(0))
        primary.log.record_pending(1, digest, request, proposer=ClusterId(0))
        primary.terminator.begin(1, request, view=0)
        system.sim.run(until=0.5)
        assert primary.terminator.adopted == 1
        assert primary.terminator.noop_filled == 0
        entry = primary.log.entry(1)
        assert entry is not None and entry.positions == positions
        assert primary.chain.contains_tx(request.transaction.tx_id)


class TestTerminationNoopFill:
    def test_no_evidence_falls_back_to_noop_fill(self):
        system = build_system()
        request = cross_request(system)
        digest = item_digest(request)
        # Nobody decided: the instance died with the old primary, and
        # the cluster has since installed view 1 (as the real flow does
        # before the terminator runs — the no-op must supersede the
        # stale pending digest, which only a higher view may do).
        for replica in system.replicas_of(ClusterId(0)):
            replica.log.record_pending(1, digest, request, proposer=ClusterId(0))
            replica.intra.view = 1

        primary = system.replicas_of(ClusterId(0))[1]  # primary of view 1
        assert primary.is_cluster_primary
        primary.terminator.begin(1, request, view=1)
        system.sim.run(until=0.5)

        assert primary.terminator.adopted == 0
        assert primary.terminator.noop_filled == 1
        # The no-op went through ordinary intra-shard consensus, so the
        # whole cluster filled the slot identically.
        for replica in system.replicas_of(ClusterId(0)):
            entry = replica.log.entry(1)
            assert entry is not None and entry.status is EntryStatus.APPLIED
            assert entry.is_noop
        report = system.safety_audit()
        assert report.ok, report.problems

    def test_commit_landing_mid_round_resolves_in_flight(self):
        system = build_system()
        request = cross_request(system)
        digest = item_digest(request)
        positions = {ClusterId(0): 1, ClusterId(1): 1}
        primary = system.primary_of(ClusterId(0))
        primary.log.record_pending(1, digest, request, proposer=ClusterId(0))
        primary.terminator.begin(1, request, view=0)
        # The late commit arrives before any reply can form a quorum.
        primary.log.decide(1, digest, request, positions=positions, proposer=ClusterId(0))
        primary.after_decide()
        system.sim.run(until=0.5)
        assert primary.terminator.noop_filled == 0
        assert primary.terminator.resolved_in_flight + primary.terminator.adopted >= 1
        entry = primary.log.entry(1)
        assert entry is not None and entry.status is EntryStatus.APPLIED
        assert not entry.is_noop
