"""Unit tests for the adversary behaviour library and its registry."""

import pytest

from repro.adversary import (
    AdversaryBehavior,
    DelayAttacker,
    EquivocatingPrimary,
    SelectiveSilence,
    SilentPrimary,
    TamperedDigest,
    VoteWithholder,
    available_behaviors,
    get_behavior,
    make_behavior,
    register_behavior,
)
from repro.adversary.behaviors import _BEHAVIORS
from repro.common.errors import ConfigurationError, RegistrationError
from repro.consensus.log import Noop, item_digest
from repro.consensus.messages import PBFTCommit, Prepare, PrePrepare

from helpers import byzantine_cluster


class FakeReplica:
    """Just enough of a replica for behaviours to introspect on attach."""

    def __init__(self, pid=0, cluster=None, view_change_timeout=0.5):
        self.pid = pid
        self.cluster = cluster or byzantine_cluster()
        self.view_change_timeout = view_change_timeout


class TestRegistry:
    def test_builtins_are_registered(self):
        names = set(available_behaviors())
        assert {
            "delay-attacker",
            "equivocating-primary",
            "selective-silence",
            "silent-primary",
            "tampered-digest",
            "vote-withholder",
        } <= names

    def test_aliases_resolve_to_the_same_class(self):
        assert get_behavior("equivocator") is get_behavior("equivocating-primary")
        assert get_behavior("silent") is get_behavior("silent-primary")

    def test_available_lists_canonical_names_only(self):
        assert "equivocator" not in available_behaviors()

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="silent-primary"):
            get_behavior("nonsense")

    def test_conflicting_registration_raises(self):
        with pytest.raises(RegistrationError):

            @register_behavior("silent-primary")
            class Impostor(AdversaryBehavior):
                pass

    def test_registration_is_reversible_for_tests(self):
        @register_behavior("test-noop-behavior")
        class TestBehavior(AdversaryBehavior):
            pass

        try:
            assert get_behavior("test-noop-behavior") is TestBehavior
        finally:
            del _BEHAVIORS["test-noop-behavior"]

    def test_make_behavior_from_name_and_instance(self):
        built = make_behavior("delay-attacker", seed=7)
        assert isinstance(built, DelayAttacker)
        assert built.seed == 7
        instance = SilentPrimary(seed=3)
        assert make_behavior(instance, seed=99) is instance  # own seed wins

    def test_make_behavior_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            make_behavior(42)


class TestSilence:
    def test_silent_primary_drops_everything(self):
        behavior = SilentPrimary()
        assert behavior.outbound(1, "anything") == ()
        assert behavior.outbound(2, Prepare(view=0, slot=1, digest="d", node=0)) == ()
        assert behavior.dropped == 2

    def test_selective_silence_explicit_targets(self):
        behavior = SelectiveSilence(targets=[2, 3])
        behavior.attach(FakeReplica(pid=0))
        assert behavior.outbound(2, "x") == ()
        assert behavior.outbound(1, "x") is None

    def test_selective_silence_samples_peers_deterministically(self):
        first = SelectiveSilence(seed=5)
        second = SelectiveSilence(seed=5)
        first.attach(FakeReplica(pid=0))
        second.attach(FakeReplica(pid=0))
        assert first.muted == second.muted
        assert first.muted  # non-empty
        peers = {1, 2, 3}
        assert first.muted < peers or first.muted == peers

    def test_selective_silence_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            SelectiveSilence(fraction=0.0)


class TestDelayAttacker:
    def test_delay_defaults_to_fraction_of_view_change_timeout(self):
        behavior = DelayAttacker()
        behavior.attach(FakeReplica(view_change_timeout=1.0))
        assert behavior.delay == pytest.approx(0.9)

    def test_explicit_delay_wins(self):
        behavior = DelayAttacker(delay=0.123)
        behavior.attach(FakeReplica())
        actions = behavior.outbound(1, "m")
        assert [a.extra_delay for a in actions] == [pytest.approx(0.123)]
        assert actions[0].message == "m"


class TestVoteTargeting:
    def test_withholder_drops_votes_only(self):
        behavior = VoteWithholder()
        vote = Prepare(view=0, slot=1, digest="d", node=0)
        proposal = PrePrepare(view=0, slot=1, digest="d", item="tx")
        assert behavior.outbound(1, vote) == ()
        assert behavior.outbound(1, proposal) is None

    def test_tamperer_rewrites_digest_deterministically(self):
        behavior = TamperedDigest(seed=1)
        vote = PBFTCommit(view=0, slot=4, digest="real", node=0)
        (action,) = behavior.outbound(1, vote)
        assert action.message.digest != "real"
        assert action.message.slot == 4
        # Same seed, same original digest -> same forgery.
        (again,) = TamperedDigest(seed=1).outbound(2, vote)
        assert again.message.digest == action.message.digest
        # Different seed forges differently.
        (other,) = TamperedDigest(seed=2).outbound(1, vote)
        assert other.message.digest != action.message.digest

    def test_tamperer_passes_proposals_through(self):
        behavior = TamperedDigest()
        proposal = PrePrepare(view=0, slot=1, digest="d", item="tx")
        assert behavior.outbound(1, proposal) is None


class TestEquivocatingPrimary:
    def _pre_prepare(self, slot=1, view=0):
        item = Noop(reason="real")
        return PrePrepare(view=view, slot=slot, digest=item_digest(item), item=item)

    def test_two_disjoint_halves_get_conflicting_proposals(self):
        behavior = EquivocatingPrimary(seed=1)
        behavior.attach(FakeReplica(pid=0))
        message = self._pre_prepare()
        outcomes = {dst: behavior.outbound(dst, message) for dst in (1, 2, 3)}
        victims = {dst for dst, result in outcomes.items() if result is not None}
        honest = set(outcomes) - victims
        assert victims and honest  # both halves non-empty
        forged = {outcomes[dst][0].message for dst in victims}
        assert len(forged) == 1  # internally consistent fork
        fork = forged.pop()
        assert fork.digest != message.digest
        assert fork.slot == message.slot and fork.view == message.view

    def test_fork_is_deterministic_per_seed(self):
        first = EquivocatingPrimary(seed=9)
        second = EquivocatingPrimary(seed=9)
        for behavior in (first, second):
            behavior.attach(FakeReplica(pid=0))
        message = self._pre_prepare(slot=7)
        for dst in (1, 2, 3):
            a = first.outbound(dst, message)
            b = second.outbound(dst, message)
            assert (a is None) == (b is None)
            if a is not None:
                assert a[0].message.digest == b[0].message.digest

    def test_non_proposal_traffic_passes(self):
        behavior = EquivocatingPrimary()
        behavior.attach(FakeReplica(pid=0))
        assert behavior.outbound(1, Prepare(view=0, slot=1, digest="d", node=0)) is None


class TestAdaptiveMuting:
    """mute-during-view-change: silent exactly while an election runs."""

    class FakeManager:
        def __init__(self):
            self.in_view_change = False

    def _attached(self):
        from repro.adversary import MuteDuringViewChange

        behavior = MuteDuringViewChange()
        replica = FakeReplica(pid=1)
        replica.intra = type("FakeEngine", (), {})()
        replica.intra.view_change = self.FakeManager()
        behavior.attach(replica)
        return behavior, replica.intra.view_change

    def test_steady_state_traffic_passes(self):
        behavior, _ = self._attached()
        assert behavior.outbound(2, Prepare(view=0, slot=1, digest="d", node=1)) is None
        assert behavior.muted_messages == 0

    def test_everything_drops_during_a_view_change(self):
        behavior, manager = self._attached()
        manager.in_view_change = True
        assert behavior.outbound(2, "view-change-vote") == ()
        assert behavior.outbound(3, Prepare(view=0, slot=1, digest="d", node=1)) == ()
        assert behavior.muted_messages == 2

    def test_voice_returns_once_the_view_installs(self):
        behavior, manager = self._attached()
        manager.in_view_change = True
        assert behavior.outbound(2, "vote") == ()
        manager.in_view_change = False  # _enter_view clears the flag
        assert behavior.outbound(2, "new-view-traffic") is None
        assert behavior.muted_messages == 1

    def test_registered_with_alias(self):
        from repro.adversary import MuteDuringViewChange

        assert get_behavior("mute-during-view-change") is MuteDuringViewChange
        assert get_behavior("vc-mute") is MuteDuringViewChange
        assert "mute-during-view-change" in available_behaviors()


class TestCheckpointSuppressor:
    def test_drops_checkpoints_only(self):
        from repro.adversary import CheckpointSuppressor
        from repro.recovery.messages import Checkpoint

        behavior = CheckpointSuppressor()
        behavior.attach(FakeReplica(pid=0))
        checkpoint = Checkpoint(seq=16, digest="d", node=0)
        assert behavior.outbound(1, checkpoint) == ()
        assert behavior.outbound(1, Prepare(view=0, slot=1, digest="d", node=0)) is None
        assert behavior.suppressed_checkpoints == 1

    def test_registered_with_alias(self):
        from repro.adversary import CheckpointSuppressor

        assert get_behavior("checkpoint-suppressor") is CheckpointSuppressor
        assert get_behavior("gc-staller") is CheckpointSuppressor
        assert "checkpoint-suppressor" in available_behaviors()
