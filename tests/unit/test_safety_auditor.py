"""Unit tests for the cross-replica SafetyAuditor."""

from repro import FaultModel, WorkloadConfig
from repro.adversary import SafetyAuditor
from repro.api import DeploymentSpec, Scenario
from repro.common.types import ClusterId
from repro.ledger.block import Block


def run_scenario(**overrides):
    scenario = Scenario(
        deployment=DeploymentSpec(
            system="sharper", fault_model=FaultModel.BYZANTINE, num_clusters=2
        ),
        workload=WorkloadConfig(cross_shard_fraction=0.1, accounts_per_shard=32),
        clients=6,
        duration=0.15,
        warmup=0.02,
        **overrides,
    )
    return scenario.run()


def forged_block(view, reason="forged"):
    """A noop block appended forcibly at the view's next position."""
    return Block.noop(
        positions={view.cluster_id: view.next_index},
        proposer=view.cluster_id,
        parents={view.cluster_id: view.head_hash},
    )


class TestCleanRuns:
    def test_clean_run_is_safe(self):
        result = run_scenario()
        report = SafetyAuditor(result.system).audit()
        assert report.ok
        assert report.clusters_checked == 2
        assert report.replicas_checked == 8
        assert report.byzantine_nodes == ()
        assert report.total_balance == report.expected_balance

    def test_lagging_replica_is_not_a_fork(self):
        # A crashed replica's shorter chain is a prefix, not a violation.
        result = run_scenario()
        system = result.system
        report = SafetyAuditor(system).audit()
        assert report.ok

    def test_summary_mentions_verdict(self):
        result = run_scenario()
        report = SafetyAuditor(result.system).audit()
        assert "SAFE" in report.summary()


class TestViolationDetection:
    def test_forged_fork_is_detected(self):
        result = run_scenario()
        system = result.system
        replicas = system.replicas_of(ClusterId(0))
        # Forge divergence: one replica appends a block the others lack,
        # another appends a *different* block at the same height.
        a, b = replicas[0], replicas[1]
        a.chain.append(forged_block(a.chain))
        b.chain.append(
            Block.noop(
                positions={b.chain.cluster_id: b.chain.next_index},
                proposer=ClusterId(1),
                parents={b.chain.cluster_id: b.chain.head_hash},
            )
        )
        report = SafetyAuditor(system).audit()
        assert not report.ok
        assert any("fork" in problem for problem in report.problems)
        assert report.replicas_checked == 8

    def test_byzantine_replicas_are_excluded(self):
        result = run_scenario()
        system = result.system
        replica = system.replicas_of(ClusterId(0))[0]
        replica.chain.append(forged_block(replica.chain))
        # Divergence on a *Byzantine* node is not a safety violation.
        peer = system.replicas_of(ClusterId(0))[1]
        peer.chain.append(
            Block.noop(
                positions={peer.chain.cluster_id: peer.chain.next_index},
                proposer=ClusterId(1),
                parents={peer.chain.cluster_id: peer.chain.head_hash},
            )
        )
        system.byzantine_nodes.add(int(replica.pid))
        report = SafetyAuditor(system).audit()
        assert int(replica.pid) in report.byzantine_nodes
        # Remaining correct replicas may still fork against each other; at
        # minimum the flagged node itself must not be blamed.
        assert all(f"replicas {int(replica.pid)} " not in p for p in report.problems)

    def test_balance_violation_is_detected(self):
        result = run_scenario()
        system = result.system
        store = system.stores()[0]
        account = next(iter(store))
        store.deposit(account.account_id, 13)
        report = SafetyAuditor(system).audit()
        assert not report.ok
        assert any("balance" in problem for problem in report.problems)
