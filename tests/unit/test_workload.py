"""Unit tests for the synthetic workload generator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import TxType
from repro.txn.workload import WorkloadConfig, WorkloadGenerator


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(cross_shard_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(shards_per_cross_tx=1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(accounts_per_shard=1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(min_amount=5, max_amount=2)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_clients=0)


class TestWorkloadGenerator:
    def test_pure_intra_shard_workload(self):
        generator = WorkloadGenerator(WorkloadConfig(cross_shard_fraction=0.0), num_shards=4, seed=1)
        for tx in generator.stream(200):
            assert generator.classify(tx) is TxType.INTRA_SHARD
        assert generator.observed_cross_fraction() == 0.0

    def test_pure_cross_shard_workload(self):
        generator = WorkloadGenerator(WorkloadConfig(cross_shard_fraction=1.0), num_shards=4, seed=1)
        for tx in generator.stream(200):
            assert generator.classify(tx) is TxType.CROSS_SHARD
            assert len(tx.involved_shards(generator.mapper)) == 2
        assert generator.observed_cross_fraction() == 1.0

    def test_mixed_fraction_is_close_to_target(self):
        generator = WorkloadGenerator(
            WorkloadConfig(cross_shard_fraction=0.2), num_shards=4, seed=7
        )
        txs = list(generator.stream(2000))
        observed = sum(tx.is_cross_shard(generator.mapper) for tx in txs) / len(txs)
        assert 0.15 < observed < 0.25

    def test_cross_tx_touches_requested_number_of_shards(self):
        config = WorkloadConfig(cross_shard_fraction=1.0, shards_per_cross_tx=3)
        generator = WorkloadGenerator(config, num_shards=5, seed=3)
        for _ in range(50):
            tx = generator.next_cross_shard()
            assert len(tx.involved_shards(generator.mapper)) == 3

    def test_deterministic_given_seed(self):
        config = WorkloadConfig(cross_shard_fraction=0.3)
        a = WorkloadGenerator(config, num_shards=4, seed=11)
        b = WorkloadGenerator(config, num_shards=4, seed=11)
        for _ in range(50):
            ta, tb = a.next_transaction(), b.next_transaction()
            assert [t.accounts for t in (ta,)] == [t.accounts for t in (tb,)]
            assert ta.transfers == tb.transfers

    def test_client_owns_the_source_account(self):
        generator = WorkloadGenerator(WorkloadConfig(cross_shard_fraction=0.5), num_shards=4, seed=5)
        for tx in generator.stream(200):
            for transfer in tx.transfers:
                assert tx.client == generator.owner_of(transfer.source)

    def test_too_few_shards_for_cross_workload(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(WorkloadConfig(cross_shard_fraction=0.5), num_shards=1)

    def test_hot_spot_skew(self):
        config = WorkloadConfig(
            cross_shard_fraction=0.0,
            hot_account_fraction=0.01,
            hot_access_fraction=0.9,
            accounts_per_shard=1000,
        )
        generator = WorkloadGenerator(config, num_shards=2, seed=5)
        hits = 0
        total = 500
        for _ in range(total):
            tx = generator.next_intra_shard(shard=0)
            hot_limit = 10  # 1% of 1000
            hits += any(a < hot_limit for a in tx.accounts if a < 1000)
        assert hits > total * 0.5
