"""Unit tests for the archival tier (archive schema, history queries, audit).

A small hash-chain-valid history is built by hand: two clusters, one
cross-shard block, every parent hash derived the way the live ledger
derives them — so the offline auditor's recomputation genuinely checks
the same encodings the system uses.
"""

import pytest

from repro.common.crypto import GENESIS_HASH, chain_hash
from repro.common.errors import ConfigurationError, UnknownBlockError
from repro.ledger.block import GENESIS_BLOCK_ID, Block
from repro.storage import (
    ArrayAccountStore,
    HistoryQuery,
    SqliteArchive,
    audit_archive,
    open_archive,
)
from repro.txn.accounts import ShardMapper
from repro.txn.transaction import Transaction, Transfer

BOOTSTRAP = {
    "num_shards": 2,
    "accounts_per_shard": 4,
    "partition_strategy": "range",
    "initial_balance": 100,
    "num_clients": 2,
}


def _tx(tx_id, source, destination, amount):
    return Transaction.multi_transfer(
        client=source % BOOTSTRAP["num_clients"],
        transfers=[Transfer(source=source, destination=destination, amount=amount)],
        timestamp=0.0,
        tx_id=tx_id,
    )


def _build_history():
    """Blocks of a 2-cluster run: 3 on cluster 0, 2 on cluster 1, one shared."""
    genesis = chain_hash(GENESIS_BLOCK_ID, GENESIS_HASH)
    b1 = Block.create(_tx("tx-a", 1, 2, 5), {0: 1}, proposer=0, parents={0: genesis})
    cross = Block.create(
        _tx("tx-x", 0, 5, 3),
        {0: 2, 1: 1},
        proposer=0,
        parents={0: b1.block_hash, 1: genesis},
    )
    b3 = Block.create(
        _tx("tx-b", 2, 3, 1), {0: 3}, proposer=0, parents={0: cross.block_hash}
    )
    b4 = Block.create(
        _tx("tx-c", 4, 6, 2), {1: 2}, proposer=1, parents={1: cross.block_hash}
    )
    return {"b1": b1, "cross": cross, "b3": b3, "b4": b4}


def _archived(record_checkpoint=True):
    archive = SqliteArchive(":memory:")
    archive.record_bootstrap(BOOTSTRAP)
    blocks = _build_history()
    archive.archive_blocks(0, [blocks["b1"], blocks["cross"], blocks["b3"]])
    archive.archive_blocks(1, [blocks["cross"], blocks["b4"]])
    if record_checkpoint:
        # The store digest cluster 0's replicas would have stabilised
        # after block 3: tx-a, the out-half of tx-x, then tx-b.
        mapper = ShardMapper(BOOTSTRAP["num_shards"], BOOTSTRAP["accounts_per_shard"])
        store = ArrayAccountStore.bootstrap(
            0, mapper, BOOTSTRAP["initial_balance"],
            owner_of=lambda account: account % BOOTSTRAP["num_clients"],
        )
        store.withdraw(1, 5)
        store.deposit(2, 5)
        store.withdraw(0, 3)
        store.withdraw(2, 1)
        store.deposit(3, 1)
        archive.record_checkpoint(0, 3, store.state_digest(), blocks["b3"].block_hash)
    return archive, blocks


class TestSqliteArchive:
    def test_roundtrip_counts(self):
        archive, _ = _archived()
        assert archive.clusters() == [0, 1]
        assert archive.blocks_archived() == 5  # 3 + 2 rows (cross appears twice)
        assert archive.tx_rows_archived() == 5
        assert archive.archived_height(0) == 3
        assert archive.archived_height(1) == 2
        assert archive.archived_height(7) == 0
        assert archive.checkpoints_archived() == 1
        assert archive.size_bytes() == 0  # in-memory

    def test_respill_is_idempotent(self):
        archive, blocks = _archived(record_checkpoint=False)
        written = archive.blocks_written
        added = archive.archive_blocks(0, [blocks["b1"], blocks["cross"]])
        assert added == 0
        assert archive.blocks_written == written
        assert archive.blocks_archived() == 5
        assert archive.tx_rows_archived() == 5

    def test_bootstrap_meta_roundtrip(self):
        archive, _ = _archived()
        assert archive.bootstrap_meta() == BOOTSTRAP
        assert SqliteArchive(":memory:").bootstrap_meta() is None

    def test_open_archive_rejects_missing_path(self, tmp_path):
        with pytest.raises(ConfigurationError):
            open_archive(tmp_path / "nope.db")

    def test_open_archive_passes_through(self):
        archive = SqliteArchive(":memory:")
        assert open_archive(archive) is archive

    def test_open_archive_reads_from_disk(self, tmp_path):
        path = tmp_path / "archive.db"
        archive, _ = _archived()
        # Rebuild on disk: :memory: archives cannot be reopened.
        disk = SqliteArchive(str(path))
        disk.record_bootstrap(BOOTSTRAP)
        blocks = _build_history()
        disk.archive_blocks(0, [blocks["b1"], blocks["cross"], blocks["b3"]])
        disk.close()
        reopened = open_archive(path)
        assert reopened.blocks_archived() == 3
        assert reopened.bootstrap_meta() == BOOTSTRAP
        reopened.close()


class TestHistoryQuery:
    def test_block_at(self):
        archive, blocks = _archived()
        history = HistoryQuery(archive)
        block = history.block_at(0, 2)
        assert block.block_hash == blocks["cross"].block_hash
        assert block.is_cross_shard
        assert block.positions == ((0, 2), (1, 1))
        assert block.tx_ids == ("tx-x",)
        assert not history.block_at(0, 1).is_cross_shard
        with pytest.raises(UnknownBlockError):
            history.block_at(0, 9)

    def test_blocks_in_range(self):
        archive, _ = _archived()
        history = HistoryQuery(archive)
        positions = [block.position for block in history.blocks_in_range(0, 2, 3)]
        assert positions == [2, 3]

    def test_tx_by_id_spans_clusters(self):
        archive, _ = _archived()
        history = HistoryQuery(archive)
        tx = history.tx_by_id("tx-x")
        assert tx.positions == ((0, 2), (1, 1))
        assert tx.transfers == ((0, 5, 3),)
        assert history.tx_by_id("tx-c").positions == ((1, 2),)
        with pytest.raises(UnknownBlockError):
            history.tx_by_id("tx-missing")

    def test_account_activity_uses_home_cluster(self):
        archive, _ = _archived()
        history = HistoryQuery(archive)
        activity = history.account_activity(2)  # shard 0 via bootstrap meta
        assert [(record.position, record.delta) for record in activity] == [
            (1, 5),   # tx-a credits 2
            (3, -1),  # tx-b debits 2
        ]
        assert activity[0].tx_id == "tx-a"
        # The cross-shard destination lives on cluster 1.
        cross_in = history.account_activity(5)
        assert [(record.position, record.delta) for record in cross_in] == [(1, 3)]

    def test_is_ancestor_same_cluster(self):
        archive, _ = _archived()
        history = HistoryQuery(archive)
        assert history.is_ancestor((0, 1), (0, 3))
        assert not history.is_ancestor((0, 3), (0, 1))
        assert not history.is_ancestor((0, 2), (0, 2))

    def test_is_ancestor_single_hop(self):
        archive, _ = _archived()
        history = HistoryQuery(archive)
        # b1 at (0,1) precedes the cross block, which precedes b4 at (1,2).
        assert history.is_ancestor((0, 1), (1, 2))
        assert history.is_ancestor((0, 2), (1, 2))
        # b4 commits after the cross block; nothing links it back to 0's chain.
        assert not history.is_ancestor((1, 2), (0, 3))

    def test_same_cross_block_is_not_its_own_ancestor(self):
        archive, _ = _archived()
        history = HistoryQuery(archive)
        # (0,2) and (1,1) name the same cross-shard block.
        assert not history.is_ancestor((0, 2), (1, 1))
        assert not history.is_ancestor((1, 1), (0, 2))

    def test_is_ancestor_multi_hop(self):
        # Three clusters chained 0 -> 1 -> 2 through two cross blocks.
        meta = dict(BOOTSTRAP, num_shards=3)
        archive = SqliteArchive(":memory:")
        archive.record_bootstrap(meta)
        genesis = chain_hash(GENESIS_BLOCK_ID, GENESIS_HASH)
        hop1 = Block.create(
            _tx("tx-h1", 0, 5, 1), {0: 1, 1: 1}, proposer=0,
            parents={0: genesis, 1: genesis},
        )
        hop2 = Block.create(
            _tx("tx-h2", 4, 9, 1), {1: 2, 2: 1}, proposer=1,
            parents={1: hop1.block_hash, 2: genesis},
        )
        tail = Block.create(
            _tx("tx-h3", 8, 9, 1), {2: 2}, proposer=2, parents={2: hop2.block_hash}
        )
        archive.archive_blocks(0, [hop1])
        archive.archive_blocks(1, [hop1, hop2])
        archive.archive_blocks(2, [hop2, tail])
        history = HistoryQuery(archive)
        assert history.is_ancestor((0, 1), (2, 2))  # needs the recursive CTE
        assert not history.is_ancestor((2, 2), (0, 1))


class TestAuditArchive:
    def test_clean_archive_passes(self):
        archive, _ = _archived()
        report = audit_archive(archive)
        assert report.ok, report.problems
        assert report.clusters_audited == 2
        assert report.blocks_verified == 5
        assert report.txs_replayed == 5
        assert report.checkpoints_verified == 1
        assert report.failed_replays == 0
        report.raise_if_failed()
        assert "2 clusters" in report.summary()

    def test_empty_archive_passes(self):
        assert audit_archive(SqliteArchive(":memory:")).ok

    def test_tampered_amount_detected(self):
        archive, _ = _archived()
        archive.connection.execute(
            "UPDATE transfers SET amount = 50 WHERE tx_id = 'tx-a'"
        )
        report = audit_archive(archive)
        assert not report.ok
        assert any(
            "digest" in problem or "conserv" in problem for problem in report.problems
        )
        with pytest.raises(Exception):
            report.raise_if_failed()

    def test_tampered_block_hash_detected(self):
        archive, _ = _archived()
        archive.connection.execute(
            "UPDATE blocks SET block_hash = 'deadbeef' WHERE cluster = 0 AND position = 1"
        )
        report = audit_archive(archive)
        assert not report.ok

    def test_missing_block_breaks_contiguity(self):
        archive, _ = _archived(record_checkpoint=False)
        archive.connection.execute(
            "DELETE FROM blocks WHERE cluster = 0 AND position = 2"
        )
        report = audit_archive(archive)
        assert not report.ok
        assert any("contiguous" in problem or "gap" in problem for problem in report.problems)
