"""Unit tests for shard/cluster mapping and the super-primary rule."""

import pytest

from repro.common.config import NodeGroup
from repro.common.errors import ConfigurationError
from repro.common.types import FaultModel
from repro.core import sharding
from repro.txn.accounts import ShardMapper
from repro.txn.transaction import Transaction


@pytest.fixture
def mapper():
    return ShardMapper(num_shards=4, accounts_per_shard=10)


class TestInvolvedClusters:
    def test_intra_shard(self, mapper):
        tx = Transaction.transfer(client=1, source=1, destination=2, amount=1)
        assert sharding.involved_clusters(tx, mapper) == (0,)

    def test_cross_shard_sorted(self, mapper):
        tx = Transaction.transfer(client=1, source=35, destination=2, amount=1)
        assert sharding.involved_clusters(tx, mapper) == (0, 3)

    def test_identity_mapping(self):
        assert sharding.shard_to_cluster(2) == 2
        assert sharding.cluster_to_shard(3) == 3


class TestSuperPrimary:
    def test_minimum_involved_cluster(self):
        assert sharding.super_primary_cluster([2, 1, 3]) == 1
        assert sharding.super_primary_cluster([0, 3]) == 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sharding.super_primary_cluster([])

    def test_initiator_cluster_with_rule(self, mapper):
        tx = Transaction.transfer(client=1, source=25, destination=35, amount=1)
        assert sharding.initiator_cluster(tx, mapper) == 2

    def test_initiator_cluster_without_rule_uses_fallback(self, mapper):
        tx = Transaction.transfer(client=1, source=25, destination=35, amount=1)
        assert sharding.initiator_cluster(tx, mapper, use_super_primary=False, fallback=3) == 3
        # A fallback cluster that is not involved defers to the first involved one.
        assert sharding.initiator_cluster(tx, mapper, use_super_primary=False, fallback=0) == 2

    def test_intra_shard_ignores_rule(self, mapper):
        tx = Transaction.transfer(client=1, source=11, destination=12, amount=1)
        assert sharding.initiator_cluster(tx, mapper, use_super_primary=False) == 1


class TestGroupedSystem:
    def test_paper_example_builds_five_clusters(self):
        # Section 3.4: groups A (7 nodes, f=2) and B (16 nodes, f=1).
        groups = [NodeGroup("A", 7, 2), NodeGroup("B", 16, 1)]
        config = sharding.build_grouped_system(groups, FaultModel.BYZANTINE)
        assert config.num_clusters == 5
        sizes = sorted(cluster.size for cluster in config.clusters)
        assert sizes == [4, 4, 4, 4, 7]
        fs = sorted(cluster.f for cluster in config.clusters)
        assert fs == [1, 1, 1, 1, 2]

    def test_group_too_small_contributes_nothing(self):
        groups = [NodeGroup("small", 2, 1), NodeGroup("big", 8, 1)]
        config = sharding.build_grouped_system(groups, FaultModel.BYZANTINE)
        assert config.num_clusters == 2

    def test_all_groups_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            sharding.build_grouped_system([NodeGroup("tiny", 2, 1)], FaultModel.BYZANTINE)
