"""Unit tests for the core identifier types and fault-model arithmetic."""

import pytest

from repro.common.types import FaultModel, SequenceNumber, node_label


class TestFaultModel:
    def test_crash_cluster_size(self):
        assert FaultModel.CRASH.min_cluster_size(1) == 3
        assert FaultModel.CRASH.min_cluster_size(2) == 5
        assert FaultModel.CRASH.min_cluster_size(0) == 1

    def test_byzantine_cluster_size(self):
        assert FaultModel.BYZANTINE.min_cluster_size(1) == 4
        assert FaultModel.BYZANTINE.min_cluster_size(3) == 10

    def test_cross_shard_quorums(self):
        # Algorithm 1 needs f + 1 accepts per cluster, Algorithm 2 needs 2f + 1.
        assert FaultModel.CRASH.quorum_size(1) == 2
        assert FaultModel.BYZANTINE.quorum_size(1) == 3
        assert FaultModel.CRASH.quorum_size(2) == 3
        assert FaultModel.BYZANTINE.quorum_size(2) == 5

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError):
            FaultModel.CRASH.min_cluster_size(-1)
        with pytest.raises(ValueError):
            FaultModel.BYZANTINE.quorum_size(-2)

    def test_cluster_size_property_uses_f_equal_one(self):
        assert FaultModel.CRASH.cluster_size == 3
        assert FaultModel.BYZANTINE.cluster_size == 4


class TestSequenceNumber:
    def test_ordering_is_by_cluster_then_index(self):
        assert SequenceNumber(0, 5) < SequenceNumber(1, 0)
        assert SequenceNumber(1, 2) < SequenceNumber(1, 3)

    def test_next_increments_index_only(self):
        seq = SequenceNumber(2, 7)
        assert seq.next() == SequenceNumber(2, 8)
        assert seq.next().cluster == 2

    def test_equality_and_hashability(self):
        assert SequenceNumber(1, 1) == SequenceNumber(1, 1)
        assert len({SequenceNumber(1, 1), SequenceNumber(1, 1), SequenceNumber(1, 2)}) == 2


def test_node_label_formats():
    assert node_label(3) == "n3"
    assert node_label(3, 1) == "n3@p1"
