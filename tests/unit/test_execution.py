"""Unit tests for per-shard transaction execution."""

import pytest

from repro.txn.accounts import AccountStore, ShardMapper
from repro.txn.execution import TransactionExecutor
from repro.txn.transaction import Transaction, Transfer


@pytest.fixture
def mapper():
    return ShardMapper(num_shards=2, accounts_per_shard=10)


def make_executor(mapper, shard, balance=100):
    store = AccountStore.bootstrap(shard, mapper, initial_balance=balance,
                                   owner_of={a: a % 4 for a in mapper.accounts_in_shard(shard)})
    return TransactionExecutor(store, mapper, shard), store


class TestIntraShardExecution:
    def test_successful_transfer(self, mapper):
        executor, store = make_executor(mapper, 0)
        tx = Transaction.transfer(client=1, source=1, destination=2, amount=30)
        result = executor.execute(tx)
        assert result.success
        assert store.balance(1) == 70
        assert store.balance(2) == 130
        assert store.total_balance() == 100 * 10

    def test_ownership_enforced(self, mapper):
        executor, store = make_executor(mapper, 0)
        tx = Transaction.transfer(client=2, source=1, destination=2, amount=10)
        result = executor.execute(tx)
        assert not result.success
        assert "own" in result.error
        assert store.balance(1) == 100

    def test_insufficient_balance_rejected_atomically(self, mapper):
        executor, store = make_executor(mapper, 0, balance=10)
        tx = Transaction.multi_transfer(
            client=1, transfers=[Transfer(1, 2, 6), Transfer(1, 3, 6)]
        )
        result = executor.execute(tx)
        assert not result.success
        assert store.balance(1) == 10
        assert store.balance(2) == 10

    def test_ownership_can_be_disabled(self, mapper):
        store = AccountStore.bootstrap(0, mapper, initial_balance=50)
        executor = TransactionExecutor(store, mapper, 0, enforce_ownership=False)
        tx = Transaction.transfer(client=99, source=1, destination=2, amount=10)
        assert executor.execute(tx).success


class TestCrossShardExecution:
    def test_each_shard_applies_only_its_part(self, mapper):
        executor0, store0 = make_executor(mapper, 0)
        executor1, store1 = make_executor(mapper, 1)
        # account 1 lives in shard 0, account 15 in shard 1.
        tx = Transaction.transfer(client=1, source=1, destination=15, amount=25)
        assert executor0.execute(tx).success
        assert executor1.execute(tx).success
        assert store0.balance(1) == 75
        assert store1.balance(15) == 125
        # Conservation across the union of shards.
        assert store0.total_balance() + store1.total_balance() == 2 * 100 * 10

    def test_shard_without_local_accounts_applies_nothing(self, mapper):
        executor1, store1 = make_executor(mapper, 1)
        tx = Transaction.transfer(client=1, source=1, destination=2, amount=25)
        result = executor1.execute(tx)
        assert result.success
        assert result.applied_transfers == 0
        assert store1.total_balance() == 100 * 10

    def test_counters_track_outcomes(self, mapper):
        executor, _ = make_executor(mapper, 0)
        ok = Transaction.transfer(client=1, source=1, destination=2, amount=1)
        bad = Transaction.transfer(client=3, source=1, destination=2, amount=1)
        executor.execute(ok)
        executor.execute(bad)
        assert executor.executed == 1
        assert executor.failed == 1
