"""Unit tests for transactions: construction, classification, signing."""

import pytest

from repro.common.crypto import KeyPair
from repro.common.errors import ValidationError
from repro.common.types import TxType
from repro.txn.accounts import ShardMapper
from repro.txn.transaction import Transaction, Transfer


class TestTransfer:
    def test_valid_transfer(self):
        transfer = Transfer(source=1, destination=2, amount=5)
        assert transfer.accounts == (1, 2)

    def test_zero_or_negative_amount_rejected(self):
        with pytest.raises(ValidationError):
            Transfer(source=1, destination=2, amount=0)
        with pytest.raises(ValidationError):
            Transfer(source=1, destination=2, amount=-3)

    def test_self_transfer_rejected(self):
        with pytest.raises(ValidationError):
            Transfer(source=1, destination=1, amount=5)


class TestTransaction:
    def test_requires_at_least_one_transfer(self):
        with pytest.raises(ValidationError):
            Transaction(tx_id="t", client=1, transfers=())

    def test_accounts_and_sets(self):
        tx = Transaction.multi_transfer(
            client=1,
            transfers=[Transfer(1, 2, 5), Transfer(1, 30, 7)],
        )
        assert tx.accounts == frozenset({1, 2, 30})
        assert tx.read_set == frozenset({1})
        assert tx.write_set == frozenset({1, 2, 30})

    def test_tx_ids_are_unique(self):
        a = Transaction.transfer(client=1, source=1, destination=2, amount=1)
        b = Transaction.transfer(client=1, source=1, destination=2, amount=1)
        assert a.tx_id != b.tx_id

    def test_payload_digest_stable_and_distinct(self):
        a = Transaction.transfer(client=1, source=1, destination=2, amount=1, tx_id="fixed")
        b = Transaction.transfer(client=1, source=1, destination=2, amount=1, tx_id="fixed")
        c = Transaction.transfer(client=1, source=1, destination=2, amount=2, tx_id="fixed")
        assert a.payload_digest() == b.payload_digest()
        assert a.payload_digest() != c.payload_digest()

    def test_intra_vs_cross_classification(self):
        mapper = ShardMapper(num_shards=4, accounts_per_shard=10)
        intra = Transaction.transfer(client=1, source=1, destination=2, amount=1)
        cross = Transaction.transfer(client=1, source=1, destination=15, amount=1)
        assert intra.tx_type(mapper) is TxType.INTRA_SHARD
        assert cross.tx_type(mapper) is TxType.CROSS_SHARD
        assert not intra.is_cross_shard(mapper)
        assert cross.involved_shards(mapper) == frozenset({0, 1})

    def test_multi_shard_transaction(self):
        mapper = ShardMapper(num_shards=4, accounts_per_shard=10)
        tx = Transaction.multi_transfer(
            client=1, transfers=[Transfer(1, 15, 2), Transfer(1, 25, 2), Transfer(1, 35, 2)]
        )
        assert tx.involved_shards(mapper) == frozenset({0, 1, 2, 3})

    def test_signature_roundtrip(self):
        keypair = KeyPair(owner=5)
        tx = Transaction.transfer(client=5, source=1, destination=2, amount=1, keypair=keypair)
        assert tx.signature is not None
        assert tx.verify_signature()

    def test_signature_of_wrong_client_fails(self):
        keypair = KeyPair(owner=6)
        tx = Transaction.transfer(client=5, source=1, destination=2, amount=1, keypair=keypair)
        assert not tx.verify_signature()

    def test_unsigned_transaction_does_not_verify(self):
        tx = Transaction.transfer(client=5, source=1, destination=2, amount=1)
        assert not tx.verify_signature()
