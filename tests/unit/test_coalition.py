"""Colluding adversaries: the Coalition coordinator.

A coalition binds one Byzantine replica per cluster — in *different*
clusters — to one shared script via a common target set.  These tests
pin the mechanism (targets registered by the spotter, members gating
registry behaviours on them) and the end-to-end claim: the canonical
delay-attacker + vote-withholder pair squeezes cross-shard transactions
from both ends, yet every run passes the cross-replica safety audit.
"""

import pytest

from repro import FaultModel, WorkloadConfig
from repro.adversary import Coalition, CoalitionMember, DelayAttacker, VoteWithholder
from repro.api import DeploymentSpec, FaultSchedule, FormCoalition, Scenario
from repro.bench.experiments import coalition_members, coalition_scenario
from repro.common.types import ClusterId
from repro.consensus.messages import CrossAcceptB, CrossProposeB, Prepare


class TestCoalitionMechanism:
    def test_members_resolve_registry_behaviors(self):
        coalition = Coalition(seed=7)
        delayer = coalition.member("delay-attacker")
        withholder = coalition.member("vote-withholder")
        assert isinstance(delayer, CoalitionMember)
        assert isinstance(delayer.inner, DelayAttacker)
        assert isinstance(withholder.inner, VoteWithholder)
        assert len(coalition.members) == 2
        # Derived seeds differ, keeping members mutually deterministic.
        assert delayer.inner.seed != withholder.inner.seed

    def test_spotting_registers_targets_once(self):
        coalition = Coalition()
        member = coalition.member("vote-withholder")
        propose = CrossProposeB(
            digest="d1", request=None, involved=(ClusterId(0), ClusterId(1)),
            initiator_cluster=ClusterId(0), initiator_slot=1,
        )
        member.outbound(4, propose)
        member.outbound(5, propose)
        assert coalition.targets == {"d1"}
        assert coalition.targeted == 1

    def test_targeted_votes_are_withheld_untargeted_pass(self):
        coalition = Coalition()
        coalition.register_target("d1")
        member = coalition.member("vote-withholder")
        targeted = CrossAcceptB(digest="d1", cluster=ClusterId(1), node=5, slot=3)
        untargeted = CrossAcceptB(digest="d2", cluster=ClusterId(1), node=5, slot=4)
        assert member.outbound(0, targeted) == ()  # dropped by the inner behaviour
        assert member.outbound(0, untargeted) is None  # honest pass-through
        assert coalition.attacked == 1
        assert member.dropped == 1

    def test_messages_without_digest_pass_through(self):
        coalition = Coalition()
        coalition.register_target("d1")
        member = coalition.member("vote-withholder")
        # Intra-shard votes carry a digest too, but only *targeted*
        # digests are attacked; a NewView-style digest-less message is
        # always honest.
        prepare = Prepare(view=0, slot=1, digest="other", node=2)
        assert member.outbound(0, prepare) is None

    def test_form_coalition_event_is_adversarial_and_picklable(self):
        import pickle

        schedule = FaultSchedule().form_coalition(
            at=0.1, members={0: "delay-attacker", 5: "vote-withholder"}
        )
        (event,) = schedule.events
        assert isinstance(event, FormCoalition)
        assert event.adversarial
        assert event.members == ((0, "delay-attacker"), (5, "vote-withholder"))
        assert "coalition" in event.describe()
        restored = pickle.loads(pickle.dumps(schedule))
        assert restored.events == schedule.events

    def test_default_members_span_two_clusters_within_f(self):
        members = coalition_members(num_clusters=2, byzantine=True)
        assert members == {0: "delay-attacker", 5: "vote-withholder"}
        with pytest.raises(ValueError):
            coalition_members(num_clusters=1)


class TestCoalitionEndToEnd:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_coalition_passes_the_safety_audit(self, seed):
        result = coalition_scenario(seed=seed, duration=0.5).run()
        assert result.safety is not None
        problems = (result.audit.problems if result.audit else []) + result.safety.problems
        assert result.ok, problems
        system = result.system
        # One Byzantine replica per cluster — the paper's f = 1 bound in each.
        assert system.byzantine_nodes == {0, 5}
        per_cluster = {}
        for node in system.byzantine_nodes:
            cluster = system.config.cluster_of_node(node).cluster_id
            per_cluster[cluster] = per_cluster.get(cluster, 0) + 1
        assert all(count <= 1 for count in per_cluster.values())
        # The shared script actually fired: targets spotted, members acted.
        (coalition,) = system.coalitions
        assert coalition.targeted > 0
        assert coalition.attacked > 0
        # Despite the squeeze the system keeps committing (drain included).
        assert all(height > 0 for height in result.chain_heights.values())

    def test_members_coordinate_across_clusters(self):
        result = coalition_scenario(seed=1, duration=0.5).run()
        (coalition,) = result.system.coalitions
        delayer, withholder = coalition.members
        # The delayer (initiator primary) spotted targets and delayed them;
        # the withholder in the remote cluster attacked the *same* digests.
        assert delayer.inner.injected > 0
        assert withholder.inner.dropped > 0

    def test_no_cross_shard_traffic_means_no_targets(self):
        result = coalition_scenario(cross_shard_fraction=0.0, duration=0.3).run()
        assert result.ok
        (coalition,) = result.system.coalitions
        assert coalition.targeted == 0
        # With nothing to collude on, both members stay scrupulously honest.
        assert result.stats.committed > 0

    def test_serial_and_pooled_runs_are_bit_identical(self):
        from repro.api import run_scenarios

        base = coalition_scenario(duration=0.3)
        scenarios = [base.with_seed(1), base.with_seed(2)]
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(scenarios, jobs=2)
        for s, p in zip(serial, pooled):
            assert p.system is None
            assert s.stats.committed == p.stats.committed
            assert s.chain_heights == p.chain_heights
