"""The quorum-aware (adaptive) equivocator from the ROADMAP gap list.

Unit tests pin the adaptive trigger — equivocate exactly when, counting
the votes this multicast is about to contribute, the quorum is one peer
vote short — and an end-to-end attack run checks that the
:class:`repro.adversary.SafetyAuditor` still passes with the behaviour
active (satellite acceptance for this PR).
"""

from repro.adversary import QuorumAwareEquivocator, available_behaviors, make_behavior
from repro.api import DeploymentSpec, FaultSchedule, Scenario
from repro.common.types import FaultModel
from repro.consensus.messages import Prepare
from repro.core.system import SharPerSystem
from repro.txn.workload import WorkloadConfig


def build_replica():
    config = DeploymentSpec(
        system="sharper", fault_model=FaultModel.BYZANTINE, num_clusters=1
    ).resolve(seed=4)
    system = SharPerSystem(config, WorkloadConfig(accounts_per_shard=64), seed=4)
    return system.replicas[1]  # a backup of the 4-node cluster


class TestRegistration:
    def test_registered_under_roadmap_name(self):
        behaviors = available_behaviors()
        assert "quorum-aware-equivocator" in behaviors
        instance = make_behavior("adaptive-equivocator", seed=7)
        assert isinstance(instance, QuorumAwareEquivocator)


class TestAdaptiveTrigger:
    def test_equivocates_only_when_one_vote_short(self):
        replica = build_replica()
        behavior = QuorumAwareEquivocator(seed=3)
        behavior.attach(replica)
        vote = Prepare(view=0, slot=1, digest="d" * 8, node=replica.node_id)
        # Fresh slot: after this prepare lands (own + the pre-prepare it
        # doubles for), the 2f+1 quorum is exactly one peer vote short —
        # the pivotal moment.  A seeded half of the peers gets a forged
        # digest, the rest the truth.
        outcomes = {dst: behavior.outbound(dst, vote) for dst in behavior.cluster_peers()}
        forged = [dst for dst, actions in outcomes.items() if actions is not None]
        honest = [dst for dst, actions in outcomes.items() if actions is None]
        assert forged and honest
        for dst in forged:
            (action,) = outcomes[dst]
            assert action.message.digest != vote.digest
            assert action.message.slot == vote.slot
        assert behavior.equivocations == len(forged)

    def test_stays_honest_when_cluster_is_already_ahead(self):
        replica = build_replica()
        behavior = QuorumAwareEquivocator(seed=3)
        behavior.attach(replica)
        vote = Prepare(view=0, slot=2, digest="e" * 8, node=replica.node_id)
        # Two peer prepares arrived before our own (e.g. a delayed
        # pre-prepare): the quorum completes regardless of us, the vote
        # is not pivotal, and the behaviour passes everything through.
        key = (vote.view, vote.slot, vote.digest)
        replica.intra._prepares.vote(key, 2)
        replica.intra._prepares.vote(key, 3)
        for dst in behavior.cluster_peers():
            assert behavior.outbound(dst, vote) is None
        assert behavior.equivocations == 0

    def test_non_vote_traffic_passes_through(self):
        replica = build_replica()
        behavior = QuorumAwareEquivocator(seed=3)
        behavior.attach(replica)
        assert behavior.outbound(2, object()) is None


class TestAttackRun:
    def test_auditor_passes_under_the_adaptive_attack(self):
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.BYZANTINE, num_clusters=2
            ),
            workload=WorkloadConfig(cross_shard_fraction=0.2, accounts_per_shard=128),
            clients=16,
            duration=0.4,
            warmup=0.05,
            seed=2,
            faults=FaultSchedule().make_byzantine(
                at=0.05, node=1, behavior="quorum-aware-equivocator"
            ),
        )
        result = scenario.run()
        assert result.safety is not None
        assert result.ok, (
            (result.audit.problems if result.audit else [])
            + (result.safety.problems if result.safety else [])
        )
        adversary = result.system.replicas[1].interceptor
        # The attack genuinely fired and the cluster kept committing.
        assert adversary is not None and adversary.equivocations > 0
        assert result.stats.committed > 0
