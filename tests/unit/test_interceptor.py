"""Unit tests for the outbound message-interception hook."""

import pytest

from repro.adversary import MessageInterceptor, Outbound
from repro.common.config import PerformanceModel
from repro.sim.costs import CostModel
from repro.sim.network import Network, UniformLatencyModel
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Echo(Process):
    def __init__(self, pid, sim, network, cost_model):
        super().__init__(pid, sim, network, cost_model)
        self.handled = []

    def on_message(self, message, src):
        self.handled.append((self.sim.now, message, src))


def build(latency=1e-3):
    sim = Simulator()
    network = Network(sim, UniformLatencyModel(latency), fifo=True)
    cost = CostModel(PerformanceModel(message_cpu=0.0, latency_jitter=0.0))
    a = Echo(0, sim, network, cost)
    b = Echo(1, sim, network, cost)
    c = Echo(2, sim, network, cost)
    return sim, network, a, b, c


class Dropper(MessageInterceptor):
    def outbound(self, dst, message):
        return self.drop()


class Delayer(MessageInterceptor):
    def __init__(self, extra):
        super().__init__()
        self.extra = extra

    def outbound(self, dst, message):
        return self.emit(Outbound(dst=dst, message=message, extra_delay=self.extra))


class Duplicator(MessageInterceptor):
    def outbound(self, dst, message):
        return self.emit(
            Outbound(dst=dst, message=message),
            Outbound(dst=dst, message=message),
        )


class Rewriter(MessageInterceptor):
    def outbound(self, dst, message):
        return self.emit(Outbound(dst=dst, message=f"forged-{message}"))


class Redirector(MessageInterceptor):
    """Send the payload somewhere else entirely."""

    def __init__(self, to):
        super().__init__()
        self.to = to

    def outbound(self, dst, message):
        return self.emit(Outbound(dst=self.to, message=message))


class TestHookMechanics:
    def test_no_interceptor_is_the_default(self):
        sim, network, a, b, c = build()
        assert a.interceptor is None
        a.send(1, "plain")
        sim.run()
        assert [m for _, m, _ in b.handled] == ["plain"]

    def test_pass_through_interceptor_delivers_unchanged(self):
        sim, network, a, b, c = build()
        a.set_interceptor(MessageInterceptor())
        a.send(1, "hello")
        a.multicast([1, 2], "world")
        sim.run()
        assert [m for _, m, _ in b.handled] == ["hello", "world"]
        assert [m for _, m, _ in c.handled] == ["world"]
        assert a.interceptor.seen == 3

    def test_drop_suppresses_delivery(self):
        sim, network, a, b, c = build()
        a.set_interceptor(Dropper())
        a.send(1, "lost")
        a.multicast([1, 2], "lost-too")
        sim.run()
        assert b.handled == []
        assert c.handled == []
        assert a.interceptor.dropped == 3

    def test_delay_shifts_arrival(self):
        sim, network, a, b, c = build(latency=1e-3)
        a.send(1, "fast")
        sim.run()
        baseline = b.handled[0][0]
        sim2, network2, a2, b2, c2 = build(latency=1e-3)
        a2.set_interceptor(Delayer(0.25))
        a2.send(1, "slow")
        sim2.run()
        assert b2.handled[0][0] == pytest.approx(baseline + 0.25)

    def test_duplicate_delivers_twice(self):
        sim, network, a, b, c = build()
        a.set_interceptor(Duplicator())
        a.send(1, "echo")
        sim.run()
        assert [m for _, m, _ in b.handled] == ["echo", "echo"]

    def test_rewrite_replaces_payload_but_not_sender(self):
        sim, network, a, b, c = build()
        a.set_interceptor(Rewriter())
        a.send(1, "original")
        sim.run()
        assert [(m, src) for _, m, src in b.handled] == [("forged-original", 0)]

    def test_redirect_changes_destination(self):
        sim, network, a, b, c = build()
        a.set_interceptor(Redirector(to=2))
        a.send(1, "detoured")
        sim.run()
        assert b.handled == []
        assert [m for _, m, _ in c.handled] == ["detoured"]

    def test_multicast_consults_interceptor_per_destination(self):
        sim, network, a, b, c = build()

        class MuteOne(MessageInterceptor):
            def outbound(self, dst, message):
                if dst == 1:
                    return self.drop()
                return self.pass_through()

        a.set_interceptor(MuteOne())
        a.multicast([1, 2], "selective")
        sim.run()
        assert b.handled == []
        assert [m for _, m, _ in c.handled] == ["selective"]

    def test_detach_restores_normal_delivery(self):
        sim, network, a, b, c = build()
        dropper = Dropper()
        a.set_interceptor(dropper)
        a.send(1, "lost")
        a.set_interceptor(None)
        assert dropper.process is None
        a.send(1, "found")
        sim.run()
        assert [m for _, m, _ in b.handled] == ["found"]

    def test_attach_detaches_previous_interceptor(self):
        sim, network, a, b, c = build()
        first, second = Dropper(), Rewriter()
        a.set_interceptor(first)
        a.set_interceptor(second)
        assert first.process is None
        assert second.process is a

    def test_interceptor_charges_send_cpu(self):
        sim = Simulator()
        network = Network(sim, UniformLatencyModel(0.0), fifo=True)
        cost = CostModel(PerformanceModel(message_cpu=1e-3, latency_jitter=0.0))
        a = Echo(0, sim, network, cost)
        Echo(1, sim, network, cost)
        Echo(2, sim, network, cost)
        a.set_interceptor(Dropper())
        a.multicast([1, 2], "work")
        # The adversary still pays the CPU for the sends it pretends to do.
        assert a.cpu_busy_time == pytest.approx(cost.send_cost("work", destinations=2))
