"""Byzantine clients vs. the replica-side request guard.

The replica request path was built assuming correct clients; these
tests exercise it against forged, duplicated, replayed, and
ownership-violating traffic — the request guard must screen all of it
while honest traffic flows untouched, and the cross-replica safety
audit (no fork, balance conservation, at-most-once) must keep passing.
"""

import pytest

from repro import FaultModel, WorkloadConfig
from repro.adversary import available_behaviors, get_behavior, make_behavior
from repro.api import DeploymentSpec, FaultSchedule, MakeClientByzantine, Scenario
from repro.common.crypto import KeyPair, Signature
from repro.common.types import AccountId, ClientId
from repro.consensus.messages import ClientRequest
from repro.core.guard import ADMIT, DROP, REFUSE, RequestGuard
from repro.txn.transaction import Transaction


class FakeChain:
    def __init__(self):
        self.committed = set()

    def contains_tx(self, tx_id):
        return tx_id in self.committed


def request(tx_id="tx-1", client=1, timestamp=1.0, reply_to=1_000_000, source=1, keypair=None):
    transaction = Transaction.transfer(
        client=ClientId(client),
        source=AccountId(source),
        destination=AccountId(source + 1),
        amount=5,
        timestamp=timestamp,
        tx_id=tx_id,
        keypair=keypair,
    )
    return ClientRequest(
        transaction=transaction,
        client=transaction.client,
        timestamp=timestamp,
        reply_to=reply_to,
    )


class TestRequestGuardUnit:
    def test_admits_and_registers_honest_requests(self):
        guard = RequestGuard(FakeChain())
        assert guard.screen(request()) == ADMIT
        assert guard.rejected_total == 0

    def test_valid_signature_is_accepted(self):
        guard = RequestGuard(FakeChain())
        signed = request(keypair=KeyPair(owner=1))
        assert guard.screen(signed) == ADMIT

    def test_forged_signature_is_dropped(self):
        guard = RequestGuard(FakeChain())
        honest = request()
        forged_tx = Transaction(
            tx_id="tx-f",
            client=honest.transaction.client,
            transfers=honest.transaction.transfers,
            timestamp=honest.transaction.timestamp,
            signature=Signature(signer=1, payload_digest="bogus", forged=True),
        )
        forged = ClientRequest(
            transaction=forged_tx, client=forged_tx.client, timestamp=1.0, reply_to=1_000_000
        )
        assert guard.screen(forged) == DROP
        assert guard.rejected_forged == 1

    def test_ownership_violation_is_refused(self):
        guard = RequestGuard(FakeChain(), owner_of=lambda account: ClientId(int(account) % 2))
        # account 1 is owned by client 1 under the modulo map: admitted.
        assert guard.screen(request(client=1, source=1)) == ADMIT
        # account 2 is owned by client 0: refused (with a failure reply).
        assert guard.screen(request(tx_id="tx-2", client=1, source=2)) == REFUSE
        assert guard.rejected_ownership == 1

    def test_replay_below_the_committed_window_is_dropped(self):
        guard = RequestGuard(FakeChain())
        old = request(tx_id="tx-old", timestamp=1.0)
        assert guard.screen(old) == ADMIT
        guard.committed(old)
        newer = request(tx_id="tx-new", timestamp=2.0)
        assert guard.screen(newer) == ADMIT
        guard.committed(newer)
        replay = request(tx_id="tx-replayed", timestamp=1.5)
        assert guard.screen(replay) == DROP
        assert guard.rejected_replays == 1

    def test_retry_of_committed_request_passes_the_window(self):
        chain = FakeChain()
        guard = RequestGuard(chain)
        first = request(tx_id="tx-1", timestamp=1.0)
        assert guard.screen(first) == ADMIT
        chain.committed.add("tx-1")
        guard.committed(first)
        # A late retry carries the original (now lowest) timestamp but is
        # answered through the chain's duplicate index, not dropped.
        assert guard.screen(request(tx_id="tx-1", timestamp=1.0)) == ADMIT

    def test_mutated_timestamp_duplicate_is_dropped(self):
        guard = RequestGuard(FakeChain())
        original = request(tx_id="tx-1", timestamp=1.0)
        duplicate = request(tx_id="tx-1", timestamp=1.0000001)
        assert guard.screen(original) == ADMIT
        assert guard.screen(duplicate) == DROP
        assert guard.rejected_duplicates == 1
        # Identical retries of the in-flight original stay admitted.
        assert guard.screen(request(tx_id="tx-1", timestamp=1.0)) == ADMIT

    def test_apply_backstop_catches_committed_duplicates(self):
        chain = FakeChain()
        guard = RequestGuard(chain)
        chain.committed.add("tx-1")
        assert guard.is_duplicate_apply("tx-1")
        assert not guard.is_duplicate_apply("tx-2")
        assert guard.deduped_applies == 1


def client_attack(behavior, seed=1, duration=0.6, cross=0.2, **overrides):
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper", fault_model=FaultModel.BYZANTINE, num_clusters=2
        ),
        workload=WorkloadConfig(cross_shard_fraction=cross, accounts_per_shard=64),
        clients=8,
        duration=duration,
        warmup=0.06,
        seed=seed,
        faults=FaultSchedule().make_client_byzantine(at=0.05, client=0, behavior=behavior),
        **overrides,
    )


def guard_totals(system):
    guards = [
        process.request_guard
        for process in system.processes()
        if getattr(process, "request_guard", None) is not None
    ]
    assert guards, "adversary events must arm the request guards"
    return {
        "forged": sum(guard.rejected_forged for guard in guards),
        "ownership": sum(guard.rejected_ownership for guard in guards),
        "replays": sum(guard.rejected_replays for guard in guards),
        "duplicates": sum(guard.rejected_duplicates for guard in guards),
    }


class TestClientBehaviorsAreSafe:
    @pytest.mark.parametrize("behavior", sorted(available_behaviors("client")))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_client_attack_passes_the_safety_audit(self, behavior, seed):
        result = client_attack(behavior, seed=seed).run()
        assert result.safety is not None, "client adversaries must arm the audit"
        problems = (result.audit.problems if result.audit else []) + result.safety.problems
        assert result.ok, problems
        # The system keeps committing for the honest clients.
        assert result.stats.committed > 0
        assert all(height > 0 for height in result.chain_heights.values())

    def test_duplicating_client_is_deduped(self):
        result = client_attack("duplicating-client").run()
        assert result.ok
        totals = guard_totals(result.system)
        assert totals["duplicates"] > 0
        behavior = result.system.clients[0].interceptor
        assert behavior.duplicates_sent > 0

    def test_forged_signatures_are_rejected_at_the_door(self):
        result = client_attack("forged-signature-client").run()
        assert result.ok
        totals = guard_totals(result.system)
        assert totals["forged"] > 0
        # The impersonated transactions never reach any chain.
        for cluster_id, view in result.system.views().items():
            assert not any(
                tx.tx_id.endswith("-forged1")
                for block in view.blocks()
                for tx in block.transactions
            )

    def test_ownership_violations_are_refused_everywhere(self):
        result = client_attack("ownership-violator-client").run()
        assert result.ok
        totals = guard_totals(result.system)
        assert totals["ownership"] > 0
        # Balance conservation is part of result.ok; make it explicit.
        assert result.total_balance == result.expected_balance

    def test_honest_runs_never_arm_the_guard(self):
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.BYZANTINE, num_clusters=2
            ),
            workload=WorkloadConfig(accounts_per_shard=64),
            clients=8,
            duration=0.2,
        )
        result = scenario.run()
        assert result.ok
        assert all(
            getattr(process, "request_guard", None) is None
            for process in result.system.processes()
        )


class TestSchedulingSurface:
    def test_make_client_byzantine_event_is_adversarial(self):
        schedule = FaultSchedule().make_client_byzantine(
            at=0.1, client=2, behavior="duplicating-client"
        )
        (event,) = schedule.events
        assert isinstance(event, MakeClientByzantine)
        assert event.adversarial
        assert "client 2" in event.describe()

    def test_restore_detaches_a_byzantine_client(self):
        faults = (
            FaultSchedule()
            .make_client_byzantine(at=0.05, client=0, behavior="duplicating-client")
            .restore(at=0.2, node=1_000_000)
        )
        result = client_attack("duplicating-client").with_faults(faults).run()
        client = result.system.clients[0]
        assert client.interceptor is None
        assert not client.byzantine
        assert result.system.byzantine_clients == set()
        assert result.ok

    def test_client_behaviors_have_client_target(self):
        for name in ("duplicating-client", "forged-signature-client", "ownership-violator-client"):
            assert get_behavior(name).target == "client"
        assert name not in available_behaviors()  # replica listing excludes them

    def test_behavior_instances_survive_the_jobs_pool(self):
        from repro.api import run_scenarios

        base = client_attack("duplicating-client", duration=0.3)
        scenarios = [base.with_seed(1), base.with_seed(2)]
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(scenarios, jobs=2)
        for s, p in zip(serial, pooled):
            assert p.system is None
            assert s.stats.committed == p.stats.committed
            assert s.chain_heights == p.chain_heights
