"""Authenticated view changes: signed votes, certificates, forged views.

The simplified view change used to trust ``message.view`` outright; the
forged-view adversary (a Byzantine replica inflating views to a round
where the rotation elects it) showed why that is unsafe.  These tests
pin the defence:

* view-change votes are signed and individually verifiable;
* a ``NewView`` installs only with a verifying quorum certificate, and
  fabricated certificates (forged signatures) never verify;
* PBFT backups park pre-prepares for uninstalled views instead of
  adopting them;
* the ``forged-view`` behaviour never captures the primary seat while
  the safety audit passes;
* an *honest* view change — under crash faults and under Byzantine
  silence — still completes through the certificate check;
* remote clusters update their primary tables only through
  certificate-verified announcements.
"""

from dataclasses import replace

import pytest

from repro import FaultModel, WorkloadConfig
from repro.api import DeploymentSpec, FaultSchedule, Scenario
from repro.common.config import ClusterConfig
from repro.common.crypto import Signature
from repro.common.types import ClusterId, FaultModel as FM, NodeId
from repro.consensus.messages import ViewChange
from repro.consensus.view_change import (
    sign_view_change,
    verify_new_view_certificate,
    verify_view_change_signature,
)


def make_cluster(fault_model=FM.BYZANTINE, f=1, base=0):
    size = fault_model.min_cluster_size(f)
    return ClusterConfig(
        cluster_id=ClusterId(0),
        node_ids=tuple(NodeId(base + i) for i in range(size)),
        fault_model=fault_model,
        f=f,
    )


def signed_vote(node, new_view=1, checkpoint=0):
    vote = ViewChange(
        new_view=new_view,
        node=NodeId(node),
        decided=((3, "d3"),),
        accepted=((3, "d3", None), (4, "d4", None)),
        checkpoint=checkpoint,
    )
    return replace(vote, signature=sign_view_change(vote))


class TestViewChangeSignatures:
    def test_signed_vote_verifies(self):
        assert verify_view_change_signature(signed_vote(2))

    def test_unsigned_vote_does_not_verify(self):
        vote = replace(signed_vote(2), signature=None)
        assert not verify_view_change_signature(vote)

    def test_forged_signature_does_not_verify(self):
        vote = signed_vote(2)
        forged = replace(
            vote, signature=Signature(signer=2, payload_digest="forged", forged=True)
        )
        assert not verify_view_change_signature(forged)

    def test_signer_must_match_claimed_node(self):
        vote = signed_vote(2)
        stolen = replace(signed_vote(3), node=NodeId(2))
        assert verify_view_change_signature(vote)
        assert not verify_view_change_signature(stolen)

    def test_signature_binds_the_log_summary(self):
        vote = signed_vote(2)
        tampered = replace(vote, decided=((3, "forged-digest"),))
        assert not verify_view_change_signature(tampered)

    def test_signature_binds_the_checkpoint(self):
        vote = signed_vote(2, checkpoint=0)
        inflated = replace(vote, checkpoint=50)
        assert not verify_view_change_signature(inflated)


class TestNewViewCertificates:
    def test_honest_quorum_verifies(self):
        cluster = make_cluster()
        certificate = tuple(signed_vote(node) for node in (1, 2, 3))
        assert verify_new_view_certificate(certificate, 1, cluster)

    def test_sub_quorum_fails(self):
        cluster = make_cluster()
        certificate = tuple(signed_vote(node) for node in (1, 2))
        assert not verify_new_view_certificate(certificate, 1, cluster)

    def test_duplicate_signers_do_not_inflate_the_count(self):
        cluster = make_cluster()
        certificate = tuple(signed_vote(1) for _ in range(4))
        assert not verify_new_view_certificate(certificate, 1, cluster)

    def test_votes_for_other_views_are_ignored(self):
        cluster = make_cluster()
        certificate = (signed_vote(1), signed_vote(2), signed_vote(3, new_view=2))
        assert not verify_new_view_certificate(certificate, 1, cluster)

    def test_non_members_are_ignored(self):
        cluster = make_cluster()
        certificate = (signed_vote(1), signed_vote(2), signed_vote(99))
        assert not verify_new_view_certificate(certificate, 1, cluster)

    def test_fabricated_certificate_fails(self):
        """What the forged-view behaviour sends: forged peer signatures."""
        cluster = make_cluster()
        certificate = tuple(
            ViewChange(
                new_view=1,
                node=NodeId(node),
                decided=(),
                accepted=(),
                checkpoint=0,
                signature=Signature(signer=node, payload_digest="forged", forged=True),
            )
            for node in (0, 1, 2, 3)
        )
        assert not verify_new_view_certificate(certificate, 1, cluster)

    def test_crash_model_quorum_is_f_plus_one(self):
        cluster = make_cluster(fault_model=FM.CRASH)
        assert verify_new_view_certificate(
            (signed_vote(0), signed_vote(1)), 1, cluster
        )
        assert not verify_new_view_certificate((signed_vote(0),), 1, cluster)


def byzantine_scenario(behavior, duration=1.2, seed=1, **overrides):
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper", fault_model=FaultModel.BYZANTINE, num_clusters=2
        ),
        workload=WorkloadConfig(cross_shard_fraction=0.2, accounts_per_shard=64),
        clients=8,
        duration=duration,
        warmup=0.06,
        seed=seed,
        retry_timeout=0.2,
        faults=FaultSchedule().make_primary_byzantine(at=0.05, cluster=0, behavior=behavior),
        **overrides,
    )


class TestForgedViewRejection:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_forged_view_does_not_capture_the_primary_seat(self, seed):
        """The headline property: self-election by view inflation fails.

        The attacker (initial primary of cluster 0) rewrites its
        pre-prepares to the next view whose rotation elects it and
        fabricates the NewView/announcement paperwork.  Correct backups
        must never install a view led by the attacker; instead the
        honest timeout path rotates to a correct primary and the run
        stays safe and live.
        """
        result = byzantine_scenario("forged-view", seed=seed).run()
        assert result.safety is not None
        assert result.ok, (
            (result.audit.problems if result.audit else []) + result.safety.problems
        )
        system = result.system
        attacker = 0
        correct = [r for r in system.replicas_of(ClusterId(0)) if not r.byzantine]
        for replica in correct:
            view = replica.intra.view
            assert int(replica.cluster.primary_for_view(view)) != attacker
            # The fabricated NewView was seen and rejected at least once.
            assert replica.intra.view_change.rejected_new_views >= 1
        # The honest fail-over still happened (liveness restored).
        assert any(r.intra.view >= 1 for r in correct)
        assert all(height > 0 for height in result.chain_heights.values())

    def test_forged_pre_prepares_are_parked_not_adopted(self):
        result = byzantine_scenario("forged-view").run()
        correct = [
            r for r in result.system.replicas_of(ClusterId(0)) if not r.byzantine
        ]
        # Backups stashed the inflated pre-prepares instead of adopting
        # their view, and the stash respects its bound.
        assert any(r.intra._stashed_count > 0 for r in correct)
        for replica in correct:
            assert replica.intra._stashed_count <= replica.intra.MAX_STASHED_PRE_PREPARES

    def test_remote_clusters_ignore_the_forged_announcement(self):
        result = byzantine_scenario("forged-view").run()
        attacker = 0
        for replica in result.system.replicas_of(ClusterId(1)):
            assert replica._remote_primaries[ClusterId(0)] != attacker or (
                # Initial primary *was* node 0; the table may only point
                # at it if no verified view change replaced it — never
                # because of the forged announcement's inflated view.
                replica._remote_views.get(ClusterId(0), 0) == 0
            )


class TestStateTransferViewAttestation:
    """State transfer adopts only quorum-attested views — and a claim of
    view v vouches for every view below it, so split claims still let
    the honest floor through."""

    def _manager(self):
        from repro.recovery.state_transfer import StateTransferManager

        class _Intra:
            view = 0

            def on_view_installed(self, view):
                self.installed = view

        class _Host:
            cluster = make_cluster()
            intra = _Intra()

        return StateTransferManager(_Host()), _Host

    def test_single_inflated_claim_is_not_adopted(self):
        manager, host = self._manager()
        manager._adopt_attested_view(99, src=1)
        assert host.intra.view == 0

    def test_split_claims_adopt_the_quorum_floor(self):
        manager, host = self._manager()
        manager._adopt_attested_view(99, src=1)  # Byzantine inflation
        manager._adopt_attested_view(2, src=2)   # honest helper
        # quorum = f + 1 = 2: two helpers attest at least view 2.
        assert host.intra.view == 2
        assert host.intra.installed == 2

    def test_matching_honest_claims_adopt_their_view(self):
        manager, host = self._manager()
        manager._adopt_attested_view(3, src=1)
        assert host.intra.view == 0
        manager._adopt_attested_view(3, src=2)
        assert host.intra.view == 3


class TestStashEviction:
    def test_nearer_views_evict_farther_stashed_junk(self):
        from repro.consensus.messages import PrePrepare
        from repro.consensus.pbft import PBFTEngine

        engine = PBFTEngine.__new__(PBFTEngine)
        engine._stashed_pre_prepares = {}
        engine._stashed_count = 0
        junk = PrePrepare(view=40, slot=1, digest="d", item=None)
        for _ in range(PBFTEngine.MAX_STASHED_PRE_PREPARES):
            engine._stash_pre_prepare(junk, src=0)
        assert engine._stashed_count == PBFTEngine.MAX_STASHED_PRE_PREPARES
        # A farther-or-equal view is dropped outright once full...
        engine._stash_pre_prepare(PrePrepare(view=41, slot=1, digest="d", item=None), src=0)
        assert 41 not in engine._stashed_pre_prepares
        # ...but the legitimate next view always finds room.
        near = PrePrepare(view=1, slot=1, digest="d", item=None)
        engine._stash_pre_prepare(near, src=2)
        assert engine._stashed_pre_prepares[1] == [(near, 2)]
        assert engine._stashed_count == PBFTEngine.MAX_STASHED_PRE_PREPARES


class TestHonestViewChangesStillComplete:
    def test_certificate_accepts_honest_view_change_under_crash_faults(self):
        """The defence must not break the legitimate fail-over path."""
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.CRASH, num_clusters=2
            ),
            workload=WorkloadConfig(cross_shard_fraction=0.2, accounts_per_shard=64),
            clients=8,
            duration=0.8,
            seed=1,
            faults=FaultSchedule().crash_primary(at=0.1, cluster=0),
        )
        result = scenario.run()
        assert result.ok
        survivors = [
            r for r in result.system.replicas_of(ClusterId(0)) if not r.crashed
        ]
        assert all(r.intra.view >= 1 for r in survivors)
        assert all(
            r.intra.view_change.view_changes_completed >= 1 for r in survivors
        )
        assert all(r.intra.view_change.rejected_new_views == 0 for r in survivors)
        assert all(height > 0 for height in result.chain_heights.values())

    def test_certificate_accepts_honest_view_change_under_byzantine_silence(self):
        result = byzantine_scenario("silent-primary", duration=1.2).run()
        assert result.ok
        correct = [
            r for r in result.system.replicas_of(ClusterId(0)) if not r.byzantine
        ]
        assert any(r.intra.view >= 1 for r in correct)
        assert all(r.intra.view_change.rejected_new_views == 0 for r in correct)

    def test_announcement_updates_remote_primary_tables(self):
        """A real view change propagates to other clusters, verified."""
        result = byzantine_scenario("silent-primary", duration=1.2).run()
        assert result.ok
        cluster0 = result.system.config.cluster(ClusterId(0))
        correct0 = [
            r for r in result.system.replicas_of(ClusterId(0)) if not r.byzantine
        ]
        new_view = max(r.intra.view for r in correct0)
        assert new_view >= 1
        expected = int(cluster0.primary_for_view(new_view))
        remote = result.system.replicas_of(ClusterId(1))
        updated = [r for r in remote if r._remote_views.get(ClusterId(0), 0) >= 1]
        assert updated, "no remote replica verified the announcement"
        for replica in updated:
            assert replica._remote_primaries[ClusterId(0)] == int(
                cluster0.primary_for_view(replica._remote_views[ClusterId(0)])
            )
        assert any(
            r._remote_primaries[ClusterId(0)] == expected for r in updated
        )
